//! Worker busy/idle accounting for utilization reporting.
//!
//! A serving daemon's stats endpoint wants "how busy are my workers?",
//! which is busy-nanoseconds divided by `workers × wall-nanoseconds`.
//! [`PoolUsage`] accumulates the numerator with two atomics and zero
//! locks: each worker wraps the span it spends processing a request in
//! a [`BusyGuard`], which bumps the live-busy count on entry and folds
//! its elapsed wall time into the running total on drop. The caller
//! supplies the denominator (it knows the pool size and owns the epoch
//! the elapsed time is measured from).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared busy-time accumulator for a pool of workers. Clone freely;
/// clones share the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct PoolUsage {
    inner: Arc<UsageCounters>,
}

#[derive(Debug, Default)]
struct UsageCounters {
    /// Workers currently inside a [`BusyGuard`].
    busy_now: AtomicU64,
    /// Completed busy time, nanoseconds (guards fold in on drop).
    busy_ns: AtomicU64,
}

impl PoolUsage {
    /// A fresh accumulator with zero recorded busy time.
    pub fn new() -> PoolUsage {
        PoolUsage::default()
    }

    /// Marks the calling worker busy until the returned guard drops.
    pub fn guard(&self) -> BusyGuard {
        self.inner.busy_now.fetch_add(1, Ordering::Relaxed);
        BusyGuard {
            usage: Arc::clone(&self.inner),
            start: Instant::now(),
        }
    }

    /// Workers busy right now.
    pub fn busy_now(&self) -> u64 {
        self.inner.busy_now.load(Ordering::Relaxed)
    }

    /// Completed busy time so far, nanoseconds. In-flight guards are
    /// not included until they drop, so utilization derived from this
    /// slightly lags under long-running requests — acceptable for a
    /// stats endpoint, and it keeps reads lock-free.
    pub fn busy_ns(&self) -> u64 {
        self.inner.busy_ns.load(Ordering::Relaxed)
    }

    /// Fraction of `workers × elapsed_ns` spent busy, clamped to
    /// `[0, 1]`; `None` when the denominator is degenerate (zero
    /// workers or no elapsed time yet).
    pub fn utilization(&self, workers: usize, elapsed_ns: u64) -> Option<f64> {
        let denom = workers as u64 as f64 * elapsed_ns as f64;
        if denom <= 0.0 {
            return None;
        }
        Some((self.busy_ns() as f64 / denom).clamp(0.0, 1.0))
    }
}

/// RAII marker for one worker's busy stretch; see [`PoolUsage::guard`].
#[derive(Debug)]
pub struct BusyGuard {
    usage: Arc<UsageCounters>,
    start: Instant,
}

impl Drop for BusyGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.usage.busy_ns.fetch_add(ns, Ordering::Relaxed);
        let prev = self.usage.busy_now.fetch_sub(1, Ordering::Relaxed);
        // A double-drop cannot happen with the RAII shape, but keep the
        // gauge from wrapping if an unforeseen path ever unbalances it.
        if prev == 0 {
            self.usage.busy_now.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_accumulate_busy_time() {
        let usage = PoolUsage::new();
        assert_eq!(usage.busy_now(), 0);
        {
            let _a = usage.guard();
            let _b = usage.guard();
            assert_eq!(usage.busy_now(), 2);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(usage.busy_now(), 0);
        assert!(usage.busy_ns() >= 2_000_000, "{}", usage.busy_ns());
    }

    #[test]
    fn utilization_is_bounded_and_guarded() {
        let usage = PoolUsage::new();
        assert_eq!(usage.utilization(0, 1_000), None);
        assert_eq!(usage.utilization(4, 0), None);
        {
            let _g = usage.guard();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // One worker busy the whole elapsed window: utilization ≈ 1,
        // never above it even with measurement jitter.
        let u = usage.utilization(1, 1).expect("denominator fine");
        assert!((0.0..=1.0).contains(&u), "{u}");
        let tiny = usage.utilization(64, u64::MAX).expect("denominator fine");
        assert!(tiny < 1e-3, "{tiny}");
    }

    #[test]
    fn clones_share_counters_across_threads() {
        let usage = PoolUsage::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let usage = usage.clone();
                scope.spawn(move || {
                    let _g = usage.guard();
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        });
        assert_eq!(usage.busy_now(), 0);
        assert!(usage.busy_ns() >= 4_000_000, "{}", usage.busy_ns());
    }
}
