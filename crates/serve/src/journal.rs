//! Crash-safe request journal backing `--state-dir` warm restarts.
//!
//! Every admitted query is recorded (`admit <seq> <fnv1a64> <len>
//! <payload>`) before it enters the work queue, and its sequence number
//! is marked `done <seq>` only after its one terminal response has been
//! written. Both records are fsynced, so after a crash the journal's
//! *pending* set — admits without a matching done — is exactly the set
//! of requests the daemon accepted but never answered. On boot the
//! server replays that set and answers each request exactly once.
//!
//! The journal is append-only while serving; a graceful drain compacts
//! it (rewriting only the still-pending tail through a tmp-file +
//! atomic rename) so the file does not grow without bound across
//! restarts. Torn or corrupted records — a payload whose length or
//! FNV-1a checksum disagrees with its header, or a half-written final
//! line — are skipped on replay, never half-parsed.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use klest_runtime::fnv1a64;

/// One journaled request that was admitted but never answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The admission sequence number (replay order, done-marker key).
    pub seq: u64,
    /// The original request line, exactly as received.
    pub line: String,
}

struct Inner {
    file: Option<std::fs::File>,
    next_seq: u64,
}

/// Append-only, fsynced admit/done journal (see module docs).
pub struct RequestJournal {
    path: PathBuf,
    inner: Mutex<Inner>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // Journal state is a file handle + counter; both stay valid across
    // a panicking holder.
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Parses journal text into `(pending admits by seq, next free seq)`.
/// Malformed lines are skipped; later records win.
fn parse_journal(text: &str) -> (BTreeMap<u64, String>, u64) {
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next_seq = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("admit ") {
            let Some((seq, rest)) = rest.split_once(' ') else {
                continue;
            };
            let Some((checksum, rest)) = rest.split_once(' ') else {
                continue;
            };
            let Some((len, payload)) = rest.split_once(' ') else {
                continue;
            };
            if checksum.len() != 16 {
                continue;
            }
            let (Ok(seq), Ok(checksum), Ok(len)) = (
                seq.parse::<u64>(),
                u64::from_str_radix(checksum, 16),
                len.parse::<u64>(),
            ) else {
                continue;
            };
            // A torn admit record cannot replay a damaged payload: the
            // byte length and checksum must both match exactly.
            if payload.len() as u64 != len || fnv1a64(payload.as_bytes()) != checksum {
                continue;
            }
            next_seq = next_seq.max(seq + 1);
            pending.insert(seq, payload.to_string());
        } else if let Some(seq) = line.strip_prefix("done ") {
            let Ok(seq) = seq.trim().parse::<u64>() else {
                continue;
            };
            next_seq = next_seq.max(seq + 1);
            pending.remove(&seq);
        }
    }
    (pending, next_seq)
}

fn admit_record(seq: u64, line: &str) -> String {
    format!(
        "admit {seq} {:016x} {} {line}\n",
        fnv1a64(line.as_bytes()),
        line.len()
    )
}

fn append_synced(file: &mut std::fs::File, record: &str) -> std::io::Result<()> {
    file.write_all(record.as_bytes())?;
    file.sync_all()
}

impl RequestJournal {
    /// Opens (or creates) the journal at `path`, replaying any existing
    /// records. Returns the journal and the pending requests — admitted
    /// in a previous process life but never answered — in admission
    /// order. Best effort: an unopenable file yields a journal that
    /// records nothing (durability is lost, correctness is not).
    pub fn open(path: &Path) -> (RequestJournal, Vec<PendingRequest>) {
        let (pending, next_seq) = match std::fs::read_to_string(path) {
            Ok(text) => parse_journal(&text),
            Err(_) => (BTreeMap::new(), 0),
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok();
        let journal = RequestJournal {
            path: path.to_path_buf(),
            inner: Mutex::new(Inner { file, next_seq }),
        };
        let pending = pending
            .into_iter()
            .map(|(seq, line)| PendingRequest { seq, line })
            .collect();
        (journal, pending)
    }

    /// Records an admitted request line, fsynced, and returns its
    /// sequence number. `None` when the record could not be made
    /// durable (the request still runs; only replay protection is
    /// lost).
    pub fn record_admit(&self, line: &str) -> Option<u64> {
        let mut inner = lock(&self.inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let record = admit_record(seq, line);
        let file = inner.file.as_mut()?;
        append_synced(file, &record).ok()?;
        Some(seq)
    }

    /// Marks `seq` answered (exactly one terminal response written),
    /// fsynced.
    pub fn record_done(&self, seq: u64) {
        let mut inner = lock(&self.inner);
        if let Some(file) = inner.file.as_mut() {
            let _ = append_synced(file, &format!("done {seq}\n"));
        }
    }

    /// Compacts the journal to its pending tail: rewrites only admits
    /// lacking a done marker (tmp file + fsync + atomic rename), so a
    /// drained daemon leaves a minimal journal behind. Sequence
    /// numbering continues where it left off.
    pub fn compact(&self) {
        let mut inner = lock(&self.inner);
        let (pending, parsed_next) = match std::fs::read_to_string(&self.path) {
            Ok(text) => parse_journal(&text),
            Err(_) => return,
        };
        let mut tail = String::new();
        for (seq, line) in &pending {
            tail.push_str(&admit_record(*seq, line));
        }
        let tmp = self.path.with_extension(format!("tmp.{}", std::process::id()));
        let written = std::fs::File::create(&tmp).and_then(|mut f| {
            f.write_all(tail.as_bytes())?;
            f.sync_all()
        });
        if written.is_err() || std::fs::rename(&tmp, &self.path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if let Some(dir) = self.path.parent() {
            if let Ok(handle) = std::fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        // Reopen the append handle on the compacted file; the old
        // handle points at the unlinked pre-compaction inode.
        inner.file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .ok();
        inner.next_seq = inner.next_seq.max(parsed_next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "klest-journal-test-{}-{:016x}",
            std::process::id(),
            fnv1a64(tag.as_bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("journal.log")
    }

    #[test]
    fn admit_without_done_is_pending_after_reopen() {
        let path = tmp_journal("pending");
        {
            let (journal, pending) = RequestJournal::open(&path);
            assert!(pending.is_empty());
            let a = journal.record_admit(r#"{"id":"a"}"#).expect("durable");
            let b = journal.record_admit(r#"{"id":"b"}"#).expect("durable");
            let c = journal.record_admit(r#"{"id":"c"}"#).expect("durable");
            assert_eq!((a, b, c), (0, 1, 2));
            journal.record_done(b);
        }
        let (journal, pending) = RequestJournal::open(&path);
        assert_eq!(
            pending,
            vec![
                PendingRequest {
                    seq: 0,
                    line: r#"{"id":"a"}"#.into()
                },
                PendingRequest {
                    seq: 2,
                    line: r#"{"id":"c"}"#.into()
                },
            ]
        );
        // Sequence numbering continues past everything seen.
        assert_eq!(journal.record_admit(r#"{"id":"d"}"#), Some(3));
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn torn_and_corrupt_records_are_skipped() {
        let path = tmp_journal("torn");
        {
            let (journal, _) = RequestJournal::open(&path);
            journal.record_admit(r#"{"id":"whole"}"#).expect("durable");
        }
        // Simulate a crash mid-append: a second admit torn mid-payload,
        // then garbage, then a checksum lie.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("admit 1 0123456789abcdef 14 {\"id\":\"to");
        let _ = std::fs::write(&path, &text);
        {
            let (_, pending) = RequestJournal::open(&path);
            assert_eq!(pending.len(), 1, "{pending:?}");
            assert_eq!(pending[0].line, r#"{"id":"whole"}"#);
        }
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("\nnot a journal line\nadmit 5 ffffffffffffffff 9 {\"id\":9}x\n");
        let _ = std::fs::write(&path, &text);
        let (_, pending) = RequestJournal::open(&path);
        assert_eq!(pending.len(), 1, "checksum mismatch must not replay");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn compact_keeps_only_the_pending_tail() {
        let path = tmp_journal("compact");
        let (journal, _) = RequestJournal::open(&path);
        let a = journal.record_admit(r#"{"id":"a"}"#).expect("durable");
        let _b = journal.record_admit(r#"{"id":"b"}"#).expect("durable");
        journal.record_done(a);
        journal.compact();
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains(r#"{"id":"b"}"#), "{text}");
        assert!(!text.contains("done"), "{text}");
        // The journal stays usable after compaction.
        assert_eq!(journal.record_admit(r#"{"id":"c"}"#), Some(2));
        let (_, pending) = RequestJournal::open(&path);
        assert_eq!(pending.len(), 2, "{pending:?}");
        let _ = std::fs::remove_dir_all(path.parent().expect("parent"));
    }
}
