//! A minimal std-only JSON value type: strict recursive-descent parser
//! plus a compact single-line writer.
//!
//! The serve protocol is newline-delimited JSON from untrusted peers, so
//! the parser is written for hostility rather than speed: typed errors
//! with byte offsets (never a panic), a nesting-depth cap against stack
//! exhaustion, and an input-length cap enforced by the caller. `klest-obs`
//! has a JSON *writer* for run reports; requests additionally need a
//! *reader*, which lives here so the dependency stays one-way.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Protocol messages are
/// flat objects; anything deeper than this is hostile or broken input.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match wins); `None` for
    /// non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()
            .and_then(|members| members.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// Renders the value as compact single-line JSON (no spaces, no
    /// trailing newline) — the wire format of serve responses.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Round-trippable shortest form, like the obs writer.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A typed parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// [`JsonError`] with a byte offset for malformed input, over-deep
/// nesting (> 16 levels) or trailing garbage. Never panics.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        let end = self.pos + literal.len();
        if self.bytes.len() >= end && &self.bytes[self.pos..end] == literal.as_bytes() {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{literal}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let second = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&second) {
                                        let combined = 0x10000
                                            + ((first - 0xD800) << 10)
                                            + (second - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str so the
                    // bytes are valid UTF-8; find the char boundary.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = &self.bytes[self.pos..end];
        let mut value = 0u32;
        for &d in digits {
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            value = value * 16 + nibble;
        }
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError {
                offset: start,
                message: "invalid number".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_object() {
        let v = parse(r#"{"id":"q1","samples":128,"warm":true,"extra":null}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("q1"));
        assert_eq!(v.get("samples").and_then(Json::as_f64), Some(128.0));
        assert_eq!(v.get("warm").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("extra"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let v = parse(r#"[1, -2.5, 1e3, [true, "x"]]"#).unwrap();
        match v {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-2.5));
                assert_eq!(items[2], Json::Num(1000.0));
                assert_eq!(
                    items[3],
                    Json::Arr(vec![Json::Bool(true), Json::Str("x".into())])
                );
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\n\tAé""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\n\tA\u{e9}".into()));
        // Surrogate pair (U+1F600).
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "[1,,2]",
            "tru",
            "nul",
            "\"unterminated",
            r#""bad \q escape""#,
            r#""\ud800""#, // lone high surrogate
            "1.2.3",
            "1e",
            "nan",
            "{\"a\":1} trailing",
            "\u{0001}",
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn depth_bomb_is_rejected() {
        let bomb = "[".repeat(200) + &"]".repeat(200);
        let e = parse(&bomb).unwrap_err();
        assert!(e.message.contains("deep"), "{e}");
        // At the cap it still parses.
        let ok = "[".repeat(16) + &"]".repeat(16);
        parse(&ok).unwrap();
    }

    #[test]
    fn compact_writer_round_trips() {
        let v = Json::Obj(vec![
            ("id".into(), Json::Str("a\"b\n".into())),
            ("n".into(), Json::Num(2.5)),
            ("flag".into(), Json::Bool(false)),
            ("arr".into(), Json::Arr(vec![Json::Null, Json::Num(1.0)])),
        ]);
        let s = v.to_compact_string();
        assert!(!s.contains('\n'), "single line: {s}");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact_string(), "null");
    }
}
