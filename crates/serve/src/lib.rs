//! `klest-serve`: an overload-safe batched KLE/SSTA query daemon.
//!
//! The paper's argument is that correlation-kernel KLE makes
//! spatial-correlation-aware SSTA cheap enough to answer timing queries
//! interactively; this crate is the serving layer that turns the
//! workspace's stage graph, [`ArtifactCache`](klest_core::pipeline::ArtifactCache)
//! and [`Supervisor`](klest_runtime::Supervisor) plumbing into a
//! long-lived process that survives concurrent, hostile,
//! deadline-carrying traffic:
//!
//! - **Protocol** ([`protocol`]): newline-delimited JSON requests on
//!   stdin/stdout or a Unix socket, strictly validated into typed
//!   [`ServeRequest`]s — malformed input is a typed
//!   [`ServeError::BadRequest`] response, never a panic or exit.
//! - **Admission control** ([`server`]): a bounded queue with
//!   configurable depth; a full queue sheds with typed
//!   [`ServeError::Overloaded`] carrying a `retry_after_hint`, and a
//!   request whose deadline expires while queued is shed without ever
//!   consuming a worker.
//! - **Fault isolation**: each request runs under
//!   [`Supervisor::run_one`](klest_runtime::Supervisor::run_one) with
//!   its own child [`CancelToken`](klest_runtime::CancelToken) +
//!   [`Budget`](klest_runtime::Budget); a panicking, hanging or
//!   over-budget request is retried, salvaged via the degradation
//!   ladder, or reported as a typed `fault` — while every other
//!   in-flight request keeps running.
//! - **Warm restart** ([`journal`]): with a state directory
//!   configured, every admitted query is journaled (fsynced) before it
//!   runs and marked done after its one terminal response; a restarted
//!   daemon recovers the disk artifact cache (quarantining crash-torn
//!   entries) and replays the journal's pending tail, answering each
//!   journaled request exactly once.
//! - **Graceful drain**: EOF or a `shutdown` request stops admission,
//!   the backlog finishes within a drain budget, stragglers are
//!   cancelled cooperatively, and the final summary line is emitted
//!   only after every admitted request has its one terminal response.
//!   (The std-only daemon cannot trap SIGTERM; process managers should
//!   close stdin or send `{"op":"shutdown"}`, both of which trigger the
//!   same drain path.)
//!
//! All requests share one artifact cache, so repeated kernel/die
//! configurations skip mesh, Galerkin assembly and eigensolve entirely
//! — the hierarchical-reuse scenario of block-level timing flows.
//! Everything is instrumented through `klest-obs` (queue-depth gauge,
//! shed/admit/complete/salvage counters, warm/cold latency histograms).

#![deny(missing_docs)]

pub mod journal;
pub mod json;
pub mod protocol;
pub mod server;

pub use journal::{PendingRequest, RequestJournal};
pub use protocol::{
    parse_request, stats_response, BadRequest, CircuitSpec, KernelSpec, LatencyStats,
    QueryOutcome, QuerySpec, ServeError, ServeRequest, StatsReport, TraceInfo,
};
pub use server::{Server, ServeConfig, ServeSummary};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::time::Duration;

    fn run_lines(config: ServeConfig, lines: &str) -> (ServeSummary, Vec<String>) {
        let server = Server::new(config);
        let mut out: Vec<u8> = Vec::new();
        let summary = server.serve(Cursor::new(lines.to_string()), &mut out);
        let text = String::from_utf8(out).expect("responses are UTF-8");
        (summary, text.lines().map(str::to_string).collect())
    }

    fn status_of(line: &str) -> &str {
        let pat = "\"status\":\"";
        let start = line.find(pat).expect("line has a status") + pat.len();
        let rest = &line[start..];
        &rest[..rest.find('"').expect("status is quoted")]
    }

    fn line_for<'a>(lines: &'a [String], id: &str) -> &'a str {
        let pat = format!("\"id\":\"{id}\"");
        lines
            .iter()
            .find(|l| l.contains(&pat))
            .unwrap_or_else(|| panic!("no response for {id}: {lines:?}"))
    }

    fn fast_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            drain: Duration::from_secs(30),
            ..ServeConfig::default()
        }
    }

    const TINY: &str = r#""gates":8,"samples":16,"area_fraction":0.1"#;

    #[test]
    fn completes_queries_and_drains_clean_on_shutdown() {
        let input = format!(
            "{{\"id\":\"q1\",{TINY}}}\n{{\"op\":\"ping\",\"id\":\"p1\"}}\n{{\"op\":\"shutdown\"}}\n"
        );
        let (summary, lines) = run_lines(fast_config(), &input);
        assert_eq!(summary.admitted, 1);
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.pings, 1);
        assert!(summary.shutdown);
        assert!(summary.drained_clean);
        assert_eq!(summary.admitted, summary.admitted_terminals());
        assert_eq!(status_of(line_for(&lines, "q1")), "completed");
        assert_eq!(status_of(line_for(&lines, "p1")), "pong");
        assert!(lines.iter().any(|l| l.contains("\"status\":\"draining\"")));
        let last = lines.last().expect("summary line");
        assert!(last.contains("\"status\":\"drained\""), "{last}");
        assert!(last.contains("\"clean\":true"), "{last}");
    }

    #[test]
    fn second_identical_config_is_warm() {
        let input = format!("{{\"id\":\"a\",{TINY}}}\n{{\"id\":\"b\",{TINY}}}\n");
        let config = ServeConfig {
            workers: 1, // serialize so "b" runs after "a" populated the cache
            ..fast_config()
        };
        let (summary, lines) = run_lines(config, &input);
        assert_eq!(summary.completed, 2);
        assert!(line_for(&lines, "a").contains("\"warm\":false"));
        assert!(line_for(&lines, "b").contains("\"warm\":true"));
    }

    #[test]
    fn bad_requests_get_typed_responses_and_do_not_stop_service() {
        let input = format!(
            "this is not json\n{{\"id\":\"x\",\"bogus\":1}}\n{{\"id\":\"ok\",{TINY}}}\n"
        );
        let (summary, lines) = run_lines(fast_config(), &input);
        assert_eq!(summary.bad_requests, 2);
        assert_eq!(summary.completed, 1);
        assert!(lines
            .iter()
            .any(|l| l.contains("\"status\":\"bad_request\"") && l.contains("\"id\":null")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"status\":\"bad_request\"") && l.contains("\"id\":\"x\"")));
        assert_eq!(status_of(line_for(&lines, "ok")), "completed");
    }

    #[test]
    fn injected_panic_is_isolated_as_a_typed_fault() {
        let input = format!(
            "{{\"id\":\"boom\",\"inject_panic\":true,{TINY}}}\n{{\"id\":\"fine\",{TINY}}}\n"
        );
        let (summary, lines) = run_lines(fast_config(), &input);
        assert_eq!(summary.faults, 1);
        assert_eq!(summary.completed, 1);
        assert!(summary.drained_clean, "panic must not wedge the drain");
        let boom = line_for(&lines, "boom");
        assert_eq!(status_of(boom), "fault");
        assert!(boom.contains("\"attempts\":2"), "retried once: {boom}");
        assert!(boom.contains("fault drill"), "{boom}");
        assert_eq!(status_of(line_for(&lines, "fine")), "completed");
    }

    #[test]
    fn hanging_request_is_cancelled_by_its_deadline() {
        // One worker: "slow" hangs in MC until its 250 ms deadline trips;
        // "q2" waits in the queue meanwhile and its 50 ms queue deadline
        // expires, so it is shed without consuming the worker.
        let input = format!(
            concat!(
                "{{\"id\":\"slow\",\"inject_hang_ms\":30000,\"deadline_ms\":250,{}}}\n",
                "{{\"id\":\"q2\",\"deadline_ms\":50,{}}}\n"
            ),
            TINY, TINY
        );
        let config = ServeConfig {
            workers: 1,
            ..fast_config()
        };
        let (summary, lines) = run_lines(config, &input);
        let slow = line_for(&lines, "slow");
        assert!(
            matches!(status_of(slow), "cancelled" | "salvaged"),
            "hang must be broken by the deadline: {slow}"
        );
        let q2 = line_for(&lines, "q2");
        assert_eq!(status_of(q2), "shed", "{q2}");
        assert!(q2.contains("deadline_expired"), "{q2}");
        assert_eq!(summary.shed_deadline, 1);
        assert_eq!(summary.admitted, summary.admitted_terminals());
        assert!(summary.drained_clean);
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        // One worker is pinned by a hanging request; with queue depth 1
        // only one more query can wait, the rest shed as overloaded.
        let input = format!(
            concat!(
                "{{\"id\":\"pin\",\"inject_hang_ms\":30000,\"deadline_ms\":400,{}}}\n",
                "{{\"id\":\"w1\",{}}}\n",
                "{{\"id\":\"w2\",{}}}\n",
                "{{\"id\":\"w3\",{}}}\n"
            ),
            TINY, TINY, TINY, TINY
        );
        let config = ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..fast_config()
        };
        let (summary, lines) = run_lines(config, &input);
        assert!(
            summary.shed_overload >= 1,
            "at least one request must shed: {summary:?}"
        );
        let shed: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("\"reason\":\"overloaded\""))
            .collect();
        assert_eq!(shed.len() as u64, summary.shed_overload);
        for line in shed {
            assert!(line.contains("\"retry_after_ms\":"), "{line}");
        }
        assert_eq!(summary.admitted, summary.admitted_terminals());
    }

    #[test]
    fn every_request_gets_exactly_one_response() {
        let mut input = String::new();
        for i in 0..12 {
            input.push_str(&format!("{{\"id\":\"r{i}\",{TINY}}}\n"));
        }
        let (summary, lines) = run_lines(fast_config(), &input);
        for i in 0..12 {
            let pat = format!("\"id\":\"r{i}\"");
            let n = lines.iter().filter(|l| l.contains(&pat)).count();
            assert_eq!(n, 1, "request r{i} must have exactly one response");
        }
        assert_eq!(summary.received, 12);
        assert_eq!(summary.admitted, summary.admitted_terminals());
    }

    #[test]
    fn warm_restart_replays_journaled_requests_exactly_once() {
        let state_dir = std::env::temp_dir().join(format!(
            "klest-serve-state-{}-replay",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&state_dir);

        // Life 1: a normal run with a state dir. Both requests drain
        // cleanly, so the compacted journal must be empty and nothing
        // may replay in life 2.
        let config = ServeConfig {
            state_dir: Some(state_dir.clone()),
            ..fast_config()
        };
        let input = format!("{{\"id\":\"a\",{TINY}}}\n{{\"id\":\"b\",{TINY}}}\n");
        let (summary, _) = {
            let server = Server::new(config.clone());
            let mut out: Vec<u8> = Vec::new();
            let summary = server.serve(Cursor::new(input), &mut out);
            (summary, out)
        };
        assert_eq!(summary.completed, 2);
        let journal_path = state_dir.join("journal.log");
        assert_eq!(
            std::fs::read_to_string(&journal_path).expect("journal exists"),
            "",
            "a clean drain compacts the journal to empty"
        );

        // Simulate a crash: a process life that admitted two requests
        // (journaled) and died before answering either. The admit
        // records are exactly what RequestJournal::record_admit writes.
        {
            let (journal, pending) = journal::RequestJournal::open(&journal_path);
            assert!(pending.is_empty());
            journal
                .record_admit(&format!("{{\"id\":\"lost1\",{TINY}}}"))
                .expect("durable");
            journal
                .record_admit(&format!("{{\"id\":\"lost2\",{TINY}}}"))
                .expect("durable");
        }

        // Life 2: boots over the same state dir with an EMPTY input
        // stream — every response it produces comes from replay. The
        // disk cache warmed by life 1 must also survive.
        let server = Server::new(config);
        let mut out: Vec<u8> = Vec::new();
        let summary = server.serve(Cursor::new(String::new()), &mut out);
        let text = String::from_utf8(out).expect("responses are UTF-8");
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        assert_eq!(summary.admitted, 2, "{summary:?}");
        assert_eq!(summary.completed, 2, "{summary:?}");
        for id in ["lost1", "lost2"] {
            let pat = format!("\"id\":\"{id}\"");
            let n = lines.iter().filter(|l| l.contains(&pat)).count();
            assert_eq!(n, 1, "journaled request {id} must get exactly one response");
            assert_eq!(status_of(line_for(&lines, id)), "completed");
        }
        // Same kernel/die config as life 1 → the replayed queries hit
        // the recovered disk cache.
        assert!(
            line_for(&lines, "lost1").contains("\"warm\":true")
                || line_for(&lines, "lost2").contains("\"warm\":true"),
            "replay must run against the recovered disk cache: {lines:?}"
        );
        // Replayed-and-answered requests are done: nothing pends.
        let (_, pending) = journal::RequestJournal::open(&journal_path);
        assert!(pending.is_empty(), "{pending:?}");
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir().join(format!("klest-serve-sock-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("serve.sock");
        let server = Server::new(fast_config());
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.serve_unix(&path));
            // Wait for the socket to appear.
            for _ in 0..200 {
                if path.exists() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let mut stream = UnixStream::connect(&path).expect("connect");
            writeln!(stream, "{{\"id\":\"s1\",{TINY}}}").expect("write");
            writeln!(stream, "{{\"op\":\"shutdown\"}}").expect("write");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            let lines: Vec<String> = reader.lines().map_while(Result::ok).collect();
            assert!(
                lines.iter().any(|l| l.contains("\"id\":\"s1\"")
                    && l.contains("\"status\":\"completed\"")),
                "{lines:?}"
            );
            let summary = handle.join().expect("no panic").expect("no io error");
            assert_eq!(summary.completed, 1);
            assert!(summary.shutdown);
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
