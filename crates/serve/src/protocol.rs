//! The serve wire protocol: newline-delimited JSON requests in, one
//! newline-delimited JSON response per request out.
//!
//! Parsing is strict — unknown keys, out-of-range values and
//! wrong-typed fields are all typed [`BadRequest`]s, never panics —
//! because the daemon's contract is that arbitrary bytes on stdin can
//! degrade only the offending request. Every terminal state a request
//! can reach has exactly one response shape, enumerated by
//! [`ServeError`] and [`QueryOutcome`].

use std::time::Duration;

use klest_circuit::{BenchmarkId, TABLE1_BENCHMARKS};
use klest_obs::{HistState, SloSnapshot, SpanEntry};
use klest_kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel, SeparableExponentialKernel,
};

use crate::json::{self, Json};

/// Longest accepted request line, bytes. Anything longer is shed as a
/// [`BadRequest`] before the parser touches it.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Longest accepted request id, characters.
pub const MAX_ID_CHARS: usize = 128;

/// Which circuit a query times.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSpec {
    /// A Table 1 benchmark, scaled by `scale` (gate count multiplier).
    Named {
        /// The benchmark.
        id: BenchmarkId,
        /// Gate-count scale in `(0, 1]`.
        scale: f64,
    },
    /// A synthetic combinational circuit.
    Synthetic {
        /// Gate count.
        gates: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl CircuitSpec {
    /// A stable string key for per-process circuit memoisation.
    pub fn memo_key(&self) -> String {
        match self {
            CircuitSpec::Named { id, scale } => {
                format!("table1:{}:{:016x}", id.name(), scale.to_bits())
            }
            CircuitSpec::Synthetic { gates, seed } => format!("synth:{gates}:{seed}"),
        }
    }
}

/// Which correlation kernel a query uses, with validated parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelSpec {
    /// Gaussian kernel: explicit decay rate `c`, or derived from the
    /// correlation distance `dist` when `c` is absent.
    Gaussian {
        /// Decay rate; `None` means "derive from `dist`".
        c: Option<f64>,
        /// Correlation distance (used only when `c` is `None`).
        dist: f64,
    },
    /// Exponential kernel with decay rate `c`.
    Exponential {
        /// Decay rate.
        c: f64,
    },
    /// Separable (x/y product) exponential kernel with decay rate `c`.
    Separable {
        /// Decay rate.
        c: f64,
    },
    /// Matérn-family kernel with parameters `b`, `s`.
    Matern {
        /// Scale parameter.
        b: f64,
        /// Smoothness parameter.
        s: f64,
    },
}

impl KernelSpec {
    /// Instantiates the kernel.
    ///
    /// # Errors
    ///
    /// A user-facing message when a parameter the kernel's own
    /// constructor checks is out of range (request validation already
    /// rejects non-finite and non-positive values, so this is rare).
    pub fn build(&self) -> Result<Box<dyn CovarianceKernel>, String> {
        match self {
            KernelSpec::Gaussian { c: Some(c), .. } => GaussianKernel::try_new(*c)
                .map(|k| Box::new(k) as Box<dyn CovarianceKernel>)
                .map_err(|e| e.to_string()),
            KernelSpec::Gaussian { c: None, dist } => Ok(Box::new(
                GaussianKernel::with_correlation_distance(*dist),
            )),
            KernelSpec::Exponential { c } => ExponentialKernel::try_new(*c)
                .map(|k| Box::new(k) as Box<dyn CovarianceKernel>)
                .map_err(|e| e.to_string()),
            KernelSpec::Separable { c } => SeparableExponentialKernel::try_new(*c)
                .map(|k| Box::new(k) as Box<dyn CovarianceKernel>)
                .map_err(|e| e.to_string()),
            KernelSpec::Matern { b, s } => MaternKernel::new(*b, *s)
                .map(|k| Box::new(k) as Box<dyn CovarianceKernel>)
                .map_err(|e| e.to_string()),
        }
    }
}

/// How a query is executed.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryMode {
    /// Flat supervised Monte Carlo over the KLE sampler (default).
    Mc,
    /// Hierarchical block-model analysis: partition the die, extract a
    /// canonical timing model per block over the shared ξ basis (models
    /// are cached by region hash in the daemon's shared artifact
    /// cache), compose at the boundaries, and optionally re-time a
    /// one-gate edit — which invalidates exactly one block.
    Hier {
        /// Requested die-region block count.
        blocks: usize,
        /// Gate to edit after the nominal composition, when present.
        edit_gate: Option<usize>,
        /// Leading parameter magnitude applied to the edited gate.
        edit_scale: f64,
    },
}

/// A validated timing query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The circuit to time.
    pub circuit: CircuitSpec,
    /// The correlation kernel.
    pub kernel: KernelSpec,
    /// Monte Carlo sample count.
    pub samples: usize,
    /// Monte Carlo base seed.
    pub seed: u64,
    /// Mesh resolution: maximum triangle area as a fraction of the die.
    pub area_fraction: f64,
    /// Monte Carlo worker threads for this one request.
    pub threads: usize,
    /// Whole-request deadline measured from admission (queue wait
    /// counts); `None` falls back to the server default.
    pub deadline: Option<Duration>,
    /// Fault drill: panic inside the isolated request body on every
    /// attempt (exercises supervision; the daemon must answer `fault`).
    pub inject_panic: bool,
    /// Fault drill: cooperative hang of this many milliseconds inside
    /// the MC stage (exercises deadline cancellation).
    pub inject_hang_ms: Option<u64>,
    /// Client asked for a per-request trace (`"trace":true`); honoured
    /// only when the daemon also runs with `--trace-responses`.
    pub trace: bool,
    /// Flat Monte Carlo (default) or hierarchical block-model analysis.
    pub mode: QueryMode,
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// A timing query.
    Query {
        /// Client-chosen correlation id, echoed on the response.
        id: String,
        /// The validated query.
        spec: QuerySpec,
    },
    /// Liveness probe; answered inline with `pong`.
    Ping {
        /// Optional correlation id.
        id: Option<String>,
    },
    /// Introspection probe; answered inline with a [`StatsReport`].
    Stats {
        /// Optional correlation id.
        id: Option<String>,
    },
    /// Begin graceful drain: stop admitting, finish in-flight work.
    Shutdown,
}

/// A request that failed validation: the typed rejection, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// The client id, when one could be extracted from the broken line.
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

impl BadRequest {
    fn new(id: Option<String>, message: impl Into<String>) -> BadRequest {
        BadRequest {
            id,
            message: message.into(),
        }
    }
}

/// Why a request did not complete: every non-success terminal state of
/// the serve state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request failed validation.
    BadRequest {
        /// What was wrong.
        message: String,
    },
    /// The admission queue was full; retry after the hint.
    Overloaded {
        /// Estimated time until a slot frees up.
        retry_after_hint: Duration,
    },
    /// The request's deadline expired while it was still queued; it was
    /// shed without consuming a worker.
    DeadlineExpiredInQueue {
        /// How long it had waited.
        waited: Duration,
    },
    /// The server is draining and no longer runs queued work.
    Draining,
    /// The request was cancelled cooperatively (deadline or drain) and
    /// nothing was salvageable.
    Cancelled {
        /// The pipeline stage whose checkpoint tripped.
        stage: String,
        /// Wall time spent in service before the trip, ms.
        service_ms: u64,
    },
    /// The request panicked on every attempt (or failed internally);
    /// it was isolated and reported, sibling requests kept running.
    Fault {
        /// Attempts made (1 initial + retries).
        attempts: usize,
        /// Stringified panic payload or internal error.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::Overloaded { retry_after_hint } => write!(
                f,
                "overloaded, retry after {} ms",
                retry_after_hint.as_millis()
            ),
            ServeError::DeadlineExpiredInQueue { waited } => write!(
                f,
                "deadline expired after {} ms in queue",
                waited.as_millis()
            ),
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::Cancelled { stage, service_ms } => {
                write!(f, "cancelled at stage `{stage}` after {service_ms} ms")
            }
            ServeError::Fault { attempts, message } => {
                write!(f, "faulted after {attempts} attempt(s): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed (or salvaged-partial) query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Worst-delay sample mean.
    pub mean: f64,
    /// Worst-delay sample standard deviation.
    pub sigma: f64,
    /// KLE truncation rank used.
    pub rank: usize,
    /// Samples actually timed.
    pub samples: usize,
    /// Samples requested.
    pub planned: usize,
    /// True when the run was truncated/salvaged rather than complete.
    pub salvaged: bool,
    /// Confidence-interval widening factor (`1` for a full run).
    pub ci_widening: f64,
    /// True when the KLE spectrum came from the shared artifact cache.
    pub warm: bool,
    /// Supervisor retries consumed by this request.
    pub retries: usize,
    /// Mesh-ladder coarsenings recorded during the front end.
    pub coarsenings: usize,
    /// Time spent queued before a worker picked the request up, ms.
    pub queue_ms: u64,
    /// Time spent in service, ms.
    pub service_ms: u64,
    /// Per-request trace, present when the client asked (`"trace":true`)
    /// and the daemon allows it (`--trace-responses`).
    pub trace: Option<TraceInfo>,
    /// Hierarchical numbers, present on `"mode":"hier"` responses.
    pub hier: Option<HierOutcome>,
}

/// Block-model accounting carried on a `"mode":"hier"` response.
#[derive(Debug, Clone, PartialEq)]
pub struct HierOutcome {
    /// Die-region blocks in the partition.
    pub blocks: usize,
    /// Block models served from the daemon's shared artifact cache.
    pub cache_hits: usize,
    /// Block models extracted by this request.
    pub extracted: usize,
    /// The re-time that followed the requested one-gate edit.
    pub edit: Option<HierEditOutcome>,
}

/// Result of the one-gate edit re-time inside a hierarchical query.
#[derive(Debug, Clone, PartialEq)]
pub struct HierEditOutcome {
    /// The edited gate id.
    pub gate: usize,
    /// Blocks re-extracted by the edit (1 when invalidation is exact).
    pub extracted: usize,
    /// Blocks served warm from the cache during the re-time.
    pub cache_hits: usize,
    /// Composed worst mean after the edit.
    pub mean: f64,
    /// Composed worst sigma after the edit.
    pub sigma: f64,
}

/// Per-request trace carried on a query response: where the wall time
/// went, stage by stage, and which artifacts were already warm.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInfo {
    /// Daemon-assigned trace id (request id + per-daemon seed hashed
    /// through `klest-rng`; stable for a given daemon seed, no clock).
    pub trace_id: String,
    /// Artifact-cache warmth at admission: mesh layer.
    pub warm_mesh: bool,
    /// Artifact-cache warmth at admission: Galerkin-matrix layer.
    pub warm_galerkin: bool,
    /// Artifact-cache warmth at admission: spectrum layer.
    pub warm_spectrum: bool,
    /// Captured stage spans (path-keyed, first-seen order) from the
    /// worker thread that ran the request: mesh / assemble / eigensolve
    /// / truncate / ssta under the supervision root.
    pub stages: Vec<SpanEntry>,
    /// Salvage/degradation notes (retries, coarsenings, CI widening).
    pub events: Vec<String>,
}

/// One windowed latency reading inside a [`StatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Observations in the window.
    pub count: u64,
    /// Interpolated quantiles, `None` while the window is empty.
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
    /// Exact windowed mean.
    pub mean: Option<f64>,
}

impl LatencyStats {
    /// Summarises a merged window state.
    pub fn from_hist(h: &HistState) -> LatencyStats {
        LatencyStats {
            count: h.count,
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            mean: h.mean(),
        }
    }
}

/// Lifetime + windowed introspection snapshot answering `{"op":"stats"}`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Configured worker count.
    pub workers: usize,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Queue capacity.
    pub queue_capacity: usize,
    /// Queries admitted to the queue (lifetime).
    pub admitted: u64,
    /// Queries completed cleanly (lifetime).
    pub completed: u64,
    /// Queries salvaged partially (lifetime).
    pub salvaged: u64,
    /// Queries cancelled with nothing salvageable (lifetime).
    pub cancelled: u64,
    /// Queries faulted after retries (lifetime).
    pub faults: u64,
    /// Queries shed at admission: queue full (lifetime).
    pub shed_overload: u64,
    /// Queries shed at dequeue: deadline expired in queue (lifetime).
    pub shed_deadline: u64,
    /// Queries shed because the daemon was draining (lifetime).
    pub shed_draining: u64,
    /// Windowed service latency of cache-warm queries, ms.
    pub latency_warm: LatencyStats,
    /// Windowed service latency of cache-cold queries, ms.
    pub latency_cold: LatencyStats,
    /// Windowed queue-wait latency, ms.
    pub queue_wait: LatencyStats,
    /// Artifact-cache hits (lifetime, all layers).
    pub cache_hits: u64,
    /// Artifact-cache misses (lifetime, all layers).
    pub cache_misses: u64,
    /// Memory-layer entry counts in `(mesh, galerkin, spectrum, block)`
    /// order.
    pub cache_sizes: (usize, usize, usize, usize),
    /// Hierarchical block-model cache hits (lifetime).
    pub cache_block_hits: u64,
    /// Hierarchical block-model cache misses (lifetime).
    pub cache_block_misses: u64,
    /// Disk-cache store attempts that failed and lost the persistent
    /// copy (lifetime).
    pub cache_disk_write_failures: u64,
    /// Corrupt/torn disk-cache entries quarantined — renamed aside to
    /// `*.quarantine` — instead of silently recomputed (lifetime).
    pub cache_quarantined: u64,
    /// Busy fraction of `workers × uptime`, `None` until measurable.
    pub utilization: Option<f64>,
    /// Windowed deadline-SLO reading.
    pub slo: SloSnapshot,
}

fn id_json(id: Option<&str>) -> Json {
    match id {
        Some(s) => Json::Str(s.to_string()),
        None => Json::Null,
    }
}

/// Renders the single response line for a successful query.
pub fn outcome_response(id: &str, o: &QueryOutcome) -> String {
    let status = if o.salvaged { "salvaged" } else { "completed" };
    let mut members = vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("status".to_string(), Json::Str(status.into())),
        ("mean".to_string(), Json::Num(o.mean)),
        ("sigma".to_string(), Json::Num(o.sigma)),
        ("rank".to_string(), Json::Num(o.rank as f64)),
        ("samples".to_string(), Json::Num(o.samples as f64)),
        ("planned".to_string(), Json::Num(o.planned as f64)),
        ("ci_widening".to_string(), Json::Num(o.ci_widening)),
        ("warm".to_string(), Json::Bool(o.warm)),
        ("retries".to_string(), Json::Num(o.retries as f64)),
        ("coarsenings".to_string(), Json::Num(o.coarsenings as f64)),
        ("queue_ms".to_string(), Json::Num(o.queue_ms as f64)),
        ("service_ms".to_string(), Json::Num(o.service_ms as f64)),
    ];
    if let Some(h) = &o.hier {
        let mut fields = vec![
            ("blocks".to_string(), Json::Num(h.blocks as f64)),
            ("cache_hits".to_string(), Json::Num(h.cache_hits as f64)),
            ("extracted".to_string(), Json::Num(h.extracted as f64)),
        ];
        if let Some(e) = &h.edit {
            fields.push((
                "edit".to_string(),
                Json::Obj(vec![
                    ("gate".to_string(), Json::Num(e.gate as f64)),
                    ("extracted".to_string(), Json::Num(e.extracted as f64)),
                    ("cache_hits".to_string(), Json::Num(e.cache_hits as f64)),
                    ("mean".to_string(), Json::Num(e.mean)),
                    ("sigma".to_string(), Json::Num(e.sigma)),
                ]),
            ));
        }
        members.push(("hier".to_string(), Json::Obj(fields)));
    }
    if let Some(trace) = &o.trace {
        members.push(("trace".to_string(), trace_json(trace)));
    }
    Json::Obj(members).to_compact_string()
}

fn trace_json(t: &TraceInfo) -> Json {
    Json::Obj(vec![
        ("trace_id".to_string(), Json::Str(t.trace_id.clone())),
        (
            "artifacts_warm".to_string(),
            Json::Obj(vec![
                ("mesh".to_string(), Json::Bool(t.warm_mesh)),
                ("galerkin".to_string(), Json::Bool(t.warm_galerkin)),
                ("spectrum".to_string(), Json::Bool(t.warm_spectrum)),
            ]),
        ),
        (
            "stages".to_string(),
            Json::Arr(
                t.stages
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("path".to_string(), Json::Str(s.path.clone())),
                            ("count".to_string(), Json::Num(s.count as f64)),
                            ("wall_ns".to_string(), Json::Num(s.wall_ns as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "events".to_string(),
            Json::Arr(t.events.iter().map(|e| Json::Str(e.clone())).collect()),
        ),
    ])
}

fn latency_json(l: &LatencyStats) -> Json {
    let opt = |v: Option<f64>| match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("count".to_string(), Json::Num(l.count as f64)),
        ("p50".to_string(), opt(l.p50)),
        ("p95".to_string(), opt(l.p95)),
        ("p99".to_string(), opt(l.p99)),
        ("mean".to_string(), opt(l.mean)),
    ])
}

/// Renders the response to a `{"op":"stats"}` introspection probe.
pub fn stats_response(id: Option<&str>, s: &StatsReport) -> String {
    let opt = |v: Option<f64>| match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    };
    let hits_misses = s.cache_hits + s.cache_misses;
    let hit_ratio = if hits_misses == 0 {
        Json::Null
    } else {
        Json::Num(s.cache_hits as f64 / hits_misses as f64)
    };
    let (mesh_n, galerkin_n, spectrum_n, block_n) = s.cache_sizes;
    let block_lookups = s.cache_block_hits + s.cache_block_misses;
    let block_hit_ratio = if block_lookups == 0 {
        Json::Null
    } else {
        Json::Num(s.cache_block_hits as f64 / block_lookups as f64)
    };
    Json::Obj(vec![
        ("id".to_string(), id_json(id)),
        ("status".to_string(), Json::Str("stats".into())),
        ("uptime_ms".to_string(), Json::Num(s.uptime_ms as f64)),
        ("workers".to_string(), Json::Num(s.workers as f64)),
        (
            "queue".to_string(),
            Json::Obj(vec![
                ("depth".to_string(), Json::Num(s.queue_depth as f64)),
                ("capacity".to_string(), Json::Num(s.queue_capacity as f64)),
            ]),
        ),
        (
            "requests".to_string(),
            Json::Obj(vec![
                ("admitted".to_string(), Json::Num(s.admitted as f64)),
                ("completed".to_string(), Json::Num(s.completed as f64)),
                ("salvaged".to_string(), Json::Num(s.salvaged as f64)),
                ("cancelled".to_string(), Json::Num(s.cancelled as f64)),
                ("faults".to_string(), Json::Num(s.faults as f64)),
                ("shed_overload".to_string(), Json::Num(s.shed_overload as f64)),
                ("shed_deadline".to_string(), Json::Num(s.shed_deadline as f64)),
                ("shed_draining".to_string(), Json::Num(s.shed_draining as f64)),
            ]),
        ),
        (
            "latency_ms".to_string(),
            Json::Obj(vec![
                ("warm".to_string(), latency_json(&s.latency_warm)),
                ("cold".to_string(), latency_json(&s.latency_cold)),
                ("queue_wait".to_string(), latency_json(&s.queue_wait)),
            ]),
        ),
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Num(s.cache_hits as f64)),
                ("misses".to_string(), Json::Num(s.cache_misses as f64)),
                ("hit_ratio".to_string(), hit_ratio),
                (
                    "disk_write_failures".to_string(),
                    Json::Num(s.cache_disk_write_failures as f64),
                ),
                (
                    "quarantined".to_string(),
                    Json::Num(s.cache_quarantined as f64),
                ),
                (
                    "sizes".to_string(),
                    Json::Obj(vec![
                        ("mesh".to_string(), Json::Num(mesh_n as f64)),
                        ("galerkin".to_string(), Json::Num(galerkin_n as f64)),
                        ("spectrum".to_string(), Json::Num(spectrum_n as f64)),
                        ("block".to_string(), Json::Num(block_n as f64)),
                    ]),
                ),
                (
                    "block".to_string(),
                    Json::Obj(vec![
                        ("hits".to_string(), Json::Num(s.cache_block_hits as f64)),
                        (
                            "misses".to_string(),
                            Json::Num(s.cache_block_misses as f64),
                        ),
                        ("hit_ratio".to_string(), block_hit_ratio),
                        ("entries".to_string(), Json::Num(block_n as f64)),
                    ]),
                ),
            ]),
        ),
        ("utilization".to_string(), opt(s.utilization)),
        (
            "slo".to_string(),
            Json::Obj(vec![
                ("target".to_string(), Json::Num(s.slo.target)),
                ("window_total".to_string(), Json::Num(s.slo.total as f64)),
                ("window_met".to_string(), Json::Num(s.slo.met as f64)),
                ("fraction".to_string(), opt(s.slo.fraction())),
                (
                    "error_budget_remaining".to_string(),
                    opt(s.slo.error_budget_remaining()),
                ),
            ]),
        ),
    ])
    .to_compact_string()
}

/// Renders the single response line for a failed/shed request.
pub fn error_response(id: Option<&str>, err: &ServeError) -> String {
    let mut members = vec![("id".to_string(), id_json(id))];
    match err {
        ServeError::BadRequest { message } => {
            members.push(("status".into(), Json::Str("bad_request".into())));
            members.push(("message".into(), Json::Str(message.clone())));
        }
        ServeError::Overloaded { retry_after_hint } => {
            members.push(("status".into(), Json::Str("shed".into())));
            members.push(("reason".into(), Json::Str("overloaded".into())));
            members.push((
                "retry_after_ms".into(),
                Json::Num(retry_after_hint.as_millis() as f64),
            ));
        }
        ServeError::DeadlineExpiredInQueue { waited } => {
            members.push(("status".into(), Json::Str("shed".into())));
            members.push(("reason".into(), Json::Str("deadline_expired".into())));
            members.push(("waited_ms".into(), Json::Num(waited.as_millis() as f64)));
        }
        ServeError::Draining => {
            members.push(("status".into(), Json::Str("shed".into())));
            members.push(("reason".into(), Json::Str("draining".into())));
        }
        ServeError::Cancelled { stage, service_ms } => {
            members.push(("status".into(), Json::Str("cancelled".into())));
            members.push(("stage".into(), Json::Str(stage.clone())));
            members.push(("service_ms".into(), Json::Num(*service_ms as f64)));
        }
        ServeError::Fault { attempts, message } => {
            members.push(("status".into(), Json::Str("fault".into())));
            members.push(("attempts".into(), Json::Num(*attempts as f64)));
            members.push(("message".into(), Json::Str(message.clone())));
        }
    }
    Json::Obj(members).to_compact_string()
}

/// Renders the response to a ping.
pub fn pong_response(id: Option<&str>) -> String {
    Json::Obj(vec![
        ("id".into(), id_json(id)),
        ("status".into(), Json::Str("pong".into())),
    ])
    .to_compact_string()
}

/// Renders the acknowledgement emitted when a `shutdown` request flips
/// the server into drain mode.
pub fn draining_response() -> String {
    Json::Obj(vec![("status".into(), Json::Str("draining".into()))]).to_compact_string()
}

const KNOWN_KEYS: [&str; 23] = [
    "id",
    "op",
    "trace",
    "circuit",
    "scale",
    "gates",
    "circuit_seed",
    "kernel",
    "c",
    "dist",
    "b",
    "s",
    "samples",
    "seed",
    "area_fraction",
    "threads",
    "deadline_ms",
    "inject_panic",
    "inject_hang_ms",
    "mode",
    "blocks",
    "edit_gate",
    "edit_scale",
];

fn extract_id(value: &Json) -> Result<Option<String>, String> {
    match value.get("id") {
        None => Ok(None),
        Some(Json::Str(s)) => {
            if s.is_empty() {
                Err("`id` must be non-empty".into())
            } else if s.chars().count() > MAX_ID_CHARS {
                Err(format!("`id` longer than {MAX_ID_CHARS} characters"))
            } else {
                Ok(Some(s.clone()))
            }
        }
        Some(Json::Num(n)) => {
            if n.fract() == 0.0 && (0.0..9.0e15).contains(n) {
                Ok(Some(format!("{}", *n as u64)))
            } else {
                Err("`id` number must be a non-negative integer".into())
            }
        }
        Some(_) => Err("`id` must be a string or integer".into()),
    }
}

fn field_f64(obj: &Json, key: &str) -> Result<Option<f64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(format!("`{key}` must be a number")),
    }
}

fn field_uint(obj: &Json, key: &str, min: u64, max: u64) -> Result<Option<u64>, String> {
    match field_f64(obj, key)? {
        None => Ok(None),
        Some(n) => {
            if n.fract() != 0.0 || !(0.0..9.0e15).contains(&n) {
                return Err(format!("`{key}` must be a non-negative integer"));
            }
            let v = n as u64;
            if v < min || v > max {
                return Err(format!("`{key}` must be in {min}..={max}, got {v}"));
            }
            Ok(Some(v))
        }
    }
}

fn field_pos_f64(obj: &Json, key: &str) -> Result<Option<f64>, String> {
    match field_f64(obj, key)? {
        None => Ok(None),
        Some(n) if n.is_finite() && n > 0.0 => Ok(Some(n)),
        Some(n) => Err(format!("`{key}` must be finite and positive, got {n}")),
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<Option<bool>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.as_str())),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn parse_circuit(obj: &Json) -> Result<CircuitSpec, String> {
    let name = field_str(obj, "circuit")?.unwrap_or("synth");
    if name == "synth" {
        if obj.get("scale").is_some() {
            return Err("`scale` applies only to named Table 1 circuits".into());
        }
        let gates = field_uint(obj, "gates", 2, 50_000)?.unwrap_or(48) as usize;
        let seed = field_uint(obj, "circuit_seed", 0, u64::MAX)?.unwrap_or(7);
        return Ok(CircuitSpec::Synthetic { gates, seed });
    }
    if obj.get("gates").is_some() || obj.get("circuit_seed").is_some() {
        return Err("`gates`/`circuit_seed` apply only to `circuit:\"synth\"`".into());
    }
    let id = TABLE1_BENCHMARKS
        .iter()
        .find(|b| b.name() == name)
        .copied()
        .ok_or_else(|| format!("unknown circuit '{name}' (a Table 1 name or \"synth\")"))?;
    let scale = match field_pos_f64(obj, "scale")? {
        None => 0.05,
        Some(s) if s <= 1.0 => s,
        Some(s) => return Err(format!("`scale` must be in (0, 1], got {s}")),
    };
    Ok(CircuitSpec::Named { id, scale })
}

fn parse_kernel(obj: &Json) -> Result<KernelSpec, String> {
    let name = field_str(obj, "kernel")?.unwrap_or("gaussian");
    let reject = |keys: &[&str], kernel: &str| -> Result<(), String> {
        for k in keys {
            if obj.get(k).is_some() {
                return Err(format!("`{k}` is not a parameter of the {kernel} kernel"));
            }
        }
        Ok(())
    };
    let spec = match name {
        "gaussian" => {
            reject(&["b", "s"], "gaussian")?;
            KernelSpec::Gaussian {
                c: field_pos_f64(obj, "c")?,
                dist: field_pos_f64(obj, "dist")?.unwrap_or(1.0),
            }
        }
        "exponential" => {
            reject(&["dist", "b", "s"], "exponential")?;
            KernelSpec::Exponential {
                c: field_pos_f64(obj, "c")?.unwrap_or(2.0),
            }
        }
        "separable" => {
            reject(&["dist", "b", "s"], "separable")?;
            KernelSpec::Separable {
                c: field_pos_f64(obj, "c")?.unwrap_or(1.5),
            }
        }
        "matern" => {
            reject(&["dist", "c"], "matern")?;
            KernelSpec::Matern {
                b: field_pos_f64(obj, "b")?.unwrap_or(3.0),
                s: field_pos_f64(obj, "s")?.unwrap_or(2.5),
            }
        }
        other => {
            return Err(format!(
                "unknown kernel '{other}' (expected gaussian, exponential, separable or matern)"
            ))
        }
    };
    // Surface constructor-level rejections (e.g. Matérn parameter
    // combinations) at validation time, not inside a worker.
    spec.build()?;
    Ok(spec)
}

/// Parses and strictly validates one request line.
///
/// # Errors
///
/// [`BadRequest`] carrying the client id when one was recoverable, for:
/// oversized lines, malformed JSON, non-object payloads, unknown keys,
/// wrong-typed fields, out-of-range values, and unknown `op`s.
pub fn parse_request(line: &str) -> Result<ServeRequest, BadRequest> {
    if line.len() > MAX_LINE_BYTES {
        return Err(BadRequest::new(
            None,
            format!("request line longer than {MAX_LINE_BYTES} bytes"),
        ));
    }
    let value = json::parse(line)
        .map_err(|e| BadRequest::new(None, format!("malformed JSON: {e}")))?;
    let members = value
        .as_obj()
        .ok_or_else(|| BadRequest::new(None, "request must be a JSON object"))?;
    // The id is extracted first so later rejections can carry it.
    let id = extract_id(&value).map_err(|m| BadRequest::new(None, m))?;
    let bad = |m: String| BadRequest::new(id.clone(), m);
    for (key, _) in members {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(bad(format!("unknown key `{key}`")));
        }
    }
    let op = field_str(&value, "op").map_err(bad)?.unwrap_or("query");
    match op {
        "ping" => return Ok(ServeRequest::Ping { id }),
        "stats" => return Ok(ServeRequest::Stats { id }),
        "shutdown" => return Ok(ServeRequest::Shutdown),
        "query" => {}
        other => {
            return Err(bad(format!(
                "unknown op '{other}' (expected query, ping, stats or shutdown)"
            )))
        }
    }
    let id = id.ok_or_else(|| BadRequest::new(None, "query requests require an `id`"))?;
    let bad = |m: String| BadRequest::new(Some(id.clone()), m);
    let circuit = parse_circuit(&value).map_err(bad)?;
    let kernel = parse_kernel(&value).map_err(bad)?;
    let samples = field_uint(&value, "samples", 1, 100_000).map_err(bad)?.unwrap_or(200) as usize;
    let seed = field_uint(&value, "seed", 0, u64::MAX).map_err(bad)?.unwrap_or(2008);
    let threads = field_uint(&value, "threads", 1, 32).map_err(bad)?.unwrap_or(1) as usize;
    let area_fraction = match field_pos_f64(&value, "area_fraction").map_err(bad)? {
        None => 0.02,
        Some(a) if (1e-4..=1.0).contains(&a) => a,
        Some(a) => {
            return Err(BadRequest::new(
                Some(id),
                format!("`area_fraction` must be in [1e-4, 1], got {a}"),
            ))
        }
    };
    let deadline = field_uint(&value, "deadline_ms", 1, 600_000)
        .map_err(bad)?
        .map(Duration::from_millis);
    let inject_panic = field_bool(&value, "inject_panic").map_err(bad)?.unwrap_or(false);
    let inject_hang_ms = field_uint(&value, "inject_hang_ms", 1, 60_000).map_err(bad)?;
    let trace = field_bool(&value, "trace").map_err(bad)?.unwrap_or(false);
    let mode = parse_mode(&value).map_err(bad)?;
    Ok(ServeRequest::Query {
        id,
        spec: QuerySpec {
            circuit,
            kernel,
            samples,
            seed,
            area_fraction,
            threads,
            deadline,
            inject_panic,
            inject_hang_ms,
            trace,
            mode,
        },
    })
}

fn parse_mode(obj: &Json) -> Result<QueryMode, String> {
    match field_str(obj, "mode")?.unwrap_or("mc") {
        "mc" => {
            for k in ["blocks", "edit_gate", "edit_scale"] {
                if obj.get(k).is_some() {
                    return Err(format!("`{k}` applies only to `mode:\"hier\"`"));
                }
            }
            Ok(QueryMode::Mc)
        }
        "hier" => {
            // The hierarchical path composes canonical block models; it
            // runs no Monte Carlo stage, so MC-only knobs are rejected
            // rather than silently ignored.
            for k in ["samples", "seed", "threads", "inject_hang_ms"] {
                if obj.get(k).is_some() {
                    return Err(format!(
                        "`{k}` applies only to `mode:\"mc\"` (hier runs no Monte Carlo)"
                    ));
                }
            }
            let blocks = field_uint(obj, "blocks", 1, 64)?.unwrap_or(4) as usize;
            let edit_gate = field_uint(obj, "edit_gate", 0, 9_000_000_000_000_000)?
                .map(|v| v as usize);
            if edit_gate.is_none() && obj.get("edit_scale").is_some() {
                return Err("`edit_scale` requires `edit_gate`".into());
            }
            let edit_scale = match field_f64(obj, "edit_scale")? {
                None => 0.3,
                Some(s) if s.is_finite() && s.abs() <= 10.0 => s,
                Some(s) => {
                    return Err(format!(
                        "`edit_scale` must be finite with magnitude <= 10, got {s}"
                    ))
                }
            };
            Ok(QueryMode::Hier {
                blocks,
                edit_gate,
                edit_scale,
            })
        }
        other => Err(format!("unknown mode '{other}' (expected mc or hier)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_query(line: &str) -> QuerySpec {
        match parse_request(line) {
            Ok(ServeRequest::Query { spec, .. }) => spec,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn minimal_query_gets_defaults() {
        let spec = parse_query(r#"{"id":"q1"}"#);
        assert_eq!(
            spec.circuit,
            CircuitSpec::Synthetic { gates: 48, seed: 7 }
        );
        assert_eq!(spec.samples, 200);
        assert_eq!(spec.seed, 2008);
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.deadline, None);
        assert!(!spec.inject_panic);
        assert!(matches!(spec.kernel, KernelSpec::Gaussian { c: None, .. }));
        assert_eq!(spec.mode, QueryMode::Mc);
    }

    #[test]
    fn hier_mode_parses_with_defaults_and_edit_fields() {
        let spec = parse_query(r#"{"id":"h1","mode":"hier"}"#);
        assert_eq!(
            spec.mode,
            QueryMode::Hier {
                blocks: 4,
                edit_gate: None,
                edit_scale: 0.3
            }
        );
        let spec = parse_query(
            r#"{"id":"h2","mode":"hier","blocks":8,"edit_gate":33,"edit_scale":0.5}"#,
        );
        assert_eq!(
            spec.mode,
            QueryMode::Hier {
                blocks: 8,
                edit_gate: Some(33),
                edit_scale: 0.5
            }
        );
    }

    #[test]
    fn hier_mode_rejections_are_typed() {
        let cases: [(&str, &str); 6] = [
            (r#"{"id":"h","mode":"flat"}"#, "unknown mode"),
            (r#"{"id":"h","blocks":4}"#, "applies only to `mode:\"hier\"`"),
            (r#"{"id":"h","mode":"hier","blocks":0}"#, "`blocks` must be in"),
            (
                r#"{"id":"h","mode":"hier","samples":50}"#,
                "hier runs no Monte Carlo",
            ),
            (
                r#"{"id":"h","mode":"hier","edit_scale":0.5}"#,
                "`edit_scale` requires `edit_gate`",
            ),
            (
                r#"{"id":"h","mode":"hier","edit_gate":1,"edit_scale":99}"#,
                "magnitude <= 10",
            ),
        ];
        for (line, want) in cases {
            let e = parse_request(line).expect_err(line);
            assert!(e.message.contains(want), "{line}: {}", e.message);
            assert_eq!(e.id.as_deref(), Some("h"), "{line}");
        }
    }

    #[test]
    fn named_circuit_with_scale_and_numeric_id() {
        match parse_request(r#"{"id":7,"circuit":"c880","scale":0.1,"samples":64}"#) {
            Ok(ServeRequest::Query { id, spec }) => {
                assert_eq!(id, "7");
                assert!(matches!(spec.circuit, CircuitSpec::Named { id, scale }
                    if id.name() == "c880" && scale == 0.1));
                assert_eq!(spec.samples, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ping_and_shutdown_ops() {
        assert_eq!(
            parse_request(r#"{"op":"ping","id":"p"}"#),
            Ok(ServeRequest::Ping {
                id: Some("p".into())
            })
        );
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(ServeRequest::Ping { id: None }));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(ServeRequest::Shutdown));
    }

    #[test]
    fn stats_op_and_trace_field() {
        assert_eq!(
            parse_request(r#"{"op":"stats","id":"s1"}"#),
            Ok(ServeRequest::Stats {
                id: Some("s1".into())
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(ServeRequest::Stats { id: None })
        );
        assert!(parse_query(r#"{"id":"q","trace":true}"#).trace);
        assert!(!parse_query(r#"{"id":"q"}"#).trace);
        let e = parse_request(r#"{"id":"q","trace":1}"#).unwrap_err();
        assert!(e.message.contains("must be a boolean"), "{}", e.message);
    }

    #[test]
    fn rejections_are_typed_and_carry_the_id() {
        let cases: [(&str, &str); 12] = [
            ("not json", "malformed JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"id":"q","bogus":1}"#, "unknown key `bogus`"),
            (r#"{"id":"q","op":"destroy"}"#, "unknown op"),
            (r#"{"circuit":"c880"}"#, "require an `id`"),
            (r#"{"id":"q","circuit":"c999"}"#, "unknown circuit"),
            (r#"{"id":"q","circuit":"c880","scale":2.0}"#, "`scale` must be in (0, 1]"),
            (r#"{"id":"q","scale":0.5}"#, "applies only to named"),
            (r#"{"id":"q","samples":0}"#, "`samples` must be in"),
            (r#"{"id":"q","samples":2.5}"#, "non-negative integer"),
            (r#"{"id":"q","kernel":"matern","c":1.0}"#, "not a parameter"),
            (r#"{"id":"q","deadline_ms":-5}"#, "non-negative integer"),
        ];
        for (line, want) in cases {
            let e = parse_request(line).expect_err(line);
            assert!(e.message.contains(want), "{line}: {}", e.message);
        }
        // The id rides along when recoverable.
        let e = parse_request(r#"{"id":"q9","samples":0}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("q9"));
    }

    #[test]
    fn oversized_line_is_rejected_before_parsing() {
        let line = format!(r#"{{"id":"q","c":{}}}"#, "1".repeat(MAX_LINE_BYTES));
        let e = parse_request(&line).unwrap_err();
        assert!(e.message.contains("longer than"));
    }

    #[test]
    fn kernel_specs_build() {
        for line in [
            r#"{"id":"q","kernel":"gaussian","c":0.3}"#,
            r#"{"id":"q","kernel":"gaussian","dist":0.5}"#,
            r#"{"id":"q","kernel":"exponential","c":2.0}"#,
            r#"{"id":"q","kernel":"separable"}"#,
            r#"{"id":"q","kernel":"matern"}"#,
        ] {
            let spec = parse_query(line);
            spec.kernel.build().expect(line);
        }
    }

    #[test]
    fn responses_are_single_line_json_with_status() {
        let outcome = QueryOutcome {
            mean: 1.5,
            sigma: 0.1,
            rank: 12,
            samples: 100,
            planned: 100,
            salvaged: false,
            ci_widening: 1.0,
            warm: true,
            retries: 0,
            coarsenings: 0,
            queue_ms: 3,
            service_ms: 40,
            trace: None,
            hier: None,
        };
        let line = outcome_response("q1", &outcome);
        assert!(line.contains(r#""status":"completed""#), "{line}");
        assert!(!line.contains('\n'));
        assert!(!line.contains(r#""trace""#), "no trace unless attached: {line}");
        assert!(!line.contains(r#""hier""#), "no hier section on mc responses: {line}");

        let hier = QueryOutcome {
            hier: Some(HierOutcome {
                blocks: 6,
                cache_hits: 2,
                extracted: 4,
                edit: Some(HierEditOutcome {
                    gate: 33,
                    extracted: 1,
                    cache_hits: 0,
                    mean: 1.62,
                    sigma: 0.11,
                }),
            }),
            ..outcome.clone()
        };
        let hier_line = outcome_response("q1", &hier);
        assert!(
            hier_line.contains(r#""hier":{"blocks":6,"cache_hits":2,"extracted":4,"edit":{"gate":33,"extracted":1,"cache_hits":0,"mean":1.62,"sigma":0.11}}"#),
            "{hier_line}"
        );
        assert!(!hier_line.contains('\n'));

        let traced = QueryOutcome {
            trace: Some(TraceInfo {
                trace_id: "t0ffee".into(),
                warm_mesh: true,
                warm_galerkin: false,
                warm_spectrum: false,
                stages: vec![SpanEntry {
                    path: "req/kle/galerkin/assemble".into(),
                    count: 1,
                    wall_ns: 12_345,
                }],
                events: vec!["salvaged 60/200 samples".into()],
            }),
            ..outcome.clone()
        };
        let traced_line = outcome_response("q1", &traced);
        assert!(traced_line.contains(r#""trace":{"trace_id":"t0ffee""#), "{traced_line}");
        assert!(
            traced_line.contains(r#""path":"req/kle/galerkin/assemble""#),
            "{traced_line}"
        );
        assert!(traced_line.contains(r#""mesh":true"#), "{traced_line}");
        assert!(!traced_line.contains('\n'));

        let salvaged = QueryOutcome {
            salvaged: true,
            samples: 60,
            ci_widening: 1.29,
            ..outcome
        };
        assert!(outcome_response("q1", &salvaged).contains(r#""status":"salvaged""#));

        let shed = error_response(
            Some("q2"),
            &ServeError::Overloaded {
                retry_after_hint: Duration::from_millis(250),
            },
        );
        assert!(shed.contains(r#""reason":"overloaded""#), "{shed}");
        assert!(shed.contains(r#""retry_after_ms":250"#), "{shed}");

        let bad = error_response(None, &ServeError::BadRequest { message: "x".into() });
        assert!(bad.contains(r#""id":null"#), "{bad}");
        assert!(pong_response(Some("p")).contains(r#""status":"pong""#));
        assert!(draining_response().contains("draining"));
    }

    #[test]
    fn stats_response_carries_every_acceptance_field() {
        let mut warm = HistState::with_bounds(&[10.0, 100.0]);
        warm.record(5.0);
        warm.record(50.0);
        let report = StatsReport {
            uptime_ms: 12_000,
            workers: 4,
            queue_depth: 2,
            queue_capacity: 64,
            admitted: 100,
            completed: 90,
            salvaged: 3,
            cancelled: 2,
            faults: 1,
            shed_overload: 3,
            shed_deadline: 1,
            shed_draining: 0,
            latency_warm: LatencyStats::from_hist(&warm),
            latency_cold: LatencyStats::from_hist(&HistState::with_bounds(&[10.0])),
            queue_wait: LatencyStats::from_hist(&warm),
            cache_hits: 80,
            cache_misses: 20,
            cache_sizes: (2, 2, 2, 3),
            cache_block_hits: 6,
            cache_block_misses: 2,
            cache_disk_write_failures: 4,
            cache_quarantined: 1,
            utilization: Some(0.5),
            slo: SloSnapshot {
                target: 0.9,
                total: 50,
                met: 49,
            },
        };
        let line = stats_response(Some("s"), &report);
        for needle in [
            r#""status":"stats""#,
            r#""queue":{"depth":2,"capacity":64}"#,
            r#""shed_overload":3"#,
            r#""faults":1"#,
            r#""warm":{"count":2,"p50":"#,
            r#""cold":{"count":0,"p50":null"#,
            r#""hit_ratio":0.8"#,
            r#""disk_write_failures":4"#,
            r#""quarantined":1"#,
            r#""sizes":{"mesh":2,"galerkin":2,"spectrum":2,"block":3}"#,
            r#""block":{"hits":6,"misses":2,"hit_ratio":0.75,"entries":3}"#,
            r#""utilization":0.5"#,
            r#""slo":{"target":0.9,"window_total":50,"window_met":49,"fraction":0.98"#,
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!line.contains('\n'));
        // Empty-window SLO renders nulls, not NaNs.
        let empty = StatsReport {
            slo: SloSnapshot {
                target: 0.9,
                total: 0,
                met: 0,
            },
            utilization: None,
            ..report
        };
        let line = stats_response(None, &empty);
        assert!(line.contains(r#""fraction":null"#), "{line}");
        assert!(line.contains(r#""utilization":null"#), "{line}");
    }
}
