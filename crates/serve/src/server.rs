//! The daemon: admission control, worker pool, fault isolation and
//! graceful drain.
//!
//! One `serve` call owns one connection's request stream. The calling
//! thread reads newline-delimited requests, validates them, and either
//! answers inline (ping, bad request), sheds them (queue full, drain in
//! progress) or admits them to a [`BoundedQueue`]. A fixed pool of
//! worker threads pops jobs, re-checks each job's deadline (a request
//! that expired while queued is shed without consuming compute), and
//! runs the KLE→SSTA pipeline under [`Supervisor::run_one`] with a
//! per-request child [`CancelToken`] — so a panicking, hanging or
//! over-budget request is isolated, salvaged or reported while every
//! other in-flight request keeps running. All requests share one
//! [`ArtifactCache`]: warm kernel/die configurations skip mesh,
//! assembly and eigensolve entirely.
//!
//! Drain state machine: `accepting → draining → drained`. EOF or a
//! `shutdown` request stops admission (`queue.close()`); workers finish
//! the queued backlog within the drain budget; if the budget expires the
//! root token is cancelled, turning the remaining work into typed
//! `cancelled`/`shed draining` responses. The final summary line is
//! written only after every worker has exited, so every admitted request
//! has exactly one terminal response before `drained` is announced.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use klest_circuit::{benchmark_scaled, generate, GeneratorConfig};
use klest_core::pipeline::{ArtifactCache, ArtifactKey, ExecPolicy, FrontEndConfig};
use klest_core::TruncationCriterion;
use klest_mesh::MeshError;
use klest_runtime::{
    Budget, BoundedQueue, CancelToken, Cancelled, PushError, ShardStatus, StageBudgets, Supervisor,
    WaitGroup,
};
use klest_ssta::experiments::{CircuitSetup, KleContext, KleContextError};
use klest_ssta::faultinject::{FaultPlan, Stage};
use klest_ssta::{
    run_monte_carlo_supervised, run_monte_carlo_supervised_with_faults, DegradationReport,
    KleFieldSampler, McConfig, SstaError,
};

use crate::json::Json;
use crate::protocol::{
    draining_response, error_response, outcome_response, parse_request, pong_response,
    QueryOutcome, QuerySpec, ServeError, ServeRequest,
};

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // All guarded state (response writer, memo map, counters) stays
    // structurally valid across a panicking holder; supervision relies
    // on continuing past poisoned locks.
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Admission queue depth; pushes beyond it are shed as
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Wall-clock budget for the graceful drain; once it expires,
    /// in-flight work is cancelled cooperatively.
    pub drain: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Directory for the crash-safe disk artifact layer; `None` keeps
    /// the cache memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            drain: Duration::from_secs(10),
            default_deadline: None,
            cache_dir: None,
        }
    }
}

/// What happened over one `serve` call, for callers and exit codes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines read (including broken ones).
    pub received: u64,
    /// Queries admitted to the queue.
    pub admitted: u64,
    /// Queries that completed with a full sample count.
    pub completed: u64,
    /// Queries that completed partially (salvaged).
    pub salvaged: u64,
    /// Queries shed because the queue was full.
    pub shed_overload: u64,
    /// Queries shed because their deadline expired while queued.
    pub shed_deadline: u64,
    /// Queries shed because the server was draining.
    pub shed_draining: u64,
    /// Queries cancelled in flight with nothing salvageable.
    pub cancelled: u64,
    /// Queries that faulted (panicked every attempt or failed
    /// internally).
    pub faults: u64,
    /// Lines rejected as bad requests.
    pub bad_requests: u64,
    /// Pings answered.
    pub pings: u64,
    /// True when a `shutdown` request (rather than EOF) started drain.
    pub shutdown: bool,
    /// True when all workers exited within the drain budget without a
    /// forced cancellation.
    pub drained_clean: bool,
}

impl ServeSummary {
    /// Terminal responses written for admitted queries. The admission
    /// invariant is `admitted == completed + salvaged + shed_deadline +
    /// shed_draining + cancelled + faults`.
    pub fn admitted_terminals(&self) -> u64 {
        self.completed + self.salvaged + self.shed_deadline + self.shed_draining + self.cancelled
            + self.faults
    }

    /// Folds another connection's summary into this one.
    pub fn merge(&mut self, other: &ServeSummary) {
        self.received += other.received;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.salvaged += other.salvaged;
        self.shed_overload += other.shed_overload;
        self.shed_deadline += other.shed_deadline;
        self.shed_draining += other.shed_draining;
        self.cancelled += other.cancelled;
        self.faults += other.faults;
        self.bad_requests += other.bad_requests;
        self.pings += other.pings;
        self.shutdown |= other.shutdown;
        self.drained_clean &= other.drained_clean;
    }
}

#[derive(Default)]
struct Counts {
    admitted: AtomicU64,
    completed: AtomicU64,
    salvaged: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_draining: AtomicU64,
    cancelled: AtomicU64,
    faults: AtomicU64,
}

impl Counts {
    fn bump(&self, field: &AtomicU64, metric: &str) {
        field.fetch_add(1, Ordering::Relaxed);
        klest_obs::counter_add(metric, 1);
    }
}

/// One admitted request waiting for (or holding) a worker.
struct Job {
    id: String,
    spec: QuerySpec,
    arrived: Instant,
    deadline: Option<Instant>,
}

enum ExecError {
    Cancelled(Cancelled),
    Internal(String),
}

struct ExecData {
    mean: f64,
    sigma: f64,
    rank: usize,
    samples: usize,
    planned: usize,
    ci_widening: f64,
    coarsenings: usize,
}

fn frontend_config(spec: &QuerySpec) -> FrontEndConfig {
    let mut config = FrontEndConfig::new(
        spec.area_fraction,
        28.0,
        TruncationCriterion::new(60, 0.01),
    )
    .with_supervised_ladder();
    // Request-level parallelism comes from the worker pool; per-request
    // assembly stays serial so concurrent requests cannot oversubscribe
    // the machine.
    config.options.assembly_threads = 1;
    config
}

/// The daemon. One instance owns the shared [`ArtifactCache`] and the
/// circuit memo; [`Server::serve`] runs one connection over it, so
/// repeated connections (or a socket accept loop) keep their warmth.
pub struct Server {
    config: ServeConfig,
    cache: ArtifactCache,
    setups: Mutex<HashMap<String, Arc<CircuitSetup>>>,
    /// EWMA of recent service times, ms — feeds the `retry_after_hint`.
    ewma_service_ms: AtomicU64,
}

impl Server {
    /// Builds a server; opens the disk cache layer when configured.
    pub fn new(config: ServeConfig) -> Server {
        let cache = match &config.cache_dir {
            Some(dir) => ArtifactCache::with_disk(dir.clone()),
            None => ArtifactCache::new(),
        };
        Server {
            config,
            cache,
            setups: Mutex::new(HashMap::new()),
            ewma_service_ms: AtomicU64::new(200),
        }
    }

    /// The shared artifact cache (for inspection in tests and benches).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Serves one request stream to completion: reads `input` until EOF
    /// or a `shutdown` request, writes one response line per request
    /// plus a final `drained` summary line to `output`, and returns the
    /// summary. Never panics on malformed input; worker panics are
    /// isolated per request.
    pub fn serve<R: BufRead, W: Write + Send>(&self, mut input: R, output: W) -> ServeSummary {
        let queue = BoundedQueue::<Job>::new(self.config.queue_depth);
        let wg = WaitGroup::new();
        let root = CancelToken::unlimited();
        let out = Mutex::new(output);
        let counts = Counts::default();
        let workers = self.config.workers.max(1);
        let mut received = 0u64;
        let mut bad_requests = 0u64;
        let mut pings = 0u64;
        let mut shutdown = false;
        let mut drained_clean = false;

        std::thread::scope(|scope| {
            wg.add(workers);
            for _ in 0..workers {
                let queue = &queue;
                let wg = &wg;
                let root = &root;
                let counts = &counts;
                let out = &out;
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        klest_obs::gauge_set("serve.queue.depth", queue.len() as f64);
                        self.process_job(job, root, counts, out);
                    }
                    wg.done();
                });
            }

            loop {
                let text = match read_line_capped(&mut input, crate::protocol::MAX_LINE_BYTES) {
                    Ok(Some(RawLine::Text(text))) => text,
                    Ok(Some(RawLine::Rejected(why))) => {
                        received += 1;
                        bad_requests += 1;
                        klest_obs::counter_add("serve.received", 1);
                        klest_obs::counter_add("serve.bad_request", 1);
                        respond(
                            &out,
                            &error_response(
                                None,
                                &ServeError::BadRequest {
                                    message: why.to_string(),
                                },
                            ),
                        );
                        continue;
                    }
                    Ok(None) | Err(_) => break,
                };
                if text.trim().is_empty() {
                    continue;
                }
                received += 1;
                klest_obs::counter_add("serve.received", 1);
                match parse_request(&text) {
                    Err(bad) => {
                        bad_requests += 1;
                        klest_obs::counter_add("serve.bad_request", 1);
                        respond(
                            &out,
                            &error_response(
                                bad.id.as_deref(),
                                &ServeError::BadRequest {
                                    message: bad.message,
                                },
                            ),
                        );
                    }
                    Ok(ServeRequest::Ping { id }) => {
                        pings += 1;
                        klest_obs::counter_add("serve.ping", 1);
                        respond(&out, &pong_response(id.as_deref()));
                    }
                    Ok(ServeRequest::Shutdown) => {
                        shutdown = true;
                        respond(&out, &draining_response());
                        break;
                    }
                    Ok(ServeRequest::Query { id, spec }) => {
                        let arrived = Instant::now();
                        let deadline = spec
                            .deadline
                            .or(self.config.default_deadline)
                            .map(|d| arrived + d);
                        let job = Job {
                            id,
                            spec,
                            arrived,
                            deadline,
                        };
                        match queue.push(job) {
                            Ok(depth) => {
                                counts.bump(&counts.admitted, "serve.admitted");
                                klest_obs::gauge_set("serve.queue.depth", depth as f64);
                            }
                            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                                counts.bump(&counts.shed_overload, "serve.shed.overload");
                                respond(
                                    &out,
                                    &error_response(
                                        Some(&job.id),
                                        &ServeError::Overloaded {
                                            retry_after_hint: self.retry_after_hint(queue.len()),
                                        },
                                    ),
                                );
                            }
                        }
                    }
                }
            }

            // Drain: stop admitting, give the backlog the drain budget,
            // then cancel whatever is left and wait for the workers.
            queue.close();
            drained_clean = wg.wait_timeout(self.config.drain);
            if !drained_clean {
                root.cancel();
                wg.wait();
            }
        });

        let summary = ServeSummary {
            received,
            admitted: counts.admitted.load(Ordering::Relaxed),
            completed: counts.completed.load(Ordering::Relaxed),
            salvaged: counts.salvaged.load(Ordering::Relaxed),
            shed_overload: counts.shed_overload.load(Ordering::Relaxed),
            shed_deadline: counts.shed_deadline.load(Ordering::Relaxed),
            shed_draining: counts.shed_draining.load(Ordering::Relaxed),
            cancelled: counts.cancelled.load(Ordering::Relaxed),
            faults: counts.faults.load(Ordering::Relaxed),
            bad_requests,
            pings,
            shutdown,
            drained_clean,
        };
        respond(&out, &summary_line(&summary));
        summary
    }

    /// Serves connections on a Unix socket, one at a time, until a
    /// connection requests `shutdown`. All connections share this
    /// server's cache and circuit memo, so a reconnecting client keeps
    /// its warmth. The socket file is created fresh and removed on exit.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or accepting on the socket.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<ServeSummary> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let mut total = ServeSummary {
            drained_clean: true,
            ..ServeSummary::default()
        };
        loop {
            let (stream, _) = listener.accept()?;
            let reader = std::io::BufReader::new(stream.try_clone()?);
            let summary = self.serve(reader, stream);
            let stop = summary.shutdown;
            total.merge(&summary);
            if stop {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(total)
    }

    fn retry_after_hint(&self, queue_len: usize) -> Duration {
        let ewma = self.ewma_service_ms.load(Ordering::Relaxed).max(1);
        let waves = (queue_len / self.config.workers.max(1)) as u64 + 1;
        Duration::from_millis((ewma.saturating_mul(waves)).clamp(25, 30_000))
    }

    fn note_service_time(&self, service_ms: u64) {
        // EWMA with α = 1/4, updated racily — a hint, not an invariant.
        let old = self.ewma_service_ms.load(Ordering::Relaxed);
        let new = old - old / 4 + service_ms / 4;
        self.ewma_service_ms.store(new.max(1), Ordering::Relaxed);
    }

    /// Does the cache already hold the KLE spectrum this query needs?
    /// Pure probe: counts no hit/miss, so latency classification does
    /// not skew cache statistics.
    fn probe_warm(&self, spec: &QuerySpec) -> bool {
        let Ok(kernel) = spec.kernel.build() else {
            return false;
        };
        let Some(kernel_key) = kernel.cache_key() else {
            return false;
        };
        let config = frontend_config(spec);
        let mesh_key = ArtifactKey::mesh(
            config.die,
            config.max_area_fraction,
            config.min_angle_degrees,
        );
        let galerkin_key =
            ArtifactKey::galerkin(&mesh_key, &kernel_key, config.options.quadrature);
        let spectrum_key = ArtifactKey::spectrum(
            &galerkin_key,
            config.options.solver,
            config.options.max_eigenpairs,
        );
        self.cache.peek_spectrum(&spectrum_key)
    }

    fn setup_for(&self, circuit: &crate::protocol::CircuitSpec) -> Result<Arc<CircuitSetup>, String> {
        use crate::protocol::CircuitSpec;
        let key = circuit.memo_key();
        if let Some(setup) = lock(&self.setups).get(&key) {
            return Ok(Arc::clone(setup));
        }
        let built = match circuit {
            CircuitSpec::Named { id, scale } => benchmark_scaled(*id, *scale),
            CircuitSpec::Synthetic { gates, seed } => generate(
                format!("synth{gates}"),
                GeneratorConfig::combinational(*gates, *seed),
            ),
        }
        .map_err(|e| format!("circuit generation failed: {e}"))?;
        let setup = Arc::new(CircuitSetup::prepare(&built));
        let mut memo = lock(&self.setups);
        // Bounded memo: a hostile client cycling circuit configs must
        // not grow process memory without limit.
        if memo.len() < 128 {
            memo.insert(key, Arc::clone(&setup));
        }
        Ok(setup)
    }

    fn process_job<W: Write>(
        &self,
        job: Job,
        root: &CancelToken,
        counts: &Counts,
        out: &Mutex<W>,
    ) {
        let queue_wait = job.arrived.elapsed();
        klest_obs::histogram_observe("serve.queue_wait_ms", millis(queue_wait) as f64);
        if root.is_cancelled() {
            counts.bump(&counts.shed_draining, "serve.shed.draining");
            respond(out, &error_response(Some(&job.id), &ServeError::Draining));
            return;
        }
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                counts.bump(&counts.shed_deadline, "serve.shed.deadline");
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::DeadlineExpiredInQueue { waited: queue_wait },
                    ),
                );
                return;
            }
        }

        let start = Instant::now();
        let warm = self.probe_warm(&job.spec);
        let budget = match job.deadline {
            Some(deadline) => Budget::wall(deadline.saturating_duration_since(start)),
            None => Budget::UNLIMITED,
        };
        let token = root.child(budget);
        let supervisor = Supervisor::new(token)
            .with_max_retries(1)
            .with_backoff(Duration::from_millis(2));
        let (result, status) = supervisor.run_one(0, |_, tok| self.execute(&job.spec, tok));
        let service_ms = millis(start.elapsed());

        match (result, status) {
            (Some(Ok(data)), status) => {
                let salvaged = data.samples < data.planned;
                if salvaged {
                    counts.bump(&counts.salvaged, "serve.salvaged");
                } else {
                    counts.bump(&counts.completed, "serve.completed");
                }
                let bucket = if warm {
                    "serve.latency_ms.warm"
                } else {
                    "serve.latency_ms.cold"
                };
                klest_obs::histogram_observe(bucket, service_ms as f64);
                self.note_service_time(service_ms);
                let outcome = QueryOutcome {
                    mean: data.mean,
                    sigma: data.sigma,
                    rank: data.rank,
                    samples: data.samples,
                    planned: data.planned,
                    salvaged,
                    ci_widening: data.ci_widening,
                    warm,
                    retries: status.retries(),
                    coarsenings: data.coarsenings,
                    queue_ms: millis(queue_wait),
                    service_ms,
                };
                respond(out, &outcome_response(&job.id, &outcome));
            }
            (Some(Err(ExecError::Cancelled(cancelled))), _) => {
                counts.bump(&counts.cancelled, "serve.cancelled");
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Cancelled {
                            stage: cancelled.stage.to_string(),
                            service_ms,
                        },
                    ),
                );
            }
            (Some(Err(ExecError::Internal(message))), _) => {
                counts.bump(&counts.faults, "serve.fault");
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Fault {
                            attempts: 1,
                            message,
                        },
                    ),
                );
            }
            (None, ShardStatus::Faulted { attempts, message }) => {
                counts.bump(&counts.faults, "serve.fault");
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Fault { attempts, message },
                    ),
                );
            }
            (None, _) => {
                counts.bump(&counts.faults, "serve.fault");
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Fault {
                            attempts: 0,
                            message: "internal: supervised run returned no result".into(),
                        },
                    ),
                );
            }
        }
    }

    fn execute(&self, spec: &QuerySpec, token: &CancelToken) -> Result<ExecData, ExecError> {
        if spec.inject_panic {
            // Deterministic fault drill: exercises catch_unwind isolation
            // end to end without tripping the no-panic lint gate.
            std::panic::panic_any("injected panic: serve fault drill".to_string());
        }
        let kernel = spec.kernel.build().map_err(ExecError::Internal)?;
        let config = frontend_config(spec);
        let budgets = StageBudgets::none();
        let ctx = KleContext::build_with(
            kernel.as_ref(),
            &config,
            ExecPolicy::Supervised {
                token,
                budgets: &budgets,
            },
            Some(&self.cache),
        )
        .map_err(|e| match e {
            KleContextError::Mesh(MeshError::Cancelled(c)) => ExecError::Cancelled(c),
            KleContextError::Ssta(SstaError::Cancelled(c)) => ExecError::Cancelled(c),
            other => ExecError::Internal(other.to_string()),
        })?;
        let setup = self.setup_for(&spec.circuit).map_err(ExecError::Internal)?;
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())
            .map_err(|e| match e {
                SstaError::Cancelled(c) => ExecError::Cancelled(c),
                other => ExecError::Internal(other.to_string()),
            })?;
        let mc = McConfig::new(spec.samples, spec.seed).with_threads(spec.threads);
        let mut report = DegradationReport::new();
        let run = match spec.inject_hang_ms {
            Some(hang_ms) => {
                let plan = FaultPlan::new().hang_at(Stage::Mc, 0, hang_ms);
                run_monte_carlo_supervised_with_faults(
                    &setup.timer,
                    &sampler,
                    &mc,
                    token,
                    &plan,
                    &mut report,
                )
            }
            None => run_monte_carlo_supervised(&setup.timer, &sampler, &mc, token, &mut report),
        }
        .map_err(|e| match e {
            SstaError::Cancelled(c) => ExecError::Cancelled(c),
            other => ExecError::Internal(other.to_string()),
        })?;
        let stats = run.worst_delay_stats();
        let (samples, planned, ci_widening) = match run.salvage() {
            Some(s) => (s.completed, s.planned, s.ci_widening),
            None => (spec.samples, spec.samples, 1.0),
        };
        Ok(ExecData {
            mean: stats.mean,
            sigma: stats.std_dev,
            rank: ctx.rank,
            samples,
            planned,
            ci_widening,
            coarsenings: ctx.degradation.len() + report.len(),
        })
    }
}

fn respond<W: Write>(out: &Mutex<W>, line: &str) {
    let mut guard = lock(out);
    // Response write failures (client went away) must not take the
    // server down; the summary still accounts for the request.
    let _ = writeln!(guard, "{line}");
    let _ = guard.flush();
}

fn summary_line(s: &ServeSummary) -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str("drained".into())),
        ("received".into(), Json::Num(s.received as f64)),
        ("admitted".into(), Json::Num(s.admitted as f64)),
        ("completed".into(), Json::Num(s.completed as f64)),
        ("salvaged".into(), Json::Num(s.salvaged as f64)),
        ("shed_overload".into(), Json::Num(s.shed_overload as f64)),
        ("shed_deadline".into(), Json::Num(s.shed_deadline as f64)),
        ("shed_draining".into(), Json::Num(s.shed_draining as f64)),
        ("cancelled".into(), Json::Num(s.cancelled as f64)),
        ("faults".into(), Json::Num(s.faults as f64)),
        ("bad_requests".into(), Json::Num(s.bad_requests as f64)),
        ("pings".into(), Json::Num(s.pings as f64)),
        ("clean".into(), Json::Bool(s.drained_clean)),
    ])
    .to_compact_string()
}

enum RawLine {
    Text(String),
    Rejected(&'static str),
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes; the
/// remainder of an oversized line is consumed and discarded so the
/// stream stays framed (a client cannot wedge the reader with one
/// gigantic line). `Ok(None)` is EOF.
fn read_line_capped<R: BufRead>(input: &mut R, max: usize) -> std::io::Result<Option<RawLine>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    let mut saw_any = false;
    loop {
        let chunk = match input.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if !oversized && buf.len() + newline <= max {
                    buf.extend_from_slice(&chunk[..newline]);
                } else {
                    oversized = true;
                }
                input.consume(newline + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if !oversized && buf.len() + len <= max {
                    buf.extend_from_slice(chunk);
                } else {
                    oversized = true;
                }
                input.consume(len);
            }
        }
    }
    if oversized {
        return Ok(Some(RawLine::Rejected("request line too long")));
    }
    match String::from_utf8(buf) {
        Ok(text) => Ok(Some(RawLine::Text(text))),
        Err(_) => Ok(Some(RawLine::Rejected("request line is not valid UTF-8"))),
    }
}
