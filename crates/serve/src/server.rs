//! The daemon: admission control, worker pool, fault isolation and
//! graceful drain.
//!
//! One `serve` call owns one connection's request stream. The calling
//! thread reads newline-delimited requests, validates them, and either
//! answers inline (ping, bad request), sheds them (queue full, drain in
//! progress) or admits them to a [`BoundedQueue`]. A fixed pool of
//! worker threads pops jobs, re-checks each job's deadline (a request
//! that expired while queued is shed without consuming compute), and
//! runs the KLE→SSTA pipeline under [`Supervisor::run_one`] with a
//! per-request child [`CancelToken`] — so a panicking, hanging or
//! over-budget request is isolated, salvaged or reported while every
//! other in-flight request keeps running. All requests share one
//! [`ArtifactCache`]: warm kernel/die configurations skip mesh,
//! assembly and eigensolve entirely.
//!
//! Drain state machine: `accepting → draining → drained`. EOF or a
//! `shutdown` request stops admission (`queue.close()`); workers finish
//! the queued backlog within the drain budget; if the budget expires the
//! root token is cancelled, turning the remaining work into typed
//! `cancelled`/`shed draining` responses. The final summary line is
//! written only after every worker has exited, so every admitted request
//! has exactly one terminal response before `drained` is announced.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use klest_circuit::{benchmark_scaled, generate, Circuit, GeneratorConfig, NodeId, Partition};
use klest_core::pipeline::{ArtifactCache, ArtifactKey, ExecPolicy, FrontEndConfig};
use klest_core::TruncationCriterion;
use klest_mesh::MeshError;
use klest_obs::{DeadlineSlo, MetricsSnapshot, SlidingWindow, SloSnapshot, LATENCY_MS_BOUNDS};
use klest_rng::{Rng, SplitMix64};
use klest_runtime::{
    Budget, BoundedQueue, CancelToken, Cancelled, PoolUsage, PushError, ShardStatus, StageBudgets,
    Supervisor, WaitGroup,
};
use klest_ssta::experiments::{CircuitSetup, KleContext, KleContextError};
use klest_ssta::faultinject::{FaultPlan, Stage};
use klest_ssta::hier::HierEngine;
use klest_ssta::{
    run_monte_carlo_supervised, run_monte_carlo_supervised_with_faults, DegradationReport,
    KleFieldSampler, McConfig, SstaError,
};
use klest_sta::ParamVector;

use crate::journal::{PendingRequest, RequestJournal};
use crate::json::Json;
use crate::protocol::{
    draining_response, error_response, outcome_response, parse_request, pong_response,
    stats_response, HierEditOutcome, HierOutcome, LatencyStats, QueryMode, QueryOutcome,
    QuerySpec, ServeError, ServeRequest, StatsReport, TraceInfo,
};

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // All guarded state (response writer, memo map, counters) stays
    // structurally valid across a panicking holder; supervision relies
    // on continuing past poisoned locks.
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Admission queue depth; pushes beyond it are shed as
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Wall-clock budget for the graceful drain; once it expires,
    /// in-flight work is cancelled cooperatively.
    pub drain: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Directory for the crash-safe disk artifact layer; `None` keeps
    /// the cache memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Warm-restart state directory. When set, the daemon keeps a
    /// crash-safe request journal at `<state_dir>/journal.log` —
    /// admitted queries are recorded (fsynced) before they run and
    /// marked done after their one terminal response; on boot the
    /// pending tail is replayed and answered exactly once — and, unless
    /// `cache_dir` overrides it, the disk artifact cache lives at
    /// `<state_dir>/cache` so a restart also recovers its warmth.
    pub state_dir: Option<std::path::PathBuf>,
    /// Allow responses to carry per-request traces. A query still has
    /// to opt in with `"trace":true`; this flag is the daemon-side gate
    /// (traces expose stage timings, so operators enable them
    /// deliberately).
    pub trace_responses: bool,
    /// Emit a `klest-metrics/v1` snapshot line every interval (requires
    /// `metrics_out`).
    pub metrics_interval: Option<Duration>,
    /// File receiving newline-delimited metrics snapshots (appended).
    pub metrics_out: Option<std::path::PathBuf>,
    /// Deadline-SLO target: the fraction of deadline-carrying queries
    /// expected to complete in time over the tracking window.
    pub slo_target: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            drain: Duration::from_secs(10),
            default_deadline: None,
            cache_dir: None,
            state_dir: None,
            trace_responses: false,
            metrics_interval: None,
            metrics_out: None,
            slo_target: 0.95,
        }
    }
}

/// What happened over one `serve` call, for callers and exit codes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines read (including broken ones).
    pub received: u64,
    /// Queries admitted to the queue.
    pub admitted: u64,
    /// Queries that completed with a full sample count.
    pub completed: u64,
    /// Queries that completed partially (salvaged).
    pub salvaged: u64,
    /// Queries shed because the queue was full.
    pub shed_overload: u64,
    /// Queries shed because their deadline expired while queued.
    pub shed_deadline: u64,
    /// Queries shed because the server was draining.
    pub shed_draining: u64,
    /// Queries cancelled in flight with nothing salvageable.
    pub cancelled: u64,
    /// Queries that faulted (panicked every attempt or failed
    /// internally).
    pub faults: u64,
    /// Lines rejected as bad requests.
    pub bad_requests: u64,
    /// Pings answered.
    pub pings: u64,
    /// True when a `shutdown` request (rather than EOF) started drain.
    pub shutdown: bool,
    /// True when all workers exited within the drain budget without a
    /// forced cancellation.
    pub drained_clean: bool,
}

impl ServeSummary {
    /// Terminal responses written for admitted queries. The admission
    /// invariant is `admitted == completed + salvaged + shed_deadline +
    /// shed_draining + cancelled + faults`.
    pub fn admitted_terminals(&self) -> u64 {
        self.completed + self.salvaged + self.shed_deadline + self.shed_draining + self.cancelled
            + self.faults
    }

    /// Folds another connection's summary into this one.
    pub fn merge(&mut self, other: &ServeSummary) {
        self.received += other.received;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.salvaged += other.salvaged;
        self.shed_overload += other.shed_overload;
        self.shed_deadline += other.shed_deadline;
        self.shed_draining += other.shed_draining;
        self.cancelled += other.cancelled;
        self.faults += other.faults;
        self.bad_requests += other.bad_requests;
        self.pings += other.pings;
        self.shutdown |= other.shutdown;
        self.drained_clean &= other.drained_clean;
    }
}

#[derive(Default)]
struct Counts {
    admitted: AtomicU64,
    completed: AtomicU64,
    salvaged: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_draining: AtomicU64,
    cancelled: AtomicU64,
    faults: AtomicU64,
}

/// Bumps a per-connection counter, its server-lifetime twin and the obs
/// metric together, so connection summaries, `{"op":"stats"}` and run
/// reports never disagree.
fn bump(conn: &AtomicU64, lifetime: &AtomicU64, metric: &str) {
    conn.fetch_add(1, Ordering::Relaxed);
    lifetime.fetch_add(1, Ordering::Relaxed);
    klest_obs::counter_add(metric, 1);
}

/// Server-lifetime telemetry: monotonic counters since construction,
/// sliding-window latency/SLO readings on a logical clock anchored at
/// `started`, and worker busy accounting. Lives on the [`Server`] (not
/// per connection) so a reconnecting client or socket accept loop sees
/// continuous history — the same lifetime the artifact cache has.
struct ServerStats {
    /// Epoch for the logical clock every window rotates on.
    started: Instant,
    /// Per-daemon seed for trace-id derivation (no clock, no
    /// `SystemTime`: derived from the process id, so ids are stable
    /// within a daemon and differ across daemons).
    trace_seed: u64,
    admitted: AtomicU64,
    completed: AtomicU64,
    salvaged: AtomicU64,
    cancelled: AtomicU64,
    faults: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_draining: AtomicU64,
    /// Windowed service latency of cache-warm queries, ms.
    latency_warm: SlidingWindow,
    /// Windowed service latency of cache-cold queries, ms.
    latency_cold: SlidingWindow,
    /// Windowed queue-wait, ms.
    queue_wait: SlidingWindow,
    /// Windowed deadline-SLO accounting.
    slo: DeadlineSlo,
    /// Worker busy/idle accounting for utilization.
    usage: PoolUsage,
}

/// Telemetry window geometry: six 10-second slots ≈ the last minute.
const WINDOW_SLOTS: usize = 6;
const WINDOW_SLOT_MS: u64 = 10_000;

impl ServerStats {
    fn new(slo_target: f64) -> ServerStats {
        ServerStats {
            started: Instant::now(),
            trace_seed: {
                let mut mixer = SplitMix64::new(u64::from(std::process::id()));
                mixer.next_u64()
            },
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            salvaged: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_draining: AtomicU64::new(0),
            latency_warm: SlidingWindow::new(WINDOW_SLOTS, WINDOW_SLOT_MS, &LATENCY_MS_BOUNDS),
            latency_cold: SlidingWindow::new(WINDOW_SLOTS, WINDOW_SLOT_MS, &LATENCY_MS_BOUNDS),
            queue_wait: SlidingWindow::new(WINDOW_SLOTS, WINDOW_SLOT_MS, &LATENCY_MS_BOUNDS),
            slo: DeadlineSlo::new(slo_target, WINDOW_SLOTS, WINDOW_SLOT_MS),
            usage: PoolUsage::new(),
        }
    }

    /// Milliseconds since daemon start — the logical tick every window
    /// rotates on. One `Instant` read per call, shared by every window
    /// the call feeds.
    fn tick_ms(&self) -> u64 {
        millis(self.started.elapsed())
    }

    /// Trace id for a request: the request id hashed through the
    /// per-daemon seed with `SplitMix64` mixing (deterministic given
    /// the daemon seed; no timestamps involved).
    fn trace_id(&self, request_id: &str) -> String {
        let mut acc = self.trace_seed;
        for byte in request_id.as_bytes() {
            let mut mixer = SplitMix64::new(acc ^ u64::from(*byte));
            acc = mixer.next_u64();
        }
        format!("{acc:016x}")
    }
}

/// One admitted request waiting for (or holding) a worker.
struct Job {
    id: String,
    spec: QuerySpec,
    arrived: Instant,
    deadline: Option<Instant>,
    /// Journal sequence number when the daemon runs with a state dir;
    /// marked done after the job's one terminal response.
    journal_seq: Option<u64>,
}

enum ExecError {
    Cancelled(Cancelled),
    Internal(String),
}

struct ExecData {
    mean: f64,
    sigma: f64,
    rank: usize,
    samples: usize,
    planned: usize,
    ci_widening: f64,
    coarsenings: usize,
    /// Block-model accounting, present on `"mode":"hier"` requests.
    hier: Option<HierOutcome>,
}

/// Cancellation stays typed through the serve state machine; every
/// other SSTA failure is an internal fault.
fn exec_err(e: SstaError) -> ExecError {
    match e {
        SstaError::Cancelled(c) => ExecError::Cancelled(c),
        other => ExecError::Internal(other.to_string()),
    }
}

fn frontend_config(spec: &QuerySpec) -> FrontEndConfig {
    let mut config = FrontEndConfig::new(
        spec.area_fraction,
        28.0,
        TruncationCriterion::new(60, 0.01),
    )
    .with_supervised_ladder();
    // Request-level parallelism comes from the worker pool; per-request
    // assembly stays serial so concurrent requests cannot oversubscribe
    // the machine.
    config.options.assembly_threads = 1;
    config
}

/// The daemon. One instance owns the shared [`ArtifactCache`] and the
/// circuit memo; [`Server::serve`] runs one connection over it, so
/// repeated connections (or a socket accept loop) keep their warmth.
pub struct Server {
    config: ServeConfig,
    cache: ArtifactCache,
    setups: Mutex<HashMap<String, Arc<CircuitSetup>>>,
    /// EWMA of recent service times, ms — feeds the `retry_after_hint`.
    ewma_service_ms: AtomicU64,
    /// Lifetime telemetry (windows, SLO, usage, trace seed).
    stats: ServerStats,
    /// Admit/done request journal (state-dir mode only).
    journal: Option<RequestJournal>,
    /// Journaled requests admitted by a previous process life but never
    /// answered; drained into the queue by the first `serve` call.
    replay: Mutex<Vec<PendingRequest>>,
}

impl Server {
    /// Builds a server; opens the disk cache layer when configured.
    /// With [`ServeConfig::state_dir`] set, this is the warm-restart
    /// recovery point: the disk cache is reopened (quarantining any
    /// crash-torn artifacts) and the request journal's pending tail is
    /// loaded for replay by the first [`Server::serve`] call.
    pub fn new(config: ServeConfig) -> Server {
        if let Some(state_dir) = &config.state_dir {
            let _ = std::fs::create_dir_all(state_dir);
        }
        let cache_dir = config
            .cache_dir
            .clone()
            .or_else(|| config.state_dir.as_ref().map(|d| d.join("cache")));
        let cache = match cache_dir {
            Some(dir) => ArtifactCache::with_disk(dir),
            None => ArtifactCache::new(),
        };
        let (journal, pending) = match &config.state_dir {
            Some(state_dir) => {
                let (journal, pending) = RequestJournal::open(&state_dir.join("journal.log"));
                (Some(journal), pending)
            }
            None => (None, Vec::new()),
        };
        let stats = ServerStats::new(config.slo_target);
        Server {
            config,
            cache,
            setups: Mutex::new(HashMap::new()),
            ewma_service_ms: AtomicU64::new(200),
            stats,
            journal,
            replay: Mutex::new(pending),
        }
    }

    /// The shared artifact cache (for inspection in tests and benches).
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The windowed deadline-SLO reading as of now (benches surface it
    /// in merged reports; `{"op":"stats"}` embeds the same numbers).
    pub fn slo_snapshot(&self) -> SloSnapshot {
        self.stats.slo.snapshot(self.stats.tick_ms())
    }

    /// The full introspection snapshot answering `{"op":"stats"}`.
    /// `queue_depth` is supplied by the caller (the reader loop holds
    /// the queue; between connections pass 0).
    pub fn stats_report(&self, queue_depth: usize) -> StatsReport {
        let tick = self.stats.tick_ms();
        let cache_snap = self.cache.snapshot();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsReport {
            uptime_ms: tick,
            workers: self.config.workers.max(1),
            queue_depth,
            queue_capacity: self.config.queue_depth,
            admitted: load(&self.stats.admitted),
            completed: load(&self.stats.completed),
            salvaged: load(&self.stats.salvaged),
            cancelled: load(&self.stats.cancelled),
            faults: load(&self.stats.faults),
            shed_overload: load(&self.stats.shed_overload),
            shed_deadline: load(&self.stats.shed_deadline),
            shed_draining: load(&self.stats.shed_draining),
            latency_warm: LatencyStats::from_hist(&self.stats.latency_warm.merged(tick)),
            latency_cold: LatencyStats::from_hist(&self.stats.latency_cold.merged(tick)),
            queue_wait: LatencyStats::from_hist(&self.stats.queue_wait.merged(tick)),
            cache_hits: cache_snap.hits(),
            cache_misses: cache_snap.misses(),
            cache_sizes: self.cache.memory_sizes(),
            cache_block_hits: cache_snap.block_hits,
            cache_block_misses: cache_snap.block_misses,
            cache_disk_write_failures: cache_snap.disk_write_failures,
            cache_quarantined: cache_snap.quarantined,
            utilization: self.stats.usage.utilization(
                self.config.workers.max(1),
                u64::try_from(self.stats.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            ),
            slo: self.stats.slo.snapshot(tick),
        }
    }

    /// Serves one request stream to completion: reads `input` until EOF
    /// or a `shutdown` request, writes one response line per request
    /// plus a final `drained` summary line to `output`, and returns the
    /// summary. Never panics on malformed input; worker panics are
    /// isolated per request.
    pub fn serve<R: BufRead, W: Write + Send>(&self, mut input: R, output: W) -> ServeSummary {
        let queue = BoundedQueue::<Job>::new(self.config.queue_depth);
        let wg = WaitGroup::new();
        let root = CancelToken::unlimited();
        let out = Mutex::new(output);
        let counts = Counts::default();
        let workers = self.config.workers.max(1);
        let mut received = 0u64;
        let mut bad_requests = 0u64;
        let mut pings = 0u64;
        let mut shutdown = false;
        let mut drained_clean = false;

        // Periodic metrics emitter: a scoped thread appending one
        // `klest-metrics/v1` line per interval to the configured file.
        // Condvar-signalled stop so drain never waits out an interval.
        let emitter_stop = Arc::new((Mutex::new(false), std::sync::Condvar::new()));

        std::thread::scope(|scope| {
            if let (Some(interval), Some(path)) =
                (self.config.metrics_interval, self.config.metrics_out.clone())
            {
                let stop = Arc::clone(&emitter_stop);
                let stats = &self.stats;
                scope.spawn(move || {
                    emit_metrics_loop(&path, interval, stats, &stop);
                });
            }

            wg.add(workers);
            for _ in 0..workers {
                let queue = &queue;
                let wg = &wg;
                let root = &root;
                let counts = &counts;
                let out = &out;
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        klest_obs::gauge_set("serve.queue.depth", queue.len() as f64);
                        self.process_job(job, root, counts, out);
                    }
                    wg.done();
                });
            }

            // Warm-restart replay: requests journaled as admitted by a
            // previous process life but never answered run first, in
            // admission order, each answered exactly once on this
            // connection. The workers are already draining the queue,
            // so a backlog larger than the queue depth just back-fills.
            for pending in std::mem::take(&mut *lock(&self.replay)) {
                match parse_request(&pending.line) {
                    Ok(ServeRequest::Query { id, spec }) => {
                        let arrived = Instant::now();
                        let deadline = spec
                            .deadline
                            .or(self.config.default_deadline)
                            .map(|d| arrived + d);
                        let mut job = Job {
                            id,
                            spec,
                            arrived,
                            deadline,
                            journal_seq: Some(pending.seq),
                        };
                        loop {
                            match queue.push(job) {
                                Ok(depth) => {
                                    bump(&counts.admitted, &self.stats.admitted, "serve.admitted");
                                    klest_obs::gauge_set("serve.queue.depth", depth as f64);
                                    break;
                                }
                                Err(PushError::Full(j)) => {
                                    job = j;
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(PushError::Closed(_)) => break,
                            }
                        }
                    }
                    // Only queries are ever journaled; anything else
                    // here is a hand-edited or damaged journal. Retire
                    // the record so it cannot replay forever.
                    _ => self.journal_done(Some(pending.seq)),
                }
            }

            loop {
                let text = match read_line_capped(&mut input, crate::protocol::MAX_LINE_BYTES) {
                    Ok(Some(RawLine::Text(text))) => text,
                    Ok(Some(RawLine::Rejected(why))) => {
                        received += 1;
                        bad_requests += 1;
                        klest_obs::counter_add("serve.received", 1);
                        klest_obs::counter_add("serve.bad_request", 1);
                        respond(
                            &out,
                            &error_response(
                                None,
                                &ServeError::BadRequest {
                                    message: why.to_string(),
                                },
                            ),
                        );
                        continue;
                    }
                    Ok(None) | Err(_) => break,
                };
                if text.trim().is_empty() {
                    continue;
                }
                received += 1;
                klest_obs::counter_add("serve.received", 1);
                match parse_request(&text) {
                    Err(bad) => {
                        bad_requests += 1;
                        klest_obs::counter_add("serve.bad_request", 1);
                        respond(
                            &out,
                            &error_response(
                                bad.id.as_deref(),
                                &ServeError::BadRequest {
                                    message: bad.message,
                                },
                            ),
                        );
                    }
                    Ok(ServeRequest::Ping { id }) => {
                        pings += 1;
                        klest_obs::counter_add("serve.ping", 1);
                        respond(&out, &pong_response(id.as_deref()));
                    }
                    Ok(ServeRequest::Shutdown) => {
                        shutdown = true;
                        respond(&out, &draining_response());
                        break;
                    }
                    Ok(ServeRequest::Stats { id }) => {
                        klest_obs::counter_add("serve.stats", 1);
                        let report = self.stats_report(queue.len());
                        respond(&out, &stats_response(id.as_deref(), &report));
                    }
                    Ok(ServeRequest::Query { id, spec }) => {
                        let arrived = Instant::now();
                        let deadline = spec
                            .deadline
                            .or(self.config.default_deadline)
                            .map(|d| arrived + d);
                        // Journal before the queue sees the job: a
                        // crash at any later instant leaves an admit
                        // record, so the request is replayed (and
                        // answered) by the next process life.
                        let journal_seq = self
                            .journal
                            .as_ref()
                            .and_then(|journal| journal.record_admit(&text));
                        let job = Job {
                            id,
                            spec,
                            arrived,
                            deadline,
                            journal_seq,
                        };
                        match queue.push(job) {
                            Ok(depth) => {
                                bump(&counts.admitted, &self.stats.admitted, "serve.admitted");
                                klest_obs::gauge_set("serve.queue.depth", depth as f64);
                            }
                            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                                // The shed response below is this
                                // request's terminal: retire its
                                // journal record immediately.
                                self.journal_done(job.journal_seq);
                                bump(
                                    &counts.shed_overload,
                                    &self.stats.shed_overload,
                                    "serve.shed.overload",
                                );
                                // A shed is a queue transition too: refresh
                                // the gauge so observers see the depth that
                                // caused the rejection, not a stale value.
                                klest_obs::gauge_set("serve.queue.depth", queue.len() as f64);
                                respond(
                                    &out,
                                    &error_response(
                                        Some(&job.id),
                                        &ServeError::Overloaded {
                                            retry_after_hint: self.retry_after_hint(queue.len()),
                                        },
                                    ),
                                );
                            }
                        }
                    }
                }
            }

            // Drain: stop admitting, give the backlog the drain budget,
            // then cancel whatever is left and wait for the workers.
            queue.close();
            drained_clean = wg.wait_timeout(self.config.drain);
            if !drained_clean {
                root.cancel();
                wg.wait();
            }
            // Every worker has exited, so the queue is empty: record the
            // final transition before the drained summary goes out.
            klest_obs::gauge_set("serve.queue.depth", 0.0);
            // Every admitted request now has its terminal response
            // journaled as done; persist the (normally empty) pending
            // tail compactly for the next process life.
            if let Some(journal) = &self.journal {
                journal.compact();
            }
            let (stop_flag, stop_cv) = &*emitter_stop;
            *lock(stop_flag) = true;
            stop_cv.notify_all();
        });

        let summary = ServeSummary {
            received,
            admitted: counts.admitted.load(Ordering::Relaxed),
            completed: counts.completed.load(Ordering::Relaxed),
            salvaged: counts.salvaged.load(Ordering::Relaxed),
            shed_overload: counts.shed_overload.load(Ordering::Relaxed),
            shed_deadline: counts.shed_deadline.load(Ordering::Relaxed),
            shed_draining: counts.shed_draining.load(Ordering::Relaxed),
            cancelled: counts.cancelled.load(Ordering::Relaxed),
            faults: counts.faults.load(Ordering::Relaxed),
            bad_requests,
            pings,
            shutdown,
            drained_clean,
        };
        respond(&out, &summary_line(&summary, &self.slo_snapshot()));
        summary
    }

    /// Serves connections on a Unix socket, one at a time, until a
    /// connection requests `shutdown`. All connections share this
    /// server's cache and circuit memo, so a reconnecting client keeps
    /// its warmth. The socket file is created fresh and removed on exit.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or accepting on the socket.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &std::path::Path) -> std::io::Result<ServeSummary> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let mut total = ServeSummary {
            drained_clean: true,
            ..ServeSummary::default()
        };
        loop {
            let (stream, _) = listener.accept()?;
            let reader = std::io::BufReader::new(stream.try_clone()?);
            let summary = self.serve(reader, stream);
            let stop = summary.shutdown;
            total.merge(&summary);
            if stop {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(total)
    }

    fn retry_after_hint(&self, queue_len: usize) -> Duration {
        let ewma = self.ewma_service_ms.load(Ordering::Relaxed).max(1);
        let waves = (queue_len / self.config.workers.max(1)) as u64 + 1;
        Duration::from_millis((ewma.saturating_mul(waves)).clamp(25, 30_000))
    }

    fn note_service_time(&self, service_ms: u64) {
        // EWMA with α = 1/4, updated racily — a hint, not an invariant.
        let old = self.ewma_service_ms.load(Ordering::Relaxed);
        let new = old - old / 4 + service_ms / 4;
        self.ewma_service_ms.store(new.max(1), Ordering::Relaxed);
    }

    /// Which cached artifacts this query would reuse, in
    /// `(mesh, galerkin, spectrum)` order. Pure probe: counts no
    /// hit/miss, so latency classification does not skew cache
    /// statistics. The spectrum component is the warm/cold classifier —
    /// a warm spectrum skips mesh, assembly and eigensolve entirely.
    fn probe_artifacts(&self, spec: &QuerySpec) -> (bool, bool, bool) {
        let Ok(kernel) = spec.kernel.build() else {
            return (false, false, false);
        };
        let Some(kernel_key) = kernel.cache_key() else {
            return (false, false, false);
        };
        let config = frontend_config(spec);
        let mesh_key = ArtifactKey::mesh(
            config.die,
            config.max_area_fraction,
            config.min_angle_degrees,
        );
        let galerkin_key =
            ArtifactKey::galerkin(&mesh_key, &kernel_key, config.options.quadrature);
        let spectrum_key = ArtifactKey::spectrum(
            &galerkin_key,
            config.options.solver,
            config.options.max_eigenpairs,
        );
        (
            self.cache.peek_mesh(&mesh_key),
            self.cache.peek_galerkin(&galerkin_key),
            self.cache.peek_spectrum(&spectrum_key),
        )
    }

    fn build_circuit(circuit: &crate::protocol::CircuitSpec) -> Result<Circuit, String> {
        use crate::protocol::CircuitSpec;
        match circuit {
            CircuitSpec::Named { id, scale } => benchmark_scaled(*id, *scale),
            CircuitSpec::Synthetic { gates, seed } => generate(
                format!("synth{gates}"),
                GeneratorConfig::combinational(*gates, *seed),
            ),
        }
        .map_err(|e| format!("circuit generation failed: {e}"))
    }

    fn setup_for(&self, circuit: &crate::protocol::CircuitSpec) -> Result<Arc<CircuitSetup>, String> {
        let key = circuit.memo_key();
        if let Some(setup) = lock(&self.setups).get(&key) {
            return Ok(Arc::clone(setup));
        }
        let built = Self::build_circuit(circuit)?;
        let setup = Arc::new(CircuitSetup::prepare(&built));
        let mut memo = lock(&self.setups);
        // Bounded memo: a hostile client cycling circuit configs must
        // not grow process memory without limit.
        if memo.len() < 128 {
            memo.insert(key, Arc::clone(&setup));
        }
        Ok(setup)
    }

    /// Records a deadline-carrying job's terminal against the SLO
    /// window. Jobs without a deadline never enter SLO accounting.
    fn record_slo(&self, job: &Job, met: bool) {
        if job.deadline.is_some() {
            self.stats.slo.record(self.stats.tick_ms(), met);
        }
    }

    fn journal_done(&self, seq: Option<u64>) {
        if let (Some(journal), Some(seq)) = (&self.journal, seq) {
            journal.record_done(seq);
        }
    }

    fn process_job<W: Write>(
        &self,
        job: Job,
        root: &CancelToken,
        counts: &Counts,
        out: &Mutex<W>,
    ) {
        // Deterministic kill point for the crash harness: with
        // `KLEST_CRASH_AT=serve.request:N` the Nth dequeued request
        // aborts the process here — after its admit record, before its
        // terminal response — so a restart must replay and answer it.
        klest_runtime::crash_point("serve.request");
        let journal_seq = job.journal_seq;
        self.process_job_inner(job, root, counts, out);
        // One terminal response has been written (every path through
        // the inner body responds exactly once); retire the record.
        self.journal_done(journal_seq);
    }

    fn process_job_inner<W: Write>(
        &self,
        job: Job,
        root: &CancelToken,
        counts: &Counts,
        out: &Mutex<W>,
    ) {
        let _busy = self.stats.usage.guard();
        let queue_wait = job.arrived.elapsed();
        klest_obs::histogram_observe("serve.queue_wait_ms", millis(queue_wait) as f64);
        self.stats
            .queue_wait
            .observe(self.stats.tick_ms(), millis(queue_wait) as f64);
        if root.is_cancelled() {
            bump(
                &counts.shed_draining,
                &self.stats.shed_draining,
                "serve.shed.draining",
            );
            // Drain is an operator action, not a deadline violation: it
            // stays out of the SLO window.
            respond(out, &error_response(Some(&job.id), &ServeError::Draining));
            return;
        }
        if let Some(deadline) = job.deadline {
            if Instant::now() >= deadline {
                bump(
                    &counts.shed_deadline,
                    &self.stats.shed_deadline,
                    "serve.shed.deadline",
                );
                self.record_slo(&job, false);
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::DeadlineExpiredInQueue { waited: queue_wait },
                    ),
                );
                return;
            }
        }

        let start = Instant::now();
        let (warm_mesh, warm_galerkin, warm_spectrum) = self.probe_artifacts(&job.spec);
        let warm = warm_spectrum;
        let budget = match job.deadline {
            Some(deadline) => Budget::wall(deadline.saturating_duration_since(start)),
            None => Budget::UNLIMITED,
        };
        let token = root.child(budget);
        let supervisor = Supervisor::new(token)
            .with_max_retries(1)
            .with_backoff(Duration::from_millis(2));
        let want_trace = job.spec.trace && self.config.trace_responses;
        if want_trace {
            klest_obs::capture_begin();
        }
        let (result, status) =
            supervisor.run_one_in_span(0, "serve.request", |_, tok| self.execute(&job.spec, tok));
        let stages = if want_trace {
            klest_obs::capture_end()
        } else {
            Vec::new()
        };
        let service_ms = millis(start.elapsed());

        match (result, status) {
            (Some(Ok(data)), status) => {
                let salvaged = data.samples < data.planned;
                if salvaged {
                    bump(&counts.salvaged, &self.stats.salvaged, "serve.salvaged");
                } else {
                    bump(&counts.completed, &self.stats.completed, "serve.completed");
                }
                let met = match job.deadline {
                    Some(deadline) => Instant::now() <= deadline,
                    None => true,
                };
                self.record_slo(&job, met);
                let bucket = if warm {
                    "serve.latency_ms.warm"
                } else {
                    "serve.latency_ms.cold"
                };
                klest_obs::histogram_observe(bucket, service_ms as f64);
                let window = if warm {
                    &self.stats.latency_warm
                } else {
                    &self.stats.latency_cold
                };
                window.observe(self.stats.tick_ms(), service_ms as f64);
                self.note_service_time(service_ms);
                let trace = want_trace.then(|| {
                    let mut events = Vec::new();
                    if status.retries() > 0 {
                        events.push(format!("retried {} time(s) after a fault", status.retries()));
                    }
                    if data.coarsenings > 0 {
                        events.push(format!("degraded: {} coarsening step(s)", data.coarsenings));
                    }
                    if salvaged {
                        events.push(format!(
                            "salvaged {}/{} samples, CI widened x{:.3}",
                            data.samples, data.planned, data.ci_widening
                        ));
                    }
                    TraceInfo {
                        trace_id: self.stats.trace_id(&job.id),
                        warm_mesh,
                        warm_galerkin,
                        warm_spectrum,
                        stages,
                        events,
                    }
                });
                let outcome = QueryOutcome {
                    mean: data.mean,
                    sigma: data.sigma,
                    rank: data.rank,
                    samples: data.samples,
                    planned: data.planned,
                    salvaged,
                    ci_widening: data.ci_widening,
                    warm,
                    retries: status.retries(),
                    coarsenings: data.coarsenings,
                    queue_ms: millis(queue_wait),
                    service_ms,
                    trace,
                    hier: data.hier,
                };
                respond(out, &outcome_response(&job.id, &outcome));
            }
            (Some(Err(ExecError::Cancelled(cancelled))), _) => {
                bump(&counts.cancelled, &self.stats.cancelled, "serve.cancelled");
                self.record_slo(&job, false);
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Cancelled {
                            stage: cancelled.stage.to_string(),
                            service_ms,
                        },
                    ),
                );
            }
            (Some(Err(ExecError::Internal(message))), _) => {
                bump(&counts.faults, &self.stats.faults, "serve.fault");
                self.record_slo(&job, false);
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Fault {
                            attempts: 1,
                            message,
                        },
                    ),
                );
            }
            (None, ShardStatus::Faulted { attempts, message }) => {
                bump(&counts.faults, &self.stats.faults, "serve.fault");
                self.record_slo(&job, false);
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Fault { attempts, message },
                    ),
                );
            }
            (None, _) => {
                bump(&counts.faults, &self.stats.faults, "serve.fault");
                self.record_slo(&job, false);
                respond(
                    out,
                    &error_response(
                        Some(&job.id),
                        &ServeError::Fault {
                            attempts: 0,
                            message: "internal: supervised run returned no result".into(),
                        },
                    ),
                );
            }
        }
    }

    fn execute(&self, spec: &QuerySpec, token: &CancelToken) -> Result<ExecData, ExecError> {
        if spec.inject_panic {
            // Deterministic fault drill: exercises catch_unwind isolation
            // end to end without tripping the no-panic lint gate.
            std::panic::panic_any("injected panic: serve fault drill".to_string());
        }
        if let QueryMode::Hier {
            blocks,
            edit_gate,
            edit_scale,
        } = spec.mode
        {
            return self.execute_hier(spec, blocks, edit_gate, edit_scale, token);
        }
        let kernel = spec.kernel.build().map_err(ExecError::Internal)?;
        let config = frontend_config(spec);
        let budgets = StageBudgets::none();
        let ctx = KleContext::build_with(
            kernel.as_ref(),
            &config,
            ExecPolicy::Supervised {
                token,
                budgets: &budgets,
            },
            Some(&self.cache),
        )
        .map_err(|e| match e {
            KleContextError::Mesh(MeshError::Cancelled(c)) => ExecError::Cancelled(c),
            KleContextError::Ssta(SstaError::Cancelled(c)) => ExecError::Cancelled(c),
            other => ExecError::Internal(other.to_string()),
        })?;
        let setup = self.setup_for(&spec.circuit).map_err(ExecError::Internal)?;
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())
            .map_err(|e| match e {
                SstaError::Cancelled(c) => ExecError::Cancelled(c),
                other => ExecError::Internal(other.to_string()),
            })?;
        let mc = McConfig::new(spec.samples, spec.seed).with_threads(spec.threads);
        let mut report = DegradationReport::new();
        let run = match spec.inject_hang_ms {
            Some(hang_ms) => {
                let plan = FaultPlan::new().hang_at(Stage::Mc, 0, hang_ms);
                run_monte_carlo_supervised_with_faults(
                    &setup.timer,
                    &sampler,
                    &mc,
                    token,
                    &plan,
                    &mut report,
                )
            }
            None => run_monte_carlo_supervised(&setup.timer, &sampler, &mc, token, &mut report),
        }
        .map_err(|e| match e {
            SstaError::Cancelled(c) => ExecError::Cancelled(c),
            other => ExecError::Internal(other.to_string()),
        })?;
        let stats = run.worst_delay_stats();
        let (samples, planned, ci_widening) = match run.salvage() {
            Some(s) => (s.completed, s.planned, s.ci_widening),
            None => (spec.samples, spec.samples, 1.0),
        };
        Ok(ExecData {
            mean: stats.mean,
            sigma: stats.std_dev,
            rank: ctx.rank,
            samples,
            planned,
            ci_widening,
            coarsenings: ctx.degradation.len() + report.len(),
            hier: None,
        })
    }

    /// The `"mode":"hier"` path: partition the die, extract (or load
    /// from the shared artifact cache) one canonical block model per
    /// region over the ξ basis, compose at the boundaries, and re-time
    /// the optional one-gate edit. Block models are keyed by region
    /// hash under the same spectrum key the flat pipeline uses, so
    /// repeated hier requests against an unchanged circuit are served
    /// warm — and an edited request re-extracts exactly one block.
    fn execute_hier(
        &self,
        spec: &QuerySpec,
        blocks: usize,
        edit_gate: Option<usize>,
        edit_scale: f64,
        token: &CancelToken,
    ) -> Result<ExecData, ExecError> {
        let kernel = spec.kernel.build().map_err(ExecError::Internal)?;
        let config = frontend_config(spec);
        let budgets = StageBudgets::none();
        let ctx = KleContext::build_with(
            kernel.as_ref(),
            &config,
            ExecPolicy::Supervised {
                token,
                budgets: &budgets,
            },
            Some(&self.cache),
        )
        .map_err(|e| match e {
            KleContextError::Mesh(MeshError::Cancelled(c)) => ExecError::Cancelled(c),
            KleContextError::Ssta(SstaError::Cancelled(c)) => ExecError::Cancelled(c),
            other => ExecError::Internal(other.to_string()),
        })?;
        let setup = self.setup_for(&spec.circuit).map_err(ExecError::Internal)?;
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())
            .map_err(exec_err)?;
        // The memoized setup carries the timer, not the netlist; the
        // partition needs fan-in/fan-out structure, so rebuild the
        // circuit deterministically from its spec.
        let circuit = Self::build_circuit(&spec.circuit).map_err(ExecError::Internal)?;
        if let Some(gate) = edit_gate {
            if gate >= circuit.node_count() {
                return Err(ExecError::Internal(format!(
                    "edit_gate {gate} out of range: circuit has {} nodes",
                    circuit.node_count()
                )));
            }
        }
        let partition = Partition::build(&circuit, blocks);
        // Block models are cached under the spectrum key so a kernel,
        // die or rank change can never serve a stale model.
        let spectrum_key = kernel.cache_key().map(|kernel_key| {
            let mesh_key = ArtifactKey::mesh(
                config.die,
                config.max_area_fraction,
                config.min_angle_degrees,
            );
            let galerkin_key =
                ArtifactKey::galerkin(&mesh_key, &kernel_key, config.options.quadrature);
            ArtifactKey::spectrum(
                &galerkin_key,
                config.options.solver,
                config.options.max_eigenpairs,
            )
        });
        let cache_pair = spectrum_key.map(|key| (&self.cache, key));
        let nominal = vec![ParamVector::ZERO; circuit.node_count()];
        let mut engine = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            nominal,
            cache_pair,
            token,
        )
        .map_err(exec_err)?;
        let cold = engine.last_stats();
        let (mean, sigma) = {
            let w = engine.worst();
            (w.mean, w.sigma())
        };
        let edit = match edit_gate {
            None => None,
            Some(gate) => {
                let p = ParamVector::new([
                    edit_scale,
                    -0.5 * edit_scale,
                    0.25 * edit_scale,
                    0.1 * edit_scale,
                ]);
                engine.edit_gate(NodeId(gate as u32), p, token).map_err(exec_err)?;
                let stats = engine.last_stats();
                let w = engine.worst();
                Some(HierEditOutcome {
                    gate,
                    extracted: stats.extracted,
                    cache_hits: stats.cache_hits,
                    mean: w.mean,
                    sigma: w.sigma(),
                })
            }
        };
        Ok(ExecData {
            mean,
            sigma,
            rank: ctx.rank,
            samples: 0,
            planned: 0,
            ci_widening: 1.0,
            coarsenings: ctx.degradation.len(),
            hier: Some(HierOutcome {
                blocks: cold.blocks,
                cache_hits: cold.cache_hits,
                extracted: cold.extracted,
                edit,
            }),
        })
    }
}

fn respond<W: Write>(out: &Mutex<W>, line: &str) {
    let mut guard = lock(out);
    // Response write failures (client went away) must not take the
    // server down; the summary still accounts for the request.
    let _ = writeln!(guard, "{line}");
    let _ = guard.flush();
}

fn summary_line(s: &ServeSummary, slo: &SloSnapshot) -> String {
    let opt = |v: Option<f64>| match v {
        Some(x) => Json::Num(x),
        None => Json::Null,
    };
    Json::Obj(vec![
        ("status".into(), Json::Str("drained".into())),
        ("received".into(), Json::Num(s.received as f64)),
        ("admitted".into(), Json::Num(s.admitted as f64)),
        ("completed".into(), Json::Num(s.completed as f64)),
        ("salvaged".into(), Json::Num(s.salvaged as f64)),
        ("shed_overload".into(), Json::Num(s.shed_overload as f64)),
        ("shed_deadline".into(), Json::Num(s.shed_deadline as f64)),
        ("shed_draining".into(), Json::Num(s.shed_draining as f64)),
        ("cancelled".into(), Json::Num(s.cancelled as f64)),
        ("faults".into(), Json::Num(s.faults as f64)),
        ("bad_requests".into(), Json::Num(s.bad_requests as f64)),
        ("pings".into(), Json::Num(s.pings as f64)),
        ("slo_target".into(), Json::Num(slo.target)),
        ("slo_total".into(), Json::Num(slo.total as f64)),
        ("slo_met".into(), Json::Num(slo.met as f64)),
        ("slo_fraction".into(), opt(slo.fraction())),
        (
            "slo_error_budget".into(),
            opt(slo.error_budget_remaining()),
        ),
        ("clean".into(), Json::Bool(s.drained_clean)),
    ])
    .to_compact_string()
}

/// Appends one `klest-metrics/v1` snapshot line to `path` every
/// `interval` until the stop flag is raised, plus one final line at
/// stop so even a connection shorter than the interval leaves its
/// drain-time state on disk. Each line after the first carries rates
/// computed against the previous snapshot. Write failures stop the
/// emitter (metrics must never take the daemon down).
fn emit_metrics_loop(
    path: &std::path::Path,
    interval: Duration,
    stats: &ServerStats,
    stop: &(Mutex<bool>, std::sync::Condvar),
) {
    use std::io::Write as _;
    let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    let (flag, cv) = stop;
    let mut prev: Option<MetricsSnapshot> = None;
    loop {
        let stopping = {
            let mut stopped = lock(flag);
            while !*stopped {
                let (next, timeout) = match cv.wait_timeout(stopped, interval) {
                    Ok(pair) => pair,
                    Err(poisoned) => {
                        let (guard, timeout) = poisoned.into_inner();
                        (guard, timeout)
                    }
                };
                stopped = next;
                if timeout.timed_out() {
                    break;
                }
            }
            *stopped
        };
        let snap = MetricsSnapshot::capture(stats.tick_ms());
        let rates = prev.as_ref().map(|p| snap.rates_since(p));
        let line = snap.to_json_line(rates.as_ref());
        if writeln!(file, "{line}").is_err() || file.flush().is_err() {
            return;
        }
        prev = Some(snap);
        if stopping {
            return;
        }
    }
}

enum RawLine {
    Text(String),
    Rejected(&'static str),
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes; the
/// remainder of an oversized line is consumed and discarded so the
/// stream stays framed (a client cannot wedge the reader with one
/// gigantic line). `Ok(None)` is EOF.
fn read_line_capped<R: BufRead>(input: &mut R, max: usize) -> std::io::Result<Option<RawLine>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    let mut saw_any = false;
    loop {
        let chunk = match input.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if !oversized && buf.len() + newline <= max {
                    buf.extend_from_slice(&chunk[..newline]);
                } else {
                    oversized = true;
                }
                input.consume(newline + 1);
                break;
            }
            None => {
                let len = chunk.len();
                if !oversized && buf.len() + len <= max {
                    buf.extend_from_slice(chunk);
                } else {
                    oversized = true;
                }
                input.consume(len);
            }
        }
    }
    if oversized {
        return Ok(Some(RawLine::Rejected("request line too long")));
    }
    match String::from_utf8(buf) {
        Ok(text) => Ok(Some(RawLine::Text(text))),
        Err(_) => Ok(Some(RawLine::Rejected("request line is not valid UTF-8"))),
    }
}
