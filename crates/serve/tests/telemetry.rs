//! Integration tests for the serve telemetry layer: the queue-depth
//! gauge lifecycle, the `{"op":"stats"}` introspection reply and
//! per-request trace responses.
//!
//! The obs registry is process-global, so every test here serializes on
//! one mutex and cleans up its global state before releasing it.

use std::io::Cursor;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use klest_serve::{ServeConfig, Server};

fn serialize() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn run_lines(config: ServeConfig, lines: &str) -> Vec<String> {
    let server = Server::new(config);
    let mut out: Vec<u8> = Vec::new();
    server.serve(Cursor::new(lines.to_string()), &mut out);
    String::from_utf8(out)
        .expect("responses are UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

fn fast_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_depth: 16,
        drain: Duration::from_secs(30),
        ..ServeConfig::default()
    }
}

const TINY: &str = r#""gates":8,"samples":16,"area_fraction":0.1"#;

/// Regression: the `serve.queue.depth` gauge must end at zero after a
/// drain, even when the run shed requests (every queue transition —
/// admission, dequeue, shed, drain — refreshes it).
#[test]
fn queue_depth_gauge_returns_to_zero_after_drain() {
    let _gate = serialize();
    klest_obs::reset();
    klest_obs::enable();
    // One worker pinned by a hang, queue depth 1: w2/w3 shed as
    // overloaded, exercising the rejected-push gauge refresh.
    let input = format!(
        concat!(
            "{{\"id\":\"pin\",\"inject_hang_ms\":30000,\"deadline_ms\":300,{}}}\n",
            "{{\"id\":\"w1\",{}}}\n",
            "{{\"id\":\"w2\",{}}}\n",
            "{{\"id\":\"w3\",{}}}\n"
        ),
        TINY, TINY, TINY, TINY
    );
    let config = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..fast_config()
    };
    run_lines(config, &input);
    let snap = klest_obs::snapshot();
    klest_obs::disable();
    klest_obs::reset();
    let depth = snap
        .gauges
        .iter()
        .find(|(name, _)| name == "serve.queue.depth")
        .map(|(_, v)| *v);
    assert_eq!(depth, Some(0.0), "gauge must be 0 after drain: {snap:?}");
}

#[test]
fn stats_op_reports_acceptance_fields() {
    let _gate = serialize();
    // Telemetry lives on the Server, not the connection: run the
    // queries on one connection, probe stats on the next, and the
    // lifetime counters carry over (same continuity the cache has).
    let server = Server::new(fast_config());
    let queries = format!(
        "{{\"id\":\"q1\",\"deadline_ms\":30000,{TINY}}}\n{{\"id\":\"q2\",{TINY}}}\n"
    );
    let mut out: Vec<u8> = Vec::new();
    server.serve(Cursor::new(queries), &mut out);
    let mut out: Vec<u8> = Vec::new();
    server.serve(
        Cursor::new("{\"op\":\"stats\",\"id\":\"s1\"}\n".to_string()),
        &mut out,
    );
    let text = String::from_utf8(out).expect("responses are UTF-8");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    let stats = lines
        .iter()
        .find(|l| l.contains("\"status\":\"stats\""))
        .expect("stats response present");
    assert!(stats.contains("\"id\":\"s1\""), "{stats}");
    for key in [
        "\"uptime_ms\":",
        "\"workers\":",
        "\"queue\":{",
        "\"depth\":",
        "\"capacity\":",
        "\"requests\":{",
        "\"admitted\":",
        "\"completed\":",
        "\"salvaged\":",
        "\"cancelled\":",
        "\"faults\":",
        "\"shed_overload\":",
        "\"shed_deadline\":",
        "\"shed_draining\":",
        "\"latency_ms\":{",
        "\"warm\":{",
        "\"cold\":{",
        "\"queue_wait\":{",
        "\"p50\":",
        "\"p95\":",
        "\"p99\":",
        "\"mean\":",
        "\"cache\":{",
        "\"hits\":",
        "\"misses\":",
        "\"hit_ratio\":",
        "\"sizes\":{",
        "\"utilization\":",
        "\"slo\":{",
        "\"target\":",
        "\"window_total\":",
        "\"window_met\":",
        "\"fraction\":",
        "\"error_budget_remaining\":",
    ] {
        assert!(stats.contains(key), "stats reply missing {key}: {stats}");
    }
    // The queries ran before the probe on the single worker, so the
    // lifetime counters are live numbers, not zeros.
    assert!(stats.contains("\"admitted\":2"), "{stats}");
    assert!(stats.contains("\"completed\":2"), "{stats}");
}

#[test]
fn trace_opt_in_requires_both_request_and_daemon_gate() {
    let _gate = serialize();
    let input = format!(
        "{{\"id\":\"t1\",\"trace\":true,{TINY}}}\n{{\"id\":\"t2\",{TINY}}}\n"
    );

    // Daemon gate off: even an opted-in request gets no trace object.
    let lines = run_lines(fast_config(), &input);
    for line in lines.iter().filter(|l| l.contains("\"status\":\"completed\"")) {
        assert!(!line.contains("\"trace\":{"), "{line}");
    }

    // Daemon gate on: only the opted-in request carries a trace.
    let config = ServeConfig {
        trace_responses: true,
        ..fast_config()
    };
    let lines = run_lines(config, &input);
    let t1 = lines
        .iter()
        .find(|l| l.contains("\"id\":\"t1\""))
        .expect("t1 response");
    assert!(t1.contains("\"trace\":{"), "{t1}");
    assert!(t1.contains("\"trace_id\":\""), "{t1}");
    assert!(t1.contains("\"artifacts_warm\":{"), "{t1}");
    assert!(t1.contains("\"mesh\":"), "{t1}");
    assert!(t1.contains("\"galerkin\":"), "{t1}");
    assert!(t1.contains("\"spectrum\":"), "{t1}");
    assert!(t1.contains("\"stages\":["), "{t1}");
    assert!(
        t1.contains("\"path\":") && t1.contains("\"wall_ns\":"),
        "trace must carry per-stage wall times: {t1}"
    );
    let t2 = lines
        .iter()
        .find(|l| l.contains("\"id\":\"t2\""))
        .expect("t2 response");
    assert!(!t2.contains("\"trace\":{"), "{t2}");
}

/// The drained summary line carries the windowed SLO reading.
#[test]
fn drained_summary_carries_slo_fields() {
    let _gate = serialize();
    let input = format!("{{\"id\":\"d1\",\"deadline_ms\":30000,{TINY}}}\n");
    let lines = run_lines(fast_config(), &input);
    let last = lines.last().expect("summary line");
    assert!(last.contains("\"status\":\"drained\""), "{last}");
    for key in [
        "\"slo_target\":",
        "\"slo_total\":1",
        "\"slo_met\":1",
        "\"slo_fraction\":1",
        "\"slo_error_budget\":",
    ] {
        assert!(last.contains(key), "summary missing {key}: {last}");
    }
}

/// `--metrics-out` behaviour at the library layer: with an interval and
/// a file configured, the daemon appends `klest-metrics/v1` lines.
#[test]
fn metrics_emitter_writes_schema_lines() {
    let _gate = serialize();
    klest_obs::reset();
    klest_obs::enable();
    let dir = std::env::temp_dir().join(format!("klest-serve-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("metrics.jsonl");
    let _ = std::fs::remove_file(&path);
    let config = ServeConfig {
        metrics_interval: Some(Duration::from_millis(25)),
        metrics_out: Some(path.clone()),
        ..fast_config()
    };
    // The hang keeps the connection open long enough for a few
    // emitter intervals to elapse before drain.
    let input = format!(
        "{{\"id\":\"m1\",\"inject_hang_ms\":30000,\"deadline_ms\":200,{TINY}}}\n"
    );
    run_lines(config, &input);
    klest_obs::disable();
    klest_obs::reset();
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "at least one snapshot line");
    for line in &lines {
        assert!(
            line.starts_with(r#"{"schema":"klest-metrics/v1""#),
            "every line carries the schema tag: {line}"
        );
        assert!(line.contains("\"tick_ms\":"), "{line}");
        assert!(line.contains("\"counters\":{"), "{line}");
    }
    // Second and later lines carry rates diffed against the previous.
    if lines.len() > 1 {
        assert!(lines[1].contains("\"rates\":{"), "{}", lines[1]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
