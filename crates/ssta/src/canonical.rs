//! Canonical first-order (block-based) SSTA on the KLE basis.
//!
//! The paper argues the KLE's few uncorrelated RVs "can then be used as
//! parameters for the gate timing models" of analytical SSTA tools
//! ([5][6]). This module demonstrates exactly that: arrival times are
//! propagated symbolically in Visweswariah's *canonical form*
//!
//! `A = a₀ + Σ_{k,j} a_{k,j} ξ_{k,j} + a_ind Δ`
//!
//! over the `4·r` KLE variables (four parameters × rank `r`), with sums
//! exact and `max` handled by Clark's two-moment approximation. One
//! topological pass replaces the N-sample Monte Carlo loop — at the cost
//! of linearising the gate models and Clark's Gaussian-max error, both of
//! which the `canonical_vs_monte_carlo` tests quantify.

use crate::{GateFieldSampler, KleFieldSampler, SstaError};
use klest_circuit::NodeId;
use klest_sta::{ParamVector, Timer};

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf polynomial
/// (|error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal PDF.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736)
            * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// An arrival time in canonical form: mean, sensitivities to the shared
/// KLE variables, and an independent residual.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalForm {
    /// Mean `a₀`.
    pub mean: f64,
    /// Sensitivities to the shared ξ variables.
    pub sens: Vec<f64>,
    /// Independent (uncorrelated) residual magnitude `a_ind ≥ 0`.
    pub indep: f64,
}

impl CanonicalForm {
    /// A deterministic constant.
    pub fn constant(value: f64, dim: usize) -> Self {
        CanonicalForm {
            mean: value,
            sens: vec![0.0; dim],
            indep: 0.0,
        }
    }

    /// Variance `Σ aᵢ² + a_ind²`.
    pub fn variance(&self) -> f64 {
        self.sens.iter().map(|a| a * a).sum::<f64>() + self.indep * self.indep
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Adds a deterministic offset.
    pub fn shift(&mut self, c: f64) {
        self.mean += c;
    }

    /// Adds another canonical form (exact for sums; independent residuals
    /// add in quadrature).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&mut self, other: &CanonicalForm) {
        assert_eq!(self.sens.len(), other.sens.len(), "dimension mismatch");
        self.mean += other.mean;
        for (a, b) in self.sens.iter_mut().zip(&other.sens) {
            *a += b;
        }
        self.indep = (self.indep * self.indep + other.indep * other.indep).sqrt();
    }

    /// Correlation coefficient with another form (shared-variable part
    /// only; independent residuals are uncorrelated by construction).
    pub fn correlation(&self, other: &CanonicalForm) -> f64 {
        let sx = self.sigma();
        let sy = other.sigma();
        if sx <= 0.0 || sy <= 0.0 {
            return 0.0;
        }
        let cov: f64 = self.sens.iter().zip(&other.sens).map(|(a, b)| a * b).sum();
        (cov / (sx * sy)).clamp(-1.0, 1.0)
    }

    /// Clark's approximation of `max(X, Y)` as a new canonical form:
    /// exact first two moments of the max of correlated Gaussians,
    /// sensitivities blended by the tightness probability `Φ(α)`, and
    /// the independent residual set to preserve the Clark variance.
    pub fn clark_max(x: &CanonicalForm, y: &CanonicalForm) -> CanonicalForm {
        debug_assert_eq!(x.sens.len(), y.sens.len());
        let (sx, sy) = (x.sigma(), y.sigma());
        let rho = x.correlation(y);
        let a2 = (sx * sx + sy * sy - 2.0 * rho * sx * sy).max(0.0);
        let a = a2.sqrt();
        // Degeneracy test is relative: rounding in rho leaves a ~
        // sqrt(eps) even for literally identical forms, and at a <= 1e-7
        // sigma the Clark correction is negligible anyway.
        if a <= 1e-7 * (sx + sy) + 1e-300 {
            // (Numerically) the same variable up to mean: the larger
            // mean wins.
            return if x.mean >= y.mean { x.clone() } else { y.clone() };
        }
        let alpha = (x.mean - y.mean) / a;
        let phi_a = normal_cdf(alpha);
        let phi_b = 1.0 - phi_a;
        let pdf = normal_pdf(alpha);
        let mean = x.mean * phi_a + y.mean * phi_b + a * pdf;
        let second = (x.mean * x.mean + sx * sx) * phi_a
            + (y.mean * y.mean + sy * sy) * phi_b
            + (x.mean + y.mean) * a * pdf;
        let variance = (second - mean * mean).max(0.0);
        // Tightness-weighted sensitivities.
        let sens: Vec<f64> = x
            .sens
            .iter()
            .zip(&y.sens)
            .map(|(ax, ay)| phi_a * ax + phi_b * ay)
            .collect();
        let shared: f64 = sens.iter().map(|v| v * v).sum();
        let indep = (variance - shared).max(0.0).sqrt();
        CanonicalForm { mean, sens, indep }
    }
}

/// Result of one canonical SSTA pass.
#[derive(Debug, Clone)]
pub struct CanonicalReport {
    /// Canonical arrival at every node.
    arrivals: Vec<CanonicalForm>,
    /// Canonical worst delay (Clark-max over primary outputs).
    worst: CanonicalForm,
}

impl CanonicalReport {
    /// Canonical arrival at node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn arrival(&self, id: NodeId) -> &CanonicalForm {
        &self.arrivals[id.index()]
    }

    /// The canonical worst-delay form — its `mean`/`sigma` are the
    /// one-pass analogues of the Monte Carlo Table 1 statistics.
    pub fn worst(&self) -> &CanonicalForm {
        &self.worst
    }
}

/// Runs the canonical first-order SSTA: one topological pass propagating
/// canonical forms over the `4·rank` KLE variables.
///
/// Simplifications relative to the Monte Carlo reference (quantified in
/// the integration tests): gate delays are linearised at the nominal
/// point (the quadratic term is dropped), slews are frozen at their
/// nominal values, and every `max` is Clark-approximated.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] if the sampler's node count differs from
/// the timer's.
pub fn analyze_canonical(
    timer: &Timer,
    kle: &KleFieldSampler,
) -> Result<CanonicalReport, SstaError> {
    let nominal = vec![ParamVector::ZERO; timer.node_count()];
    analyze_canonical_with(timer, kle, &nominal)
}

/// Gate-delay sensitivities of node `id` in ξ-space: for parameter `k`
/// with nominal-point sensitivity `β v_k`, the field at this gate is
/// `loading · ξ_k`, so `∂d/∂ξ_{k,j} = β v_k · loading_j`. `None` for
/// primary inputs. Shared by the flat canonical pass and the
/// hierarchical per-block extraction ([`crate::hier`]) so both propagate
/// identical deviations.
pub(crate) fn xi_delay_sens(
    timer: &Timer,
    kle: &KleFieldSampler,
    id: NodeId,
) -> Option<Vec<f64>> {
    let beta_v = timer.delay_sensitivity(id)?;
    let r = kle.rank();
    let loading = kle.loading_row(id.index());
    let mut delay_sens = vec![0.0; 4 * r];
    for (k, bv) in beta_v.iter().enumerate() {
        for (j, &g) in loading.iter().enumerate() {
            delay_sens[k * r + j] = bv * g;
        }
    }
    Some(delay_sens)
}

/// The parameterized canonical pass: like [`analyze_canonical`] but with
/// deterministic edge delays evaluated at the given per-node parameter
/// deviations (slews stay frozen at the zero-parameter nominal, so an
/// edit to one gate perturbs only the edges into that gate). With
/// `params` all zero this is bitwise-identical to [`analyze_canonical`];
/// it is the flat reference the hierarchical engine's gate-edit re-time
/// is differenced against.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] if the sampler's node count or
/// `params.len()` differs from the timer's node count.
pub fn analyze_canonical_with(
    timer: &Timer,
    kle: &KleFieldSampler,
    params: &[ParamVector],
) -> Result<CanonicalReport, SstaError> {
    let n = timer.node_count();
    if kle.node_count() != n {
        return Err(SstaError::InvalidConfig {
            name: "sampler.node_count",
            value: format!("{} (timer has {n})", kle.node_count()),
        });
    }
    if params.len() != n {
        return Err(SstaError::InvalidConfig {
            name: "params.len",
            value: format!("{} (timer has {n})", params.len()),
        });
    }
    let r = kle.rank();
    let dim = 4 * r;
    // Nominal pass for the frozen slews.
    let nominal_params = vec![ParamVector::ZERO; n];
    let nominal = timer.analyze(&nominal_params);

    let mut arrivals: Vec<CanonicalForm> = Vec::with_capacity(n);
    for i in 0..n {
        let id = NodeId(i as u32);
        let Some(delay_sens) = xi_delay_sens(timer, kle, id) else {
            // Primary input.
            arrivals.push(CanonicalForm::constant(0.0, dim));
            continue;
        };
        let mut best: Option<CanonicalForm> = None;
        for &f in timer.fanins_of(id) {
            // Deterministic edge delay at `params` + this gate's deviation.
            let edge = timer.edge_delay(f, id, nominal.slews(), params);
            let mut cand = arrivals[f.index()].clone();
            cand.shift(edge);
            let dev = CanonicalForm {
                mean: 0.0,
                sens: delay_sens.clone(),
                indep: 0.0,
            };
            cand.add(&dev);
            best = Some(match best {
                None => cand,
                Some(b) => CanonicalForm::clark_max(&b, &cand),
            });
        }
        arrivals.push(best.unwrap_or_else(|| CanonicalForm::constant(0.0, dim)));
    }

    // Worst over outputs.
    let mut worst: Option<CanonicalForm> = None;
    for &o in timer.outputs() {
        let a = &arrivals[o.index()];
        worst = Some(match worst {
            None => a.clone(),
            Some(w) => CanonicalForm::clark_max(&w, a),
        });
    }
    let worst = worst.unwrap_or_else(|| CanonicalForm::constant(0.0, dim));
    Ok(CanonicalReport { arrivals, worst })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NormalSource, SstaError};
    use klest_rng::{SeedableRng, StdRng};

    #[test]
    fn erf_and_cdf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6, "odd function");
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-5);
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
    }

    #[test]
    fn canonical_form_algebra() {
        let mut a = CanonicalForm {
            mean: 10.0,
            sens: vec![3.0, 4.0],
            indep: 0.0,
        };
        assert_eq!(a.variance(), 25.0);
        assert_eq!(a.sigma(), 5.0);
        a.shift(2.0);
        assert_eq!(a.mean, 12.0);
        let b = CanonicalForm {
            mean: 1.0,
            sens: vec![1.0, -1.0],
            indep: 2.0,
        };
        let mut c = a.clone();
        c.add(&b);
        assert_eq!(c.mean, 13.0);
        assert_eq!(c.sens, vec![4.0, 3.0]);
        assert_eq!(c.indep, 2.0);
        // Correlation of a form with itself is 1.
        assert!((a.correlation(&a) - 1.0).abs() < 1e-12);
        // Orthogonal sensitivities -> zero correlation.
        let d = CanonicalForm {
            mean: 0.0,
            sens: vec![-4.0, 3.0],
            indep: 0.0,
        };
        assert!(a.correlation(&d).abs() < 1e-12);
    }

    #[test]
    fn clark_max_of_identical_forms_is_identity() {
        // Fully shared sensitivities (no independent residual): X and X
        // are literally the same variable, so max(X, X) = X.
        let x = CanonicalForm {
            mean: 5.0,
            sens: vec![1.0, 2.0],
            indep: 0.0,
        };
        let m = CanonicalForm::clark_max(&x, &x);
        assert!((m.mean - x.mean).abs() < 1e-9);
        assert!((m.sigma() - x.sigma()).abs() < 1e-9);
        // With an independent residual the two arguments are distinct
        // variables that happen to share moments; the max is then larger
        // in mean (E[max of two correlated-but-distinct normals] > mean).
        let y = CanonicalForm {
            mean: 5.0,
            sens: vec![1.0, 2.0],
            indep: 0.5,
        };
        let m2 = CanonicalForm::clark_max(&y, &y);
        assert!(m2.mean > y.mean);
    }

    #[test]
    fn clark_max_dominance() {
        // When X >> Y the max is X.
        let x = CanonicalForm {
            mean: 100.0,
            sens: vec![1.0],
            indep: 0.0,
        };
        let y = CanonicalForm {
            mean: 0.0,
            sens: vec![0.5],
            indep: 0.0,
        };
        let m = CanonicalForm::clark_max(&x, &y);
        assert!((m.mean - 100.0).abs() < 1e-6);
        assert!((m.sens[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clark_max_matches_sampled_moments() {
        // Two correlated Gaussians; compare Clark's mean/σ against brute
        // force sampling of max(X, Y).
        let x = CanonicalForm {
            mean: 10.0,
            sens: vec![2.0, 1.0],
            indep: 0.0,
        };
        let y = CanonicalForm {
            mean: 10.5,
            sens: vec![1.0, 2.0],
            indep: 0.5,
        };
        let clark = CanonicalForm::clark_max(&x, &y);
        let mut normals = NormalSource::new(StdRng::seed_from_u64(5));
        let nsamp = 200_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..nsamp {
            let xi = [normals.sample(), normals.sample()];
            let d = normals.sample();
            let vx = x.mean + x.sens[0] * xi[0] + x.sens[1] * xi[1];
            let vy = y.mean + y.sens[0] * xi[0] + y.sens[1] * xi[1] + y.indep * d;
            let m = vx.max(vy);
            s1 += m;
            s2 += m * m;
        }
        let mean = s1 / nsamp as f64;
        let sigma = (s2 / nsamp as f64 - mean * mean).sqrt();
        assert!((clark.mean - mean).abs() < 0.02, "{} vs {}", clark.mean, mean);
        assert!((clark.sigma() - sigma).abs() < 0.03, "{} vs {}", clark.sigma(), sigma);
    }

    #[test]
    fn node_count_mismatch_rejected() {
        use crate::experiments::{CircuitSetup, KleContext};
        use klest_circuit::{generate, GeneratorConfig};
        use klest_kernels::GaussianKernel;
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        let a = CircuitSetup::prepare(
            &generate("a", GeneratorConfig::combinational(40, 1)).unwrap(),
        );
        let b = CircuitSetup::prepare(
            &generate("b", GeneratorConfig::combinational(41, 1)).unwrap(),
        );
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, 10, a.locations()).unwrap();
        assert!(matches!(
            analyze_canonical(&b.timer, &sampler),
            Err(SstaError::InvalidConfig { .. })
        ));
    }
}
