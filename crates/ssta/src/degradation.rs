//! Degradation accounting: every numerical repair or fallback the
//! pipeline applies is recorded here, so a run that survived bad inputs
//! says *how* it survived.
//!
//! The policy (see DESIGN.md, "Error taxonomy & degradation policy"):
//! malformed-but-plausible inputs get typed errors; *numerically*
//! marginal inputs get repaired with the smallest perturbation that
//! restores the required property, and the repair is reported — never
//! silent, never a panic. On healthy inputs every repair in this module
//! is a guaranteed no-op and the report stays clean.

use std::fmt;

/// One repair or fallback applied somewhere in the KLE→SSTA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationEvent {
    /// An indefinite Gram/covariance matrix was projected onto the PSD
    /// cone by eigenvalue clamping (`klest_kernels::validity::repair_to_psd`).
    PsdRepaired {
        /// Number of eigenvalues clamped up to zero.
        clamped: usize,
        /// Frobenius norm of the applied perturbation.
        frobenius_delta: f64,
    },
    /// Cholesky failed and succeeded only after adding `epsilon · tr(K)/n`
    /// to the diagonal.
    CholeskyJitter {
        /// The relative jitter that finally factored.
        epsilon: f64,
        /// How many ladder rungs were tried (including the successful one).
        attempts: usize,
    },
    /// The whole jitter ladder failed; sampling switched to the
    /// eigendecomposition factor `L = Q √max(Λ, 0)`.
    EigenSamplerFallback {
        /// Most negative eigenvalue of the covariance (clamped to zero).
        min_eigenvalue: f64,
    },
    /// The tridiagonal QL eigensolver did not converge and the cyclic
    /// Jacobi fallback was used instead.
    EigenSolverFallback,
    /// The truncation criterion saturated: rank `rank` does not actually
    /// cover the requested variance budget.
    TruncationBudgetUnmet {
        /// The (saturated) rank that was selected.
        rank: usize,
        /// Number of computed eigenpairs available to the criterion.
        computed: usize,
    },
    /// Algorithm 2 (KLE) was abandoned for this run and Algorithm 1
    /// (full Cholesky) used instead.
    KleDegradedToCholesky {
        /// Why the KLE path was rejected.
        reason: &'static str,
    },
    /// Gate locations outside the meshed die were clamped to the
    /// nearest-centroid triangle instead of aborting.
    PointsClamped {
        /// How many locations needed clamping.
        count: usize,
    },
    /// A pipeline stage was cancelled cooperatively (deadline / budget)
    /// and the run continued with whatever that stage had completed.
    Cancelled {
        /// Stage name (`mesh/refine`, `eigen/ql`, `mc/sample`, …).
        stage: &'static str,
        /// Units completed before the trip (stage-specific: points,
        /// eigenvalues, samples).
        completed: usize,
        /// Units originally planned (0 when the stage has no fixed plan).
        planned: usize,
    },
    /// A supervised Monte Carlo worker panicked; `recovered` says whether
    /// a retry succeeded or the shard's samples were lost.
    WorkerFault {
        /// Stage the worker was executing.
        stage: &'static str,
        /// Which shard.
        shard: usize,
        /// Attempts made (1 initial + retries).
        attempts: usize,
        /// Whether a retry eventually completed the shard.
        recovered: bool,
    },
    /// The mesh-refinement budget tripped and the context was rebuilt
    /// with a coarser target area.
    MeshCoarsened {
        /// Area fraction that ran out of budget.
        from_area_fraction: f64,
        /// Coarser area fraction retried.
        to_area_fraction: f64,
    },
    /// A truncated Monte Carlo run widened its confidence interval to
    /// account for the missing samples (`factor = √(planned/completed)`).
    CiWidened {
        /// Multiplier applied to the mean-CI half-width.
        factor: f64,
    },
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationEvent::PsdRepaired {
                clamped,
                frobenius_delta,
            } => write!(
                f,
                "indefinite matrix repaired: {clamped} eigenvalue(s) clamped, ‖ΔK‖_F = {frobenius_delta:.3e}"
            ),
            DegradationEvent::CholeskyJitter { epsilon, attempts } => write!(
                f,
                "Cholesky needed diagonal jitter ε = {epsilon:.1e} ({attempts} attempt(s))"
            ),
            DegradationEvent::EigenSamplerFallback { min_eigenvalue } => write!(
                f,
                "Cholesky ladder exhausted; eigendecomposition sampler used (λ_min = {min_eigenvalue:.3e})"
            ),
            DegradationEvent::EigenSolverFallback => {
                write!(f, "QL eigensolver did not converge; Jacobi fallback used")
            }
            DegradationEvent::TruncationBudgetUnmet { rank, computed } => write!(
                f,
                "truncation budget unmet at rank {rank} ({computed} eigenpairs computed)"
            ),
            DegradationEvent::KleDegradedToCholesky { reason } => {
                write!(f, "KLE sampler degraded to full Cholesky: {reason}")
            }
            DegradationEvent::PointsClamped { count } => {
                write!(f, "{count} gate location(s) clamped to nearest triangle")
            }
            DegradationEvent::Cancelled {
                stage,
                completed,
                planned,
            } => {
                if *planned > 0 {
                    write!(
                        f,
                        "stage `{stage}` cancelled: {completed}/{planned} unit(s) salvaged"
                    )
                } else {
                    write!(f, "stage `{stage}` cancelled after {completed} unit(s)")
                }
            }
            DegradationEvent::WorkerFault {
                stage,
                shard,
                attempts,
                recovered,
            } => write!(
                f,
                "worker fault in `{stage}`, shard {shard}: {} after {attempts} attempt(s)",
                if *recovered { "recovered" } else { "shard lost" }
            ),
            DegradationEvent::MeshCoarsened {
                from_area_fraction,
                to_area_fraction,
            } => write!(
                f,
                "mesh budget tripped: coarsened area fraction {from_area_fraction:.2e} → {to_area_fraction:.2e}"
            ),
            DegradationEvent::CiWidened { factor } => {
                write!(f, "confidence interval widened by ×{factor:.3}")
            }
        }
    }
}

/// Accumulated degradation events for one pipeline run.
///
/// Constructed empty, passed `&mut` through setup paths that can repair,
/// and surfaced by the CLI / experiment harnesses. An empty report is the
/// healthy-input contract: the `*_with_report` constructors are bitwise
/// identical to their strict counterparts when nothing is recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event. When the observability sink is on the event is
    /// mirrored into the run report's event log at record time (not in
    /// [`merge`](Self::merge), so merging sub-reports upward never
    /// double-counts).
    pub fn record(&mut self, event: DegradationEvent) {
        if klest_obs::enabled() {
            klest_obs::event("degradation", &event.to_string());
        }
        self.events.push(event);
    }

    /// No repairs or fallbacks happened.
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the report holds no events (mirrors [`is_clean`](Self::is_clean)).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Appends all of `other`'s events.
    pub fn merge(&mut self, other: &DegradationReport) {
        self.events.extend(other.events.iter().cloned());
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "no degradation");
        }
        writeln!(f, "{} degradation event(s):", self.events.len())?;
        for e in &self.events {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_roundtrip() {
        let r = DegradationReport::new();
        assert!(r.is_clean());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_string(), "no degradation");
    }

    #[test]
    fn records_and_displays_events() {
        let mut r = DegradationReport::new();
        r.record(DegradationEvent::CholeskyJitter {
            epsilon: 1e-10,
            attempts: 2,
        });
        r.record(DegradationEvent::PointsClamped { count: 3 });
        assert!(!r.is_clean());
        assert_eq!(r.len(), 2);
        let s = r.to_string();
        assert!(s.contains("jitter"));
        assert!(s.contains("3 gate location(s)"));
        let mut merged = DegradationReport::new();
        merged.merge(&r);
        assert_eq!(merged, r);
    }

    #[test]
    fn event_messages_are_specific() {
        for (e, needle) in [
            (
                DegradationEvent::PsdRepaired {
                    clamped: 2,
                    frobenius_delta: 0.1,
                },
                "clamped",
            ),
            (
                DegradationEvent::EigenSamplerFallback {
                    min_eigenvalue: -0.5,
                },
                "eigendecomposition",
            ),
            (DegradationEvent::EigenSolverFallback, "Jacobi"),
            (
                DegradationEvent::TruncationBudgetUnmet {
                    rank: 60,
                    computed: 60,
                },
                "rank 60",
            ),
            (
                DegradationEvent::KleDegradedToCholesky {
                    reason: "budget unmet",
                },
                "budget unmet",
            ),
            (
                DegradationEvent::Cancelled {
                    stage: "mc/sample",
                    completed: 120,
                    planned: 500,
                },
                "120/500",
            ),
            (
                DegradationEvent::WorkerFault {
                    stage: "mc/sample",
                    shard: 1,
                    attempts: 2,
                    recovered: true,
                },
                "recovered",
            ),
            (
                DegradationEvent::WorkerFault {
                    stage: "mc/sample",
                    shard: 0,
                    attempts: 3,
                    recovered: false,
                },
                "shard lost",
            ),
            (
                DegradationEvent::MeshCoarsened {
                    from_area_fraction: 0.001,
                    to_area_fraction: 0.004,
                },
                "coarsened",
            ),
            (DegradationEvent::CiWidened { factor: 1.29 }, "×1.290"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
