//! Error type for the SSTA layer.

use klest_core::KleError;
use klest_linalg::LinalgError;
use std::fmt;

/// Errors from SSTA setup and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SstaError {
    /// Covariance factorisation or other dense-algebra failure.
    Linalg(LinalgError),
    /// KLE pipeline failure (rank, point location, eigensolve).
    Kle(KleError),
    /// A configuration value was out of range.
    InvalidConfig {
        /// Which knob.
        name: &'static str,
        /// What was supplied, stringified.
        value: String,
    },
}

impl fmt::Display for SstaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SstaError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SstaError::Kle(e) => write!(f, "KLE failure: {e}"),
            SstaError::InvalidConfig { name, value } => {
                write!(f, "invalid SSTA configuration: {name} = {value}")
            }
        }
    }
}

impl std::error::Error for SstaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SstaError::Linalg(e) => Some(e),
            SstaError::Kle(e) => Some(e),
            SstaError::InvalidConfig { .. } => None,
        }
    }
}

impl From<LinalgError> for SstaError {
    fn from(e: LinalgError) -> Self {
        SstaError::Linalg(e)
    }
}

impl From<KleError> for SstaError {
    fn from(e: KleError) -> Self {
        SstaError::Kle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SstaError::from(LinalgError::Empty);
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());
        let e = SstaError::from(KleError::PointOutsideMesh { index: 3 });
        assert!(e.to_string().contains("KLE"));
        let e = SstaError::InvalidConfig {
            name: "samples",
            value: "0".into(),
        };
        assert!(e.to_string().contains("samples"));
        assert!(e.source().is_none());
    }
}
