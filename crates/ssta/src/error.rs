//! Error type for the SSTA layer.

use klest_core::KleError;
use klest_linalg::LinalgError;
use std::fmt;

/// Errors from SSTA setup and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SstaError {
    /// Covariance factorisation or other dense-algebra failure.
    Linalg(LinalgError),
    /// KLE pipeline failure (rank, point location, eigensolve).
    Kle(KleError),
    /// A configuration value was out of range.
    InvalidConfig {
        /// Which knob.
        name: &'static str,
        /// What was supplied, stringified.
        value: String,
    },
    /// The run was cancelled cooperatively (deadline or explicit cancel)
    /// before *any* usable result was produced. Partial runs that salvage
    /// at least one sample return `Ok` with salvage statistics instead.
    Cancelled(klest_runtime::Cancelled),
    /// A Monte Carlo worker panicked and exhausted its retry budget; the
    /// shard's samples are lost (sibling shards may still be salvaged).
    WorkerFault {
        /// Pipeline stage the worker was executing.
        stage: &'static str,
        /// Which shard faulted.
        shard: usize,
        /// Attempts made (1 initial + retries).
        attempts: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for SstaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SstaError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SstaError::Kle(e) => write!(f, "KLE failure: {e}"),
            SstaError::InvalidConfig { name, value } => {
                write!(f, "invalid SSTA configuration: {name} = {value}")
            }
            SstaError::Cancelled(c) => write!(f, "{c}"),
            SstaError::WorkerFault {
                stage,
                shard,
                attempts,
                message,
            } => write!(
                f,
                "worker fault in stage `{stage}`, shard {shard}: {message} ({attempts} attempt(s))"
            ),
        }
    }
}

impl std::error::Error for SstaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SstaError::Linalg(e) => Some(e),
            SstaError::Kle(e) => Some(e),
            SstaError::InvalidConfig { .. } => None,
            SstaError::Cancelled(_) => None,
            SstaError::WorkerFault { .. } => None,
        }
    }
}

impl From<klest_runtime::Cancelled> for SstaError {
    fn from(c: klest_runtime::Cancelled) -> Self {
        SstaError::Cancelled(c)
    }
}

impl From<LinalgError> for SstaError {
    fn from(e: LinalgError) -> Self {
        // Keep cancellation at the top level: callers match one variant
        // per crate regardless of which stage the budget tripped in.
        match e {
            LinalgError::Cancelled(c) => SstaError::Cancelled(c),
            other => SstaError::Linalg(other),
        }
    }
}

impl From<KleError> for SstaError {
    fn from(e: KleError) -> Self {
        match e {
            KleError::Cancelled(c) => SstaError::Cancelled(c),
            other => SstaError::Kle(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SstaError::from(LinalgError::Empty);
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());
        let e = SstaError::from(KleError::PointOutsideMesh { index: 3 });
        assert!(e.to_string().contains("KLE"));
        let e = SstaError::InvalidConfig {
            name: "samples",
            value: "0".into(),
        };
        assert!(e.to_string().contains("samples"));
        assert!(e.source().is_none());
    }

    #[test]
    fn cancellation_surfaces_at_top_level() {
        let c = klest_runtime::Cancelled {
            stage: "eigen/ql",
            completed: 7,
            budget: None,
        };
        // Cancellation nested two crates down still matches one variant.
        let e = SstaError::from(KleError::Cancelled(c.clone()));
        assert!(matches!(e, SstaError::Cancelled(_)));
        let e = SstaError::from(LinalgError::Cancelled(c.clone()));
        assert!(matches!(e, SstaError::Cancelled(_)));
        assert!(e.to_string().contains("eigen/ql"));
        let e = SstaError::WorkerFault {
            stage: "mc/sample",
            shard: 2,
            attempts: 3,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("shard 2"));
        assert!(e.to_string().contains("boom"));
    }
}
