//! Packaged experiments: the building blocks behind Table 1 and Fig. 6.

use crate::faultinject::FaultPlan;
use crate::{
    run_monte_carlo, run_monte_carlo_per_param, run_monte_carlo_supervised_per_param,
    CholeskySampler, DegradationEvent, DegradationReport, GateFieldSampler, KleFieldSampler,
    McConfig, McRun, SalvageStats, SstaError, SummaryStats, N_PARAMS,
};
use klest_circuit::{Circuit, Placement, WireModel};
use klest_core::pipeline::{
    run_frontend, ArtifactCache, Engine, ExecPolicy, FrontEndConfig, FrontEndError, Stage,
};
use klest_core::{GalerkinKle, KleOptions, QuadratureRule, TruncationCriterion};
use klest_geometry::Point2;
use klest_kernels::CovarianceKernel;
use klest_mesh::{Mesh, MeshError};
use klest_runtime::{CancelToken, StageBudgets};
use klest_sta::{GateLibrary, Timer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A circuit prepared for SSTA: placed, wired and bound to a timer.
#[derive(Debug, Clone)]
pub struct CircuitSetup {
    /// The ready-to-run timer.
    pub timer: Timer,
    name: String,
    gates: usize,
    locations: Vec<Point2>,
}

impl CircuitSetup {
    /// Places the circuit on the unit die and builds the timer with the
    /// default wire model and 90 nm library.
    pub fn prepare(circuit: &Circuit) -> Self {
        let placement = Placement::recursive_bisection(circuit);
        let timer = Timer::new(
            circuit,
            &placement,
            WireModel::default(),
            GateLibrary::default_90nm(),
        );
        CircuitSetup {
            timer,
            name: circuit.name().to_string(),
            gates: circuit.gate_count(),
            locations: placement.locations().to_vec(),
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logic-gate count (`N_g`).
    pub fn gates(&self) -> usize {
        self.gates
    }

    /// Node locations (inputs + gates), indexed by node.
    pub fn locations(&self) -> &[Point2] {
        &self.locations
    }
}

/// A computed KLE ready to serve any circuit on the same die: mesh,
/// eigenpairs and the selected truncation rank. Built once, reused across
/// all Table 1 circuits (exactly like the paper's 11.2 s one-time
/// eigenpair computation).
#[derive(Debug, Clone)]
pub struct KleContext {
    /// The die mesh (`Arc`-shared with the artifact cache and MC arms).
    pub mesh: Arc<Mesh>,
    /// The computed expansion (`Arc`-shared likewise).
    pub kle: Arc<GalerkinKle>,
    /// Truncation rank `r` chosen by the criterion.
    pub rank: usize,
    /// Did `rank` genuinely satisfy the criterion's tail budget? When
    /// `false` the criterion saturated and Algorithm 2 under-covers the
    /// variance; fault-tolerant runs degrade back to Algorithm 1.
    pub budget_met: bool,
    /// Degradations recorded during context construction (currently only
    /// [`DegradationEvent::TruncationBudgetUnmet`]).
    pub degradation: DegradationReport,
    /// Wall time of mesh + assembly + eigensolve.
    pub setup_time: Duration,
}

/// Errors from KLE-context construction.
#[derive(Debug)]
pub enum KleContextError {
    /// Meshing failed.
    Mesh(MeshError),
    /// KLE computation failed.
    Ssta(SstaError),
}

impl std::fmt::Display for KleContextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KleContextError::Mesh(e) => write!(f, "meshing failed: {e}"),
            KleContextError::Ssta(e) => write!(f, "KLE failed: {e}"),
        }
    }
}

impl std::error::Error for KleContextError {}

impl KleContext {
    /// The unified constructor: runs the canonical stage-graph front end
    /// ([`run_frontend`]) under the given execution policy, consulting
    /// the artifact cache between stages when one is supplied. Every
    /// other constructor is a thin wrapper over this one.
    ///
    /// # Errors
    ///
    /// [`KleContextError`] from meshing (including a supervised ladder
    /// that ran out of rungs) or assembly / eigensolve (including
    /// cancellation, surfaced as [`SstaError::Cancelled`]).
    pub fn build_with<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        config: &FrontEndConfig,
        policy: ExecPolicy<'_>,
        cache: Option<&ArtifactCache>,
    ) -> Result<Self, KleContextError> {
        let out = run_frontend(kernel, config, policy, cache).map_err(|e| match e {
            FrontEndError::Mesh(m) => KleContextError::Mesh(m),
            FrontEndError::Kle(k) => KleContextError::Ssta(SstaError::from(k)),
        })?;
        let mut degradation = DegradationReport::new();
        for c in &out.coarsenings {
            degradation.record(DegradationEvent::MeshCoarsened {
                from_area_fraction: c.from_area_fraction,
                to_area_fraction: c.to_area_fraction,
            });
        }
        if !out.budget_met {
            degradation.record(DegradationEvent::TruncationBudgetUnmet {
                rank: out.rank,
                computed: out.kle.retained(),
            });
        }
        Ok(KleContext {
            mesh: out.mesh,
            kle: out.kle,
            rank: out.rank,
            budget_met: out.budget_met,
            degradation,
            setup_time: out.setup_time,
        })
    }

    /// Builds the context with explicit mesh constraints.
    ///
    /// # Errors
    ///
    /// [`KleContextError`] from meshing or the eigensolve.
    pub fn build<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        max_area_fraction: f64,
        min_angle_degrees: f64,
        criterion: &TruncationCriterion,
    ) -> Result<Self, KleContextError> {
        let config = FrontEndConfig::new(max_area_fraction, min_angle_degrees, *criterion);
        Self::build_with(kernel, &config, ExecPolicy::Plain, None)
    }

    /// The paper's configuration: 0.1% maximum triangle area, 28° minimum
    /// angle, λ-tail criterion with m = 200 and 1% budget (which selects
    /// r ≈ 25 for the Gaussian kernel).
    ///
    /// # Errors
    ///
    /// [`KleContextError`] from meshing or the eigensolve.
    pub fn paper_default<K: CovarianceKernel + ?Sized>(kernel: &K) -> Result<Self, KleContextError> {
        Self::build(kernel, 0.001, 28.0, &TruncationCriterion::default())
    }

    /// A coarse, fast configuration for tests and smoke runs.
    ///
    /// # Errors
    ///
    /// [`KleContextError`] from meshing or the eigensolve.
    pub fn coarse<K: CovarianceKernel + ?Sized>(kernel: &K) -> Result<Self, KleContextError> {
        Self::build(kernel, 0.02, 25.0, &TruncationCriterion::new(60, 0.01))
    }

    /// Deadline-aware [`build`](Self::build): meshing and the eigensolve
    /// run under child tokens carrying the `mesh` / `eigen` stage budgets
    /// (unlimited when `budgets` has no entry), and a mesh whose
    /// refinement budget trips is retried on a degradation ladder of
    /// coarser target areas (4× per rung, two rungs) with each coarsening
    /// recorded as a [`DegradationEvent::MeshCoarsened`]. The eigensolve
    /// has no coarser fallback: its cancellation is a typed error.
    ///
    /// With an untripped unlimited token this is bitwise identical to
    /// [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// [`KleContextError`] from meshing (including a mesh ladder that ran
    /// out of rungs or parent deadline) or the eigensolve (including
    /// cancellation).
    pub fn build_supervised<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        max_area_fraction: f64,
        min_angle_degrees: f64,
        criterion: &TruncationCriterion,
        token: &CancelToken,
        budgets: &StageBudgets,
    ) -> Result<Self, KleContextError> {
        let config = FrontEndConfig::new(max_area_fraction, min_angle_degrees, *criterion)
            .with_supervised_ladder();
        Self::build_with(kernel, &config, ExecPolicy::Supervised { token, budgets }, None)
    }

    /// Rebuilds with a different quadrature rule (ablation hook).
    ///
    /// # Errors
    ///
    /// [`KleContextError`] from meshing or the eigensolve.
    pub fn with_quadrature<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        max_area_fraction: f64,
        rule: QuadratureRule,
        criterion: &TruncationCriterion,
    ) -> Result<Self, KleContextError> {
        let mut config = FrontEndConfig::new(max_area_fraction, 28.0, *criterion);
        config.options = KleOptions {
            quadrature: rule,
            ..KleOptions::default()
        };
        Self::build_with(kernel, &config, ExecPolicy::Plain, None)
    }
}

/// Outcome of running both generators on one circuit — one row of
/// Table 1 plus the Fig. 6 per-output error metric.
#[derive(Debug, Clone)]
pub struct MethodComparison {
    /// Circuit name.
    pub name: String,
    /// Gate count `N_g` (RVs per parameter for Algorithm 1).
    pub gates: usize,
    /// KLE truncation rank `r` (RVs per parameter for Algorithm 2).
    pub rank: usize,
    /// Worst-delay statistics from reference Monte Carlo (Algorithm 1).
    pub mc: SummaryStats,
    /// Worst-delay statistics from the KLE method (Algorithm 2).
    pub kle: SummaryStats,
    /// `e_μ` of Table 1: percent mismatch of the worst-delay mean.
    pub e_mu_pct: f64,
    /// `e_σ` of Table 1: percent mismatch of the worst-delay std-dev.
    pub e_sigma_pct: f64,
    /// Fig. 6 metric: σ error averaged across all primary outputs, %.
    pub sigma_err_outputs_pct: f64,
    /// Wall time of Algorithm 1 (covariance + Cholesky + N samples).
    pub mc_time: Duration,
    /// Wall time of Algorithm 2 (gather + N samples), excluding the
    /// shared one-time eigenpair computation (reported separately by
    /// [`KleContext::setup_time`], as in the paper).
    pub kle_time: Duration,
    /// `mc_time / kle_time` — the Table 1 speedup column.
    pub speedup: f64,
    /// Repairs and fallbacks applied anywhere in this comparison
    /// (context construction + both sampler setups). Empty on healthy
    /// inputs — the comparison then matches the strict path bit for bit.
    pub degradation: DegradationReport,
    /// Salvage accounting for the reference (Algorithm 1) arm — `Some`
    /// only for supervised runs.
    pub mc_salvage: Option<SalvageStats>,
    /// Salvage accounting for the KLE (Algorithm 2) arm — `Some` only for
    /// supervised runs.
    pub kle_salvage: Option<SalvageStats>,
}

/// Input to one Monte Carlo arm: the field generator driving all four
/// statistical parameters, plus the mutable degradation report the
/// supervised runner records salvage events into.
struct McArmInput<'r> {
    sampler: &'r dyn GateFieldSampler,
    report: &'r mut DegradationReport,
}

/// One Monte Carlo arm (reference or KLE) as a pipeline [`Stage`]: under
/// a plain policy it runs the historical strict loop; under a supervised
/// policy the [`Engine`] hands it a child token carrying the `mc` stage
/// budget and it runs the fault-isolated supervised loop with the
/// optional fault plan.
struct McArmStage<'a> {
    arm: &'static str,
    timer: &'a Timer,
    config: &'a McConfig,
    plan: Option<&'a FaultPlan>,
}

impl<'r> Stage<McArmInput<'r>> for McArmStage<'_> {
    type Output = McRun;
    type Error = SstaError;

    fn name(&self) -> &'static str {
        self.arm
    }

    fn budget_key(&self) -> Option<&'static str> {
        Some("mc")
    }

    fn run(
        &self,
        input: McArmInput<'r>,
        token: Option<&CancelToken>,
    ) -> Result<McRun, SstaError> {
        let samplers: [&dyn GateFieldSampler; N_PARAMS] = [input.sampler; N_PARAMS];
        match token {
            None => run_monte_carlo_per_param(self.timer, &samplers, self.config),
            Some(token) => run_monte_carlo_supervised_per_param(
                self.timer,
                &samplers,
                self.config,
                token,
                self.plan,
                input.report,
            ),
        }
    }
}

/// Sampler-construction behaviour of the one comparison dataflow.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RepairMode {
    /// Constructors propagate errors, nothing is merged into the report
    /// and the KLE arm always runs the KLE sampler ([`compare_methods`]).
    Strict,
    /// Constructors go through the repair ladders, the context's
    /// degradations are merged in, and an unmet truncation budget
    /// degrades the KLE arm to the Cholesky reference.
    Tolerant,
}

/// The single comparison dataflow behind all three public entry points:
/// reference arm then KLE arm, each executed as an [`McArmStage`] by one
/// [`Engine`] whose [`ExecPolicy`] decides plain vs supervised, with
/// `mode` deciding strict vs repair-ladder sampler construction.
fn compare_methods_engine<K: CovarianceKernel + ?Sized>(
    setup: &CircuitSetup,
    kernel: &K,
    ctx: &KleContext,
    config: &McConfig,
    policy: ExecPolicy<'_>,
    mode: RepairMode,
    plan: Option<&FaultPlan>,
) -> Result<MethodComparison, SstaError> {
    let engine = Engine::new(policy);
    let tolerant = mode == RepairMode::Tolerant;
    let mut report = DegradationReport::new();
    if tolerant {
        report.merge(&ctx.degradation);
    }

    // Reference arm (Algorithm 1).
    let span_ref = klest_obs::span("mc/reference");
    let started = Instant::now();
    let reference = if tolerant {
        CholeskySampler::new_with_report(kernel, setup.locations(), &mut report)?
    } else {
        CholeskySampler::new(kernel, setup.locations())?
    };
    let stage = McArmStage {
        arm: "mc/reference",
        timer: &setup.timer,
        config,
        plan,
    };
    let mc_run = engine.exec(
        &stage,
        McArmInput {
            sampler: &reference,
            report: &mut report,
        },
    )?;
    let mc_time = started.elapsed();
    drop(span_ref);

    // KLE arm (Algorithm 2), degrading to the reference sampler when the
    // truncation budget is unmet on the tolerant paths.
    let _span_kle = klest_obs::span("mc/kle");
    let started = Instant::now();
    let kle_sampler;
    let sampler: &dyn GateFieldSampler = if !tolerant {
        kle_sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())?;
        &kle_sampler
    } else if ctx.budget_met {
        kle_sampler = KleFieldSampler::new_with_report(
            &ctx.kle,
            &ctx.mesh,
            ctx.rank,
            setup.locations(),
            &mut report,
        )?;
        &kle_sampler
    } else {
        // Algorithm 2 would under-cover the variance budget: fall back to
        // Algorithm 1 (the sampler built above) for the "KLE" arm too.
        report.record(DegradationEvent::KleDegradedToCholesky {
            reason: "truncation budget unmet",
        });
        &reference
    };
    let stage = McArmStage {
        arm: "mc/kle",
        timer: &setup.timer,
        config,
        plan,
    };
    let kle_run = engine.exec(
        &stage,
        McArmInput {
            sampler,
            report: &mut report,
        },
    )?;
    let kle_time = started.elapsed();
    Ok(summarize(setup, ctx, mc_run, mc_time, kle_run, kle_time, report))
}

/// Runs Algorithm 1 and Algorithm 2 on a prepared circuit and compares.
///
/// # Errors
///
/// Propagates [`SstaError`] from sampler construction or the MC loop.
pub fn compare_methods<K: CovarianceKernel + ?Sized>(
    setup: &CircuitSetup,
    kernel: &K,
    ctx: &KleContext,
    config: &McConfig,
) -> Result<MethodComparison, SstaError> {
    compare_methods_engine(
        setup,
        kernel,
        ctx,
        config,
        ExecPolicy::Plain,
        RepairMode::Strict,
        None,
    )
}

/// Fault-tolerant [`compare_methods`]: sampler construction goes through
/// the repair ladders, off-die gates are clamped, and a KLE context whose
/// truncation budget is unmet degrades Algorithm 2 back to the full
/// Cholesky reference. Every repair lands in the returned comparison's
/// `degradation` report; on healthy inputs the report is empty and the
/// numbers equal [`compare_methods`]'s exactly.
///
/// # Errors
///
/// Propagates [`SstaError`] only for unrepairable inputs (e.g. a
/// NaN-poisoned covariance).
pub fn compare_methods_with_report<K: CovarianceKernel + ?Sized>(
    setup: &CircuitSetup,
    kernel: &K,
    ctx: &KleContext,
    config: &McConfig,
) -> Result<MethodComparison, SstaError> {
    compare_methods_engine(
        setup,
        kernel,
        ctx,
        config,
        ExecPolicy::Plain,
        RepairMode::Tolerant,
        None,
    )
}

/// Deadline-aware [`compare_methods_with_report`]: each Monte Carlo arm
/// runs under its own child token carrying the `mc` stage budget (so a
/// straggling reference arm cannot starve the KLE arm), workers are
/// supervised — panics isolated and retried, hung shards broken by the
/// deadline — and whatever each arm completed is salvaged into the
/// comparison with its [`SalvageStats`]. An optional [`FaultPlan`]
/// deterministically injects panics / hangs at the `mc/sample` sites.
///
/// With an untripped unlimited token, empty budgets and no plan, the
/// statistics equal [`compare_methods_with_report`]'s bit for bit.
///
/// # Errors
///
/// Propagates [`SstaError`], including [`SstaError::Cancelled`] /
/// [`SstaError::WorkerFault`] when an arm salvaged nothing at all.
pub fn compare_methods_supervised<K: CovarianceKernel + ?Sized>(
    setup: &CircuitSetup,
    kernel: &K,
    ctx: &KleContext,
    config: &McConfig,
    token: &CancelToken,
    budgets: &StageBudgets,
    plan: Option<&FaultPlan>,
) -> Result<MethodComparison, SstaError> {
    compare_methods_engine(
        setup,
        kernel,
        ctx,
        config,
        ExecPolicy::Supervised { token, budgets },
        RepairMode::Tolerant,
        plan,
    )
}

/// Algorithm 1 end to end (timed: covariance build + Cholesky + MC loop).
///
/// # Errors
///
/// Propagates [`SstaError`].
pub fn run_reference<K: CovarianceKernel + ?Sized>(
    setup: &CircuitSetup,
    kernel: &K,
    config: &McConfig,
) -> Result<(McRun, Duration), SstaError> {
    let _span = klest_obs::span("mc/reference");
    let started = Instant::now();
    let sampler = CholeskySampler::new(kernel, setup.locations())?;
    let run = run_monte_carlo(&setup.timer, &sampler, config)?;
    Ok((run, started.elapsed()))
}

/// Algorithm 2 end to end (timed: triangle gather + MC loop; the shared
/// eigenpair computation is excluded, mirroring the paper).
///
/// # Errors
///
/// Propagates [`SstaError`].
pub fn run_kle(
    setup: &CircuitSetup,
    ctx: &KleContext,
    config: &McConfig,
) -> Result<(McRun, Duration), SstaError> {
    let _span = klest_obs::span("mc/kle");
    let started = Instant::now();
    let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())?;
    let run = run_monte_carlo(&setup.timer, &sampler, config)?;
    Ok((run, started.elapsed()))
}

fn summarize(
    setup: &CircuitSetup,
    ctx: &KleContext,
    mc_run: McRun,
    mc_time: Duration,
    kle_run: McRun,
    kle_time: Duration,
    degradation: DegradationReport,
) -> MethodComparison {
    let mc = mc_run.worst_delay_stats();
    let kle = kle_run.worst_delay_stats();
    let mc_salvage = mc_run.salvage().cloned();
    let kle_salvage = kle_run.salvage().cloned();
    MethodComparison {
        name: setup.name().to_string(),
        gates: setup.gates(),
        rank: ctx.rank,
        e_mu_pct: kle.mean_error_pct(&mc),
        e_sigma_pct: kle.std_error_pct(&mc),
        sigma_err_outputs_pct: kle_run.output_stats().avg_sigma_error_pct(mc_run.output_stats()),
        mc,
        kle,
        mc_time,
        kle_time,
        speedup: mc_time.as_secs_f64() / kle_time.as_secs_f64().max(1e-12),
        degradation,
        mc_salvage,
        kle_salvage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_circuit::{generate, GeneratorConfig};
    use klest_kernels::GaussianKernel;

    #[test]
    fn kle_agrees_with_reference_on_small_circuit() {
        let circuit = generate("x", GeneratorConfig::combinational(120, 9)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        assert_eq!(setup.gates(), 120);
        assert_eq!(setup.name(), "x");
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        assert!(ctx.rank >= 4, "rank {}", ctx.rank);
        let cmp = compare_methods(&setup, &kernel, &ctx, &McConfig::new(800, 3)).unwrap();
        // Means agree tightly; sigmas within Monte Carlo noise + KLE
        // truncation (paper: e_σ < 5.7% at 100K samples; we run 800).
        assert!(cmp.e_mu_pct < 1.0, "e_mu = {}%", cmp.e_mu_pct);
        assert!(cmp.e_sigma_pct < 20.0, "e_sigma = {}%", cmp.e_sigma_pct);
        assert!(cmp.sigma_err_outputs_pct < 25.0, "fig6 metric = {}%", cmp.sigma_err_outputs_pct);
        assert!(cmp.speedup > 0.0);
        assert_eq!(cmp.rank, ctx.rank);
        assert!(cmp.mc.mean > 0.0 && cmp.kle.mean > 0.0);
    }

    #[test]
    fn fault_tolerant_path_is_noop_on_healthy_inputs() {
        // The core acceptance contract: the repair ladder must not change
        // results when nothing needs repairing.
        let circuit = generate("h", GeneratorConfig::combinational(60, 4)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        assert!(ctx.budget_met);
        assert!(ctx.degradation.is_clean());
        let cfg = McConfig::new(300, 11);
        let strict = compare_methods(&setup, &kernel, &ctx, &cfg).unwrap();
        let tolerant = compare_methods_with_report(&setup, &kernel, &ctx, &cfg).unwrap();
        assert!(tolerant.degradation.is_clean(), "{}", tolerant.degradation);
        // Same seeds, same samplers: statistics agree bit for bit.
        assert_eq!(strict.mc.mean, tolerant.mc.mean);
        assert_eq!(strict.kle.mean, tolerant.kle.mean);
        assert_eq!(strict.e_mu_pct, tolerant.e_mu_pct);
        assert_eq!(strict.e_sigma_pct, tolerant.e_sigma_pct);
    }

    #[test]
    fn unmet_budget_degrades_kle_arm_to_cholesky() {
        let circuit = generate("d", GeneratorConfig::combinational(50, 4)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        let kernel = GaussianKernel::new(2.0);
        // An unmeetable budget: 3 computed pairs, 1e-12 tail fraction.
        let ctx =
            KleContext::build(&kernel, 0.05, 25.0, &TruncationCriterion::new(3, 1e-12)).unwrap();
        assert!(!ctx.budget_met);
        assert!(ctx
            .degradation
            .events()
            .iter()
            .any(|e| matches!(e, crate::DegradationEvent::TruncationBudgetUnmet { .. })));
        let cmp =
            compare_methods_with_report(&setup, &kernel, &ctx, &McConfig::new(200, 5)).unwrap();
        assert!(cmp
            .degradation
            .events()
            .iter()
            .any(|e| matches!(e, crate::DegradationEvent::KleDegradedToCholesky { .. })));
        // Both arms ran the same (Cholesky) sampler and seed: identical.
        assert_eq!(cmp.mc.mean, cmp.kle.mean);
        assert_eq!(cmp.e_mu_pct, 0.0);
    }

    #[test]
    fn supervised_context_matches_plain_on_live_token() {
        let kernel = GaussianKernel::new(1.0);
        let plain = KleContext::coarse(&kernel).unwrap();
        let token = CancelToken::unlimited();
        let ctx = KleContext::build_supervised(
            &kernel,
            0.02,
            25.0,
            &TruncationCriterion::new(60, 0.01),
            &token,
            &StageBudgets::none(),
        )
        .unwrap();
        assert_eq!(ctx.mesh.len(), plain.mesh.len());
        assert_eq!(ctx.rank, plain.rank);
        assert!(ctx.degradation.is_clean());
        for (a, b) in ctx.kle.eigenvalues().iter().zip(plain.kle.eigenvalues()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mesh_budget_trip_climbs_coarsening_ladder() {
        // A mesh stage budget that's already exhausted at the first
        // checkpoint would kill every rung; instead exhaust only the
        // *checkpoint* budget of the first rung by tripping the parent's
        // child... simplest deterministic route: a parent token that is
        // never cancelled plus per-rung children is exercised with a
        // sub-millisecond mesh budget — the fine rung cannot finish, the
        // coarse rungs eventually can (coarser = fewer checkpoints, but
        // the wall budget restarts per rung, so only runaway rungs trip).
        let kernel = GaussianKernel::new(1.0);
        let token = CancelToken::unlimited();
        let mut budgets = StageBudgets::none();
        // Fine enough that rung 1 (0.0002) cannot mesh in 30 ms on any
        // machine this runs on, while rung 2 or 3 (4x / 16x coarser) can.
        budgets.set("mesh", Duration::from_millis(30));
        match KleContext::build_supervised(
            &kernel,
            0.0002,
            28.0,
            &TruncationCriterion::new(40, 0.01),
            &token,
            &budgets,
        ) {
            Ok(ctx) => {
                assert!(
                    ctx.degradation.events().iter().any(|e| matches!(
                        e,
                        DegradationEvent::MeshCoarsened { .. }
                    )),
                    "ladder must record the coarsening: {}",
                    ctx.degradation
                );
            }
            // On a very slow machine even the coarsest rung can trip; the
            // contract is then a typed cancellation, not a panic.
            Err(KleContextError::Mesh(MeshError::Cancelled(_))) => {}
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }

    #[test]
    fn supervised_comparison_matches_report_path_when_untripped() {
        let circuit = generate("sup", GeneratorConfig::combinational(60, 4)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        let cfg = McConfig::new(200, 11);
        let plain = compare_methods_with_report(&setup, &kernel, &ctx, &cfg).unwrap();
        let token = CancelToken::unlimited();
        let sup = compare_methods_supervised(
            &setup,
            &kernel,
            &ctx,
            &cfg,
            &token,
            &StageBudgets::none(),
            None,
        )
        .unwrap();
        assert_eq!(plain.mc.mean, sup.mc.mean);
        assert_eq!(plain.kle.mean, sup.kle.mean);
        assert!(sup.degradation.is_clean(), "{}", sup.degradation);
        let mc_salvage = sup.mc_salvage.as_ref().unwrap();
        assert_eq!(mc_salvage.completed, 200);
        assert!(!mc_salvage.truncated());
        assert!(sup.kle_salvage.is_some());
        assert!(plain.mc_salvage.is_none(), "plain runs carry no salvage");
    }

    #[test]
    fn per_arm_budgets_isolate_a_tripped_reference_arm() {
        use crate::faultinject::{FaultPlan, Stage};
        let circuit = generate("arm", GeneratorConfig::combinational(50, 6)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        // The injected hang parks the reference arm's worker until its
        // per-arm deadline breaks it; the KLE arm gets a *fresh* child
        // token and runs to completion.
        let token = CancelToken::unlimited();
        let mut budgets = StageBudgets::none();
        budgets.set("mc", Duration::from_millis(500));
        let plan = FaultPlan::new().hang_for(Stage::Mc, 600_000);
        let cfg = McConfig::new(150, 3).with_threads(2);
        let cmp = compare_methods_supervised(
            &setup,
            &kernel,
            &ctx,
            &cfg,
            &token,
            &budgets,
            Some(&plan),
        )
        .unwrap();
        let mc_salvage = cmp.mc_salvage.as_ref().unwrap();
        // The hung shard was broken by the deadline: the reference arm is
        // truncated but salvaged the sibling shard's samples.
        assert!(mc_salvage.truncated(), "{mc_salvage:?}");
        assert!(mc_salvage.completed > 0);
        assert!(mc_salvage.ci_widening > 1.0);
        // The KLE arm ran on its own budget, unstarved.
        let kle_salvage = cmp.kle_salvage.as_ref().unwrap();
        assert_eq!(kle_salvage.completed, 150, "{kle_salvage:?}");
        assert!(cmp.degradation.events().iter().any(|e| matches!(
            e,
            DegradationEvent::Cancelled { stage: "mc/sample", .. }
        )));
    }

    #[test]
    fn coarse_context_reports_setup_time() {
        let kernel = GaussianKernel::new(1.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        assert!(ctx.setup_time.as_nanos() > 0);
        assert!(ctx.mesh.len() > 50);
        assert!(ctx.rank <= ctx.kle.retained());
    }

    #[test]
    fn quadrature_ablation_builds() {
        let kernel = GaussianKernel::new(1.0);
        let ctx = KleContext::with_quadrature(
            &kernel,
            0.05,
            QuadratureRule::ThreePoint,
            &TruncationCriterion::new(40, 0.01),
        )
        .unwrap();
        assert!(ctx.rank >= 1);
    }
}
