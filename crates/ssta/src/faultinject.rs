//! Fault injection for robustness testing: deliberately broken kernels,
//! matrices, meshes and placements.
//!
//! Every generator here produces an input that is *plausible* — right
//! types, right shapes — but numerically or geometrically hostile: an
//! indefinite kernel, a NaN-poisoned Gram matrix, a sliver triangle, a
//! gate placed off-die. The integration suite (`tests/fault_injection.rs`)
//! drives the pipeline with these and asserts the contract of DESIGN.md's
//! degradation policy: a typed error or a recorded repair, never a panic.

use klest_geometry::{Point2, Rect};
use klest_kernels::CovarianceKernel;
use klest_linalg::Matrix;

/// An indefinite "kernel": `K(x, y) = 1 − d·‖x−y‖` without the cone's
/// clamp at zero, so distant pairs go *negative* — grossly violating
/// positive semidefiniteness on any spread-out point set.
#[derive(Debug, Clone, Copy)]
pub struct IndefiniteKernel {
    /// Slope `d` of the linear decay.
    pub slope: f64,
}

impl CovarianceKernel for IndefiniteKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        1.0 - self.slope * x.distance(y)
    }
    fn name(&self) -> &str {
        "fault:indefinite"
    }
}

/// A kernel returning NaN for every distinct pair — models a fitted
/// kernel whose parameter table was corrupted. The diagonal stays 1 so
/// shape checks pass and the poison reaches the numerics.
#[derive(Debug, Clone, Copy)]
pub struct NanKernel;

impl CovarianceKernel for NanKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        if x == y {
            1.0
        } else {
            f64::NAN
        }
    }
    fn name(&self) -> &str {
        "fault:nan"
    }
}

/// A *barely* indefinite kernel: unit correlation everywhere but a
/// diagonal deficit, putting the Gram's smallest eigenvalue a hair below
/// zero — deep enough to defeat the construction nugget, shallow enough
/// that a jitter rung repairs it. Exercises the middle of the Cholesky
/// retry ladder.
#[derive(Debug, Clone, Copy)]
pub struct NearSingularKernel {
    /// How far the diagonal sits below 1 (e.g. `5e-8`).
    pub deficit: f64,
}

impl CovarianceKernel for NearSingularKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        if x == y {
            1.0 - self.deficit
        } else {
            1.0
        }
    }
    fn name(&self) -> &str {
        "fault:near-singular"
    }
}

/// A symmetric matrix with a NaN planted at `(row, col)` (mirrored), the
/// rest a well-conditioned diagonal-dominant pattern.
pub fn nan_poisoned_matrix(n: usize, row: usize, col: usize) -> Matrix {
    let mut m = Matrix::from_fn(n, n, |i, j| if i == j { 2.0 } else { 0.1 });
    m[(row, col)] = f64::NAN;
    m[(col, row)] = f64::NAN;
    m
}

/// Raw triangulation parts containing one zero-area (collinear) triangle:
/// feeding these to `Mesh::from_parts` must yield a typed
/// `DegenerateTriangle` error.
pub fn degenerate_mesh_parts() -> (Rect, Vec<Point2>, Vec<[usize; 3]>) {
    let points = vec![
        Point2::new(-1.0, -1.0),
        Point2::new(1.0, -1.0),
        Point2::new(1.0, 1.0),
        Point2::new(0.0, 0.0),
        Point2::new(0.5, 0.5), // collinear with the previous and next
        Point2::new(1.0, 1.0),
    ];
    let triangles = vec![[0, 1, 2], [3, 4, 5]];
    (Rect::unit_die(), points, triangles)
}

/// Gate placements with a fraction of locations pushed off the unit die:
/// index 0 stays inside, odd indices are displaced far outside.
pub fn offdie_locations(count: usize) -> Vec<Point2> {
    (0..count)
        .map(|i| {
            let t = i as f64 / count.max(1) as f64;
            if i % 2 == 1 {
                Point2::new(3.0 + t, -4.0)
            } else {
                Point2::new(-0.8 + 1.6 * t, 0.3 - 0.6 * t)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indefinite_kernel_goes_negative() {
        let k = IndefiniteKernel { slope: 1.0 };
        assert_eq!(k.eval(Point2::ORIGIN, Point2::ORIGIN), 1.0);
        assert!(k.eval(Point2::new(-1.0, -1.0), Point2::new(1.0, 1.0)) < -1.0);
    }

    #[test]
    fn nan_kernel_poisons_offdiagonal_only() {
        let k = NanKernel;
        assert_eq!(k.eval(Point2::ORIGIN, Point2::ORIGIN), 1.0);
        assert!(k.eval(Point2::ORIGIN, Point2::new(0.1, 0.0)).is_nan());
    }

    #[test]
    fn generators_have_expected_shapes() {
        let m = nan_poisoned_matrix(4, 0, 2);
        assert!(m[(0, 2)].is_nan() && m[(2, 0)].is_nan());
        assert_eq!(m[(1, 1)], 2.0);
        let (_, pts, tris) = degenerate_mesh_parts();
        assert_eq!(tris.len(), 2);
        assert!(pts.len() >= 6);
        let locs = offdie_locations(7);
        assert_eq!(locs.len(), 7);
        assert!(locs.iter().any(|p| p.x > 2.0));
        assert!(Rect::unit_die().contains(locs[0]));
    }
}
