//! Fault injection for robustness testing: deliberately broken kernels,
//! matrices, meshes and placements.
//!
//! Every generator here produces an input that is *plausible* — right
//! types, right shapes — but numerically or geometrically hostile: an
//! indefinite kernel, a NaN-poisoned Gram matrix, a sliver triangle, a
//! gate placed off-die. The integration suite (`tests/fault_injection.rs`)
//! drives the pipeline with these and asserts the contract of DESIGN.md's
//! degradation policy: a typed error or a recorded repair, never a panic.

use klest_geometry::{Point2, Rect};
use klest_kernels::CovarianceKernel;
use klest_linalg::Matrix;
use klest_runtime::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// An indefinite "kernel": `K(x, y) = 1 − d·‖x−y‖` without the cone's
/// clamp at zero, so distant pairs go *negative* — grossly violating
/// positive semidefiniteness on any spread-out point set.
#[derive(Debug, Clone, Copy)]
pub struct IndefiniteKernel {
    /// Slope `d` of the linear decay.
    pub slope: f64,
}

impl CovarianceKernel for IndefiniteKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        1.0 - self.slope * x.distance(y)
    }
    fn name(&self) -> &str {
        "fault:indefinite"
    }
}

/// A kernel returning NaN for every distinct pair — models a fitted
/// kernel whose parameter table was corrupted. The diagonal stays 1 so
/// shape checks pass and the poison reaches the numerics.
#[derive(Debug, Clone, Copy)]
pub struct NanKernel;

impl CovarianceKernel for NanKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        if x == y {
            1.0
        } else {
            f64::NAN
        }
    }
    fn name(&self) -> &str {
        "fault:nan"
    }
}

/// A *barely* indefinite kernel: unit correlation everywhere but a
/// diagonal deficit, putting the Gram's smallest eigenvalue a hair below
/// zero — deep enough to defeat the construction nugget, shallow enough
/// that a jitter rung repairs it. Exercises the middle of the Cholesky
/// retry ladder.
#[derive(Debug, Clone, Copy)]
pub struct NearSingularKernel {
    /// How far the diagonal sits below 1 (e.g. `5e-8`).
    pub deficit: f64,
}

impl CovarianceKernel for NearSingularKernel {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        if x == y {
            1.0 - self.deficit
        } else {
            1.0
        }
    }
    fn name(&self) -> &str {
        "fault:near-singular"
    }
}

/// A symmetric matrix with a NaN planted at `(row, col)` (mirrored), the
/// rest a well-conditioned diagonal-dominant pattern.
pub fn nan_poisoned_matrix(n: usize, row: usize, col: usize) -> Matrix {
    let mut m = Matrix::from_fn(n, n, |i, j| if i == j { 2.0 } else { 0.1 });
    m[(row, col)] = f64::NAN;
    m[(col, row)] = f64::NAN;
    m
}

/// Raw triangulation parts containing one zero-area (collinear) triangle:
/// feeding these to `Mesh::from_parts` must yield a typed
/// `DegenerateTriangle` error.
pub fn degenerate_mesh_parts() -> (Rect, Vec<Point2>, Vec<[usize; 3]>) {
    let points = vec![
        Point2::new(-1.0, -1.0),
        Point2::new(1.0, -1.0),
        Point2::new(1.0, 1.0),
        Point2::new(0.0, 0.0),
        Point2::new(0.5, 0.5), // collinear with the previous and next
        Point2::new(1.0, 1.0),
    ];
    let triangles = vec![[0, 1, 2], [3, 4, 5]];
    (Rect::unit_die(), points, triangles)
}

/// Pipeline stage a runtime fault (panic / hang) is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Mesh generation (Bowyer–Watson seeding / Ruppert refinement).
    Mesh,
    /// Galerkin assembly + eigensolve.
    Eigen,
    /// The Monte Carlo sampling loop.
    Mc,
}

struct PanicFault {
    stage: Stage,
    shard: usize,
    remaining: AtomicUsize,
}

struct HangFault {
    stage: Stage,
    /// `None` hangs the first worker to arrive, whichever shard that is.
    shard: Option<usize>,
    millis: u64,
    fired: AtomicBool,
}

struct AbortFault {
    stage: Stage,
    shard: usize,
    /// Which arrival dies (1 = the very next one).
    countdown: AtomicUsize,
}

/// A deterministic schedule of *runtime* faults — panics and hangs —
/// injected into the supervised pipeline at named stage/shard sites.
///
/// Unlike the numerical generators above, these exercise the runtime
/// supervision layer: a [`Stage::Mc`] panic must be caught by the
/// supervisor and retried; a hang must be broken by the cooperative
/// deadline with completed work salvaged. Counters are atomic so the plan
/// can be shared by reference across worker threads, and each fault fires
/// a bounded number of times — a retried shard reruns the same closure,
/// so a one-shot panic models the transient fault the retry ladder is
/// designed for.
#[derive(Default)]
pub struct FaultPlan {
    panics: Vec<PanicFault>,
    hangs: Vec<HangFault>,
    aborts: Vec<AbortFault>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("panics", &self.panics.len())
            .field("hangs", &self.hangs.len())
            .field("aborts", &self.aborts.len())
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan (no faults fire).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Panics the first time `shard` reaches `stage` (a transient fault:
    /// the supervisor's retry reruns the shard, which then succeeds).
    #[must_use]
    pub fn panic_at(self, stage: Stage, shard: usize) -> FaultPlan {
        self.panic_at_times(stage, shard, 1)
    }

    /// Panics the first `times` arrivals of `shard` at `stage`. With
    /// `times` above the supervisor's retry bound this models a permanent
    /// fault and the shard is lost.
    #[must_use]
    pub fn panic_at_times(mut self, stage: Stage, shard: usize, times: usize) -> FaultPlan {
        self.panics.push(PanicFault {
            stage,
            shard,
            remaining: AtomicUsize::new(times),
        });
        self
    }

    /// Hangs the first worker (any shard) that reaches `stage` for up to
    /// `millis` milliseconds. The sleep polls the worker's cancel token in
    /// small slices, so a deadline breaks the hang cooperatively — exactly
    /// the straggler scenario the supervised runtime must salvage.
    #[must_use]
    pub fn hang_for(mut self, stage: Stage, millis: u64) -> FaultPlan {
        self.hangs.push(HangFault {
            stage,
            shard: None,
            millis,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Like [`hang_for`](Self::hang_for) but pinned to one shard, for
    /// tests that need a deterministic victim (e.g. hang shard 1 while
    /// shard 0 takes a panic).
    #[must_use]
    pub fn hang_at(mut self, stage: Stage, shard: usize, millis: u64) -> FaultPlan {
        self.hangs.push(HangFault {
            stage,
            shard: Some(shard),
            millis,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Deterministic kill point: the `nth` arrival (1-based) of `shard`
    /// at `stage` dies with [`klest_runtime::simulated_abort`] —
    /// process-exit semantics, delivered as an
    /// [`klest_runtime::AbortSignal`] panic the supervisor re-raises
    /// instead of retrying, so it unwinds to the chaos test's catch
    /// point. Unlike [`panic_at`](Self::panic_at), an abort is never
    /// recovered; the whole supervised run dies, exactly like a real
    /// `std::process::abort` would take the process.
    #[must_use]
    pub fn abort_at(mut self, stage: Stage, shard: usize, nth: usize) -> FaultPlan {
        self.aborts.push(AbortFault {
            stage,
            shard,
            countdown: AtomicUsize::new(nth.max(1)),
        });
        self
    }

    /// Instrumentation hook: called by supervised pipeline code when
    /// `shard` enters `stage`. Fires any scheduled hang first (so a
    /// hang + panic at the same site hangs, wakes on cancellation, then
    /// panics), then any scheduled abort (process death beats a retryable
    /// panic at the same site), then any scheduled panic.
    pub fn fire(&self, stage: Stage, shard: usize, token: &CancelToken) {
        for hang in self
            .hangs
            .iter()
            .filter(|h| h.stage == stage && h.shard.is_none_or(|s| s == shard))
        {
            if hang
                .fired
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                let slice = Duration::from_millis(5);
                let mut slept = Duration::ZERO;
                let total = Duration::from_millis(hang.millis);
                while slept < total && !token.is_cancelled() {
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        }
        for a in self
            .aborts
            .iter()
            .filter(|a| a.stage == stage && a.shard == shard)
        {
            // Countdown-to-one: exactly the scheduled arrival dies.
            if a.countdown
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                == Ok(1)
            {
                klest_runtime::simulated_abort(format!("{stage:?}/shard{shard}"));
            }
        }
        for p in self
            .panics
            .iter()
            .filter(|p| p.stage == stage && p.shard == shard)
        {
            // Decrement-if-positive: exactly `times` arrivals panic, even
            // under concurrent arrivals from sibling threads.
            let armed = p
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok();
            if armed {
                // Deliberate injected panic: panic_any keeps the library
                // free of the `panic!` macro the no-panic gate forbids.
                std::panic::panic_any(format!(
                    "injected fault: stage {stage:?}, shard {shard}"
                ));
            }
        }
    }
}

/// Gate placements with a fraction of locations pushed off the unit die:
/// index 0 stays inside, odd indices are displaced far outside.
pub fn offdie_locations(count: usize) -> Vec<Point2> {
    (0..count)
        .map(|i| {
            let t = i as f64 / count.max(1) as f64;
            if i % 2 == 1 {
                Point2::new(3.0 + t, -4.0)
            } else {
                Point2::new(-0.8 + 1.6 * t, 0.3 - 0.6 * t)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indefinite_kernel_goes_negative() {
        let k = IndefiniteKernel { slope: 1.0 };
        assert_eq!(k.eval(Point2::ORIGIN, Point2::ORIGIN), 1.0);
        assert!(k.eval(Point2::new(-1.0, -1.0), Point2::new(1.0, 1.0)) < -1.0);
    }

    #[test]
    fn nan_kernel_poisons_offdiagonal_only() {
        let k = NanKernel;
        assert_eq!(k.eval(Point2::ORIGIN, Point2::ORIGIN), 1.0);
        assert!(k.eval(Point2::ORIGIN, Point2::new(0.1, 0.0)).is_nan());
    }

    #[test]
    fn panic_fault_fires_exactly_scheduled_times() {
        let plan = FaultPlan::new().panic_at_times(Stage::Mc, 1, 2);
        let token = CancelToken::unlimited();
        // Wrong shard / wrong stage: silent.
        plan.fire(Stage::Mc, 0, &token);
        plan.fire(Stage::Eigen, 1, &token);
        // Scheduled site: panics twice, then is exhausted.
        for _ in 0..2 {
            let r = std::panic::catch_unwind(|| plan.fire(Stage::Mc, 1, &token));
            let payload = r.expect_err("scheduled arrival must panic");
            let msg = payload.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("shard 1"), "{msg}");
        }
        plan.fire(Stage::Mc, 1, &token); // third arrival: no panic
    }

    #[test]
    fn hang_fires_once_and_breaks_on_cancellation() {
        use std::time::Instant;
        let plan = FaultPlan::new().hang_for(Stage::Mc, 60_000);
        let token = CancelToken::unlimited();
        token.cancel();
        // Already-cancelled token: the hang returns immediately.
        let t0 = Instant::now();
        plan.fire(Stage::Mc, 0, &token);
        assert!(t0.elapsed() < Duration::from_secs(5));
        // Second arrival: fault already consumed, returns instantly even
        // on a live token.
        let live = CancelToken::unlimited();
        let t0 = Instant::now();
        plan.fire(Stage::Mc, 1, &live);
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn abort_fault_fires_on_nth_arrival_with_abort_signal() {
        let plan = FaultPlan::new().abort_at(Stage::Mc, 0, 2);
        let token = CancelToken::unlimited();
        plan.fire(Stage::Mc, 1, &token); // wrong shard: silent
        plan.fire(Stage::Mc, 0, &token); // 1st arrival: survives
        let r = std::panic::catch_unwind(|| plan.fire(Stage::Mc, 0, &token));
        let payload = r.expect_err("2nd arrival must die");
        let signal = payload
            .downcast_ref::<klest_runtime::AbortSignal>()
            .expect("AbortSignal payload");
        assert!(signal.site.contains("Mc"), "{}", signal.site);
        plan.fire(Stage::Mc, 0, &token); // consumed: no refire
    }

    #[test]
    fn generators_have_expected_shapes() {
        let m = nan_poisoned_matrix(4, 0, 2);
        assert!(m[(0, 2)].is_nan() && m[(2, 0)].is_nan());
        assert_eq!(m[(1, 1)], 2.0);
        let (_, pts, tris) = degenerate_mesh_parts();
        assert_eq!(tris.len(), 2);
        assert!(pts.len() >= 6);
        let locs = offdie_locations(7);
        assert_eq!(locs.len(), 7);
        assert!(locs.iter().any(|p| p.x > 2.0));
        assert!(Rect::unit_die().contains(locs[0]));
    }
}
