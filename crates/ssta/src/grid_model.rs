//! The grid-based spatial correlation model with PCA (paper Sec. 2.1,
//! following Chang & Sapatnekar [5]) — the *ad hoc* baseline the
//! kernel/KLE approach replaces.
//!
//! The die is divided into a `g x g` grid; every cell gets one RV per
//! parameter, with the inter-cell correlation matrix sampled from the
//! kernel at cell centers. PCA (eigendecomposition of that matrix, paper
//! eq. 1) extracts `r` uncorrelated components. This is a *discrete* KLE
//! with a fixed, arbitrary discretisation — the comparison sampler for
//! the paper's "how good is grid-free?" question.

use crate::{GateFieldSampler, NormalSource, SstaError};
use klest_geometry::{Point2, Rect};
use klest_kernels::CovarianceKernel;
use klest_linalg::{Matrix, SymmetricEigen};
use klest_rng::StdRng;

/// Grid-PCA sampler: Algorithm 1's accuracy model with Algorithm 2's
/// dimensionality, at the cost of grid-discretisation artefacts (every
/// gate in a cell is perfectly correlated; cell size is a free knob the
/// model gives no way to choose — the paper's criticism).
#[derive(Debug, Clone)]
pub struct GridPcaSampler {
    /// `N_nodes x r` map from principal components to per-gate values.
    gathered: Matrix,
    /// Grid resolution (cells per side).
    grid: usize,
    /// Fraction of grid-model variance the retained components capture.
    variance_captured: f64,
}

impl GridPcaSampler {
    /// Builds the sampler: `grid x grid` cells over `die`, correlation
    /// from `kernel` at cell centers, PCA truncated to `rank`
    /// components.
    ///
    /// # Errors
    ///
    /// - [`SstaError::InvalidConfig`] for a zero grid or rank larger than
    ///   the cell count,
    /// - [`SstaError::Linalg`] if the grid correlation matrix is not
    ///   factorable (possible for kernels that are invalid on lattices —
    ///   one of the grid model's documented failure modes).
    pub fn new<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        die: Rect,
        grid: usize,
        rank: usize,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        if grid == 0 {
            return Err(SstaError::InvalidConfig {
                name: "grid",
                value: "0".into(),
            });
        }
        let cells = grid * grid;
        if rank == 0 || rank > cells {
            return Err(SstaError::InvalidConfig {
                name: "rank",
                value: format!("{rank} (grid has {cells} cells)"),
            });
        }
        // Cell centers.
        let centers: Vec<Point2> = (0..cells)
            .map(|c| {
                let (i, j) = (c % grid, c / grid);
                die.lerp(
                    (i as f64 + 0.5) / grid as f64,
                    (j as f64 + 0.5) / grid as f64,
                )
            })
            .collect();
        // Correlation matrix + PCA.
        let corr = Matrix::from_fn(cells, cells, |i, j| kernel.eval(centers[i], centers[j]));
        let eig = SymmetricEigen::new(&corr)?;
        let total: f64 = eig.eigenvalues().iter().map(|l| l.max(0.0)).sum();
        let head: f64 = eig.eigenvalues()[..rank].iter().map(|l| l.max(0.0)).sum();
        // Per-cell loading matrix: cell value = Σ_j sqrt(λ_j) v_j[cell] ξ_j.
        let mut loadings = Matrix::zeros(cells, rank);
        for j in 0..rank {
            let lam = eig.eigenvalues()[j].max(0.0);
            let s = lam.sqrt();
            for i in 0..cells {
                loadings[(i, j)] = s * eig.eigenvectors()[(i, j)];
            }
        }
        // Gather per gate through its containing cell.
        let bbox = die.bbox();
        let mut gathered = Matrix::zeros(locations.len(), rank);
        for (row, p) in locations.iter().enumerate() {
            let fx = ((p.x - bbox.min.x) / bbox.width()).clamp(0.0, 1.0);
            let fy = ((p.y - bbox.min.y) / bbox.height()).clamp(0.0, 1.0);
            let i = ((fx * grid as f64) as usize).min(grid - 1);
            let j = ((fy * grid as f64) as usize).min(grid - 1);
            let cell = j * grid + i;
            gathered
                .row_mut(row)
                .copy_from_slice(loadings.row(cell));
        }
        Ok(GridPcaSampler {
            gathered,
            grid,
            variance_captured: if total > 0.0 { head / total } else { 0.0 },
        })
    }

    /// Grid resolution (cells per side).
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// PCA rank `r`.
    pub fn rank(&self) -> usize {
        self.gathered.cols()
    }

    /// Fraction of the grid model's variance the retained components
    /// capture.
    pub fn variance_captured(&self) -> f64 {
        self.variance_captured
    }
}

impl GateFieldSampler for GridPcaSampler {
    fn node_count(&self) -> usize {
        self.gathered.rows()
    }

    fn random_dims(&self) -> usize {
        self.gathered.cols()
    }

    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        thread_local! {
            static XI: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        XI.with(|cell| {
            let mut xi = cell.borrow_mut();
            xi.resize(self.rank(), 0.0);
            normals.fill(&mut xi);
            for (o, row) in out.iter_mut().zip(0..self.gathered.rows()) {
                *o = klest_linalg::vecops::dot(self.gathered.row(row), &xi);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_kernels::GaussianKernel;
    use klest_rng::SeedableRng;

    fn probe_locations() -> Vec<Point2> {
        vec![
            Point2::new(-0.8, -0.8),
            Point2::new(-0.75, -0.75), // same cell as above for coarse grids
            Point2::new(0.8, 0.8),
            Point2::new(0.0, 0.0),
        ]
    }

    #[test]
    fn shapes_and_metadata() {
        let kernel = GaussianKernel::new(2.0);
        let locs = probe_locations();
        let s = GridPcaSampler::new(&kernel, Rect::unit_die(), 8, 20, &locs).unwrap();
        assert_eq!(s.grid(), 8);
        assert_eq!(s.rank(), 20);
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.random_dims(), 20);
        assert!(s.variance_captured() > 0.5);
        assert!(s.variance_captured() <= 1.0 + 1e-12);
    }

    #[test]
    fn same_cell_gates_perfectly_correlated() {
        // The grid model's discretisation artefact: both probes fall in
        // one cell of a coarse grid, so their values are identical.
        let kernel = GaussianKernel::new(2.0);
        let locs = probe_locations();
        let s = GridPcaSampler::new(&kernel, Rect::unit_die(), 4, 16, &locs).unwrap();
        let mut normals = NormalSource::new(StdRng::seed_from_u64(3));
        let mut out = vec![0.0; 4];
        for _ in 0..5 {
            s.sample_into(&mut normals, &mut out);
            assert_eq!(out[0], out[1], "same-cell gates must coincide");
            assert_ne!(out[0], out[2], "far cells must differ");
        }
    }

    #[test]
    fn correlation_approximates_kernel_between_cells() {
        let kernel = GaussianKernel::new(1.0);
        let locs = vec![Point2::new(-0.5, -0.5), Point2::new(0.5, 0.5)];
        let s = GridPcaSampler::new(&kernel, Rect::unit_die(), 10, 100, &locs).unwrap();
        let mut normals = NormalSource::new(StdRng::seed_from_u64(17));
        let mut out = vec![0.0; 2];
        let (mut s01, mut s00, mut s11) = (0.0, 0.0, 0.0);
        let n = 6000;
        for _ in 0..n {
            s.sample_into(&mut normals, &mut out);
            s01 += out[0] * out[1];
            s00 += out[0] * out[0];
            s11 += out[1] * out[1];
        }
        let corr = s01 / (s00 * s11).sqrt();
        let expected = kernel.eval(locs[0], locs[1]);
        assert!((corr - expected).abs() < 0.08, "{corr} vs {expected}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let kernel = GaussianKernel::new(1.0);
        let locs = probe_locations();
        assert!(matches!(
            GridPcaSampler::new(&kernel, Rect::unit_die(), 0, 1, &locs),
            Err(SstaError::InvalidConfig { name: "grid", .. })
        ));
        assert!(matches!(
            GridPcaSampler::new(&kernel, Rect::unit_die(), 2, 5, &locs),
            Err(SstaError::InvalidConfig { name: "rank", .. })
        ));
        assert!(matches!(
            GridPcaSampler::new(&kernel, Rect::unit_die(), 2, 0, &locs),
            Err(SstaError::InvalidConfig { name: "rank", .. })
        ));
    }

    #[test]
    fn full_rank_grid_matches_kernel_at_centers_exactly() {
        // With rank = cells, PCA is exact at cell centers: the model's
        // only remaining error is the discretisation itself.
        let kernel = GaussianKernel::new(2.0);
        // Put probes exactly at two cell centers of a 4x4 grid.
        let die = Rect::unit_die();
        let a = die.lerp(0.125, 0.125);
        let b = die.lerp(0.625, 0.375);
        let s = GridPcaSampler::new(&kernel, die, 4, 16, &[a, b]).unwrap();
        assert!((s.variance_captured() - 1.0).abs() < 1e-12);
        let mut normals = NormalSource::new(StdRng::seed_from_u64(5));
        let mut out = vec![0.0; 2];
        let (mut s01, mut s00, mut s11) = (0.0, 0.0, 0.0);
        for _ in 0..8000 {
            s.sample_into(&mut normals, &mut out);
            s01 += out[0] * out[1];
            s00 += out[0] * out[0];
            s11 += out[1] * out[1];
        }
        let corr = s01 / (s00 * s11).sqrt();
        let expected = kernel.eval(a, b);
        assert!((corr - expected).abs() < 0.05, "{corr} vs {expected}");
    }
}
