//! Hierarchical SSTA: extract, cache and compose per-block timing
//! models over the shared KLE ξ basis.
//!
//! The flat canonical pass ([`crate::canonical`]) re-propagates the
//! whole circuit on every query. This module exploits the paper's
//! central property — every gate's statistical delay lives in one
//! *shared* low-rank ξ basis — to make timing compositional:
//!
//! 1. **Extract** ([`extract_blocks`]): for each die-region block of a
//!    [`Partition`], run the canonical recurrence restricted to the
//!    block, propagating *term sets* instead of single forms. Each term
//!    is a [`CanonicalForm`] tagged with an optional *origin* — the
//!    boundary (cut) input it is measured from. Intra-block nodes are
//!    eliminated; only boundary-output arcs survive, compressed into a
//!    [`BlockTimingModel`]. Because all blocks share the ξ basis, the
//!    models compose without losing cross-block correlation.
//! 2. **Cache**: a block model is keyed by
//!    [`ArtifactKey::block`]`(region_hash, spectrum)` where
//!    [`region_hash`] folds the block's netlist content hash with its
//!    gate-parameter bits and the basis rank. Editing one gate re-keys
//!    exactly one block; every other block's model is reused verbatim.
//! 3. **Compose** ([`compose`]): stitch the models in global topological
//!    order, substituting each term's origin arrival (an exact canonical
//!    add) and folding parallel terms with `clark_max` at cut nodes.
//!
//! Exactness contract (locked down in `tests/hier_differential.rs`): a
//! boundary node whose fan-in cone never leaves its block reproduces the
//! flat arrival **bitwise** (the extraction replays the exact flat op
//! sequence on a single origin-free term). Nodes downstream of a cut
//! see two bounded approximations — same-origin terms merged with
//! `max(b+x, b+y) ≈ b + clark_max(x, y)`, and origin substitution
//! reordering float ops — so the composed worst σ deviates from flat
//! only at boundary maxes, by a small bounded amount.

use std::collections::HashMap;
use std::sync::Arc;

use crate::canonical::{xi_delay_sens, CanonicalForm};
use crate::{GateFieldSampler, KleFieldSampler, SstaError};
use klest_circuit::{NodeId, Partition};
use klest_core::pipeline::{ArtifactCache, ArtifactKey, BlockArc, BlockTerm, BlockTimingModel};
use klest_runtime::{CancelToken, Cancelled, ShardStatus, Supervisor};
use klest_sta::{IncrementalTimer, ParamVector, Timer};

/// One in-flight term during extraction: a canonical form measured from
/// `origin` (a cut input of the block, `None` = measured from absolute
/// time zero, i.e. the cone never left the block).
#[derive(Debug, Clone)]
struct Term {
    origin: Option<NodeId>,
    form: CanonicalForm,
}

/// Counters from one extraction pass (engine construction or a
/// single-block re-extract after an edit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierStats {
    /// Total blocks in the partition.
    pub blocks: usize,
    /// Models served from the artifact cache.
    pub cache_hits: usize,
    /// Models extracted this pass.
    pub extracted: usize,
    /// Faulted parallel shards recomputed serially.
    pub recovered_serially: usize,
}

/// The composed hierarchical timing picture: canonical arrivals at every
/// boundary (cut-output) and primary-output node, plus the worst form.
#[derive(Debug, Clone)]
pub struct HierReport {
    resolved: HashMap<u32, CanonicalForm>,
    worst: CanonicalForm,
}

impl HierReport {
    /// Canonical arrival at node `id`, if `id` is a boundary or primary
    /// output (intra-block nodes are eliminated during extraction).
    pub fn arrival(&self, id: NodeId) -> Option<&CanonicalForm> {
        self.resolved.get(&(id.index() as u32))
    }

    /// Number of nodes with a composed arrival.
    pub fn resolved_count(&self) -> usize {
        self.resolved.len()
    }

    /// The composed worst-delay form (Clark-max over primary outputs).
    pub fn worst(&self) -> &CanonicalForm {
        &self.worst
    }
}

/// The cache key component identifying block `b`'s timing model:
/// the partition's netlist content hash folded with the block's
/// gate-parameter bits and the ξ-basis rank. Changing any parameter of
/// any gate *in* the block changes the hash; edits elsewhere do not.
pub fn region_hash(partition: &Partition, b: usize, params: &[ParamVector], rank: usize) -> u64 {
    let words = partition
        .nodes(b)
        .iter()
        .flat_map(|id| params[id.index()].0.into_iter().map(f64::to_bits))
        .chain(std::iter::once(rank as u64));
    partition.fold_params(b, words)
}

/// Extracts block `b`'s timing model: the canonical recurrence restricted
/// to the block's nodes, with cut inputs entering as origin-tagged zero
/// forms. Returns boundary-output arcs only.
fn extract_block(
    timer: &Timer,
    kle: &KleFieldSampler,
    partition: &Partition,
    b: usize,
    params: &[ParamVector],
    nominal_slews: &[f64],
    token: &CancelToken,
) -> Result<BlockTimingModel, Cancelled> {
    token.checkpoint("hier/extract")?;
    let dim = 4 * kle.rank();
    let mut terms: HashMap<u32, Vec<Term>> = HashMap::new();
    for &id in partition.nodes(b) {
        let node_terms = match xi_delay_sens(timer, kle, id) {
            None => {
                // Primary input: starts the clock, exactly as in the
                // flat pass.
                vec![Term {
                    origin: None,
                    form: CanonicalForm::constant(0.0, dim),
                }]
            }
            Some(delay_sens) => {
                let dev = CanonicalForm {
                    mean: 0.0,
                    sens: delay_sens,
                    indep: 0.0,
                };
                let mut acc: Vec<Term> = Vec::new();
                for &f in timer.fanins_of(id) {
                    let edge = timer.edge_delay(f, id, nominal_slews, params);
                    let external = [Term {
                        origin: Some(f),
                        form: CanonicalForm::constant(0.0, dim),
                    }];
                    let fanin_terms: &[Term] = if partition.block_of(f) == b {
                        terms
                            .get(&(f.index() as u32))
                            .expect("node ids are topological: fanin precedes fanout")
                    } else {
                        &external
                    };
                    for t in fanin_terms {
                        let mut cand = t.form.clone();
                        cand.shift(edge);
                        cand.add(&dev);
                        // Same-origin terms fold with clark_max — the
                        // bounded approximation max(b+x, b+y) ≈
                        // b + clark_max(x, y). Distinct origins stay
                        // separate, so a node carries at most
                        // |cut_inputs| + 1 terms.
                        match acc.iter_mut().find(|a| a.origin == t.origin) {
                            Some(existing) => {
                                existing.form = CanonicalForm::clark_max(&existing.form, &cand);
                            }
                            None => acc.push(Term {
                                origin: t.origin,
                                form: cand,
                            }),
                        }
                    }
                }
                if acc.is_empty() {
                    vec![Term {
                        origin: None,
                        form: CanonicalForm::constant(0.0, dim),
                    }]
                } else {
                    acc
                }
            }
        };
        terms.insert(id.index() as u32, node_terms);
    }

    // Surviving arcs: cut outputs plus primary circuit outputs living in
    // this block, ascending node order. Everything else is eliminated.
    let mut boundary: Vec<NodeId> = partition.cut_outputs(b).to_vec();
    for &o in timer.outputs() {
        if partition.block_of(o) == b && !boundary.contains(&o) {
            boundary.push(o);
        }
    }
    boundary.sort_by_key(|id| id.index());
    let outputs = boundary
        .iter()
        .map(|id| {
            let node_terms = terms
                .get(&(id.index() as u32))
                .expect("boundary nodes are block members");
            BlockArc {
                node: id.index() as u32,
                terms: node_terms
                    .iter()
                    .map(|t| BlockTerm {
                        origin: t.origin.map(|o| o.index() as u32),
                        mean: t.form.mean,
                        sens: t.form.sens.clone(),
                        indep: t.form.indep,
                    })
                    .collect(),
            }
        })
        .collect();
    Ok(BlockTimingModel { dim, outputs })
}

/// Extracts (or cache-loads) every block's timing model.
///
/// Parallel shards run under a [`Supervisor`] — one shard per missing
/// block, results merged in block order, so the output is
/// bitwise-deterministic for any worker count or interleaving. Shards
/// poll the token at block granularity; a faulted shard is recomputed
/// serially rather than failing the pass. With a cache, warm blocks are
/// served before any extraction runs and fresh models are stored back
/// under their [`region_hash`]-derived key.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] on node-count/length mismatches,
/// [`SstaError::Cancelled`] if the token trips.
pub fn extract_blocks(
    timer: &Timer,
    kle: &KleFieldSampler,
    partition: &Partition,
    params: &[ParamVector],
    cache: Option<(&ArtifactCache, &ArtifactKey)>,
    token: &CancelToken,
) -> Result<(Vec<Arc<BlockTimingModel>>, HierStats), SstaError> {
    let n = timer.node_count();
    if kle.node_count() != n {
        return Err(SstaError::InvalidConfig {
            name: "sampler.node_count",
            value: format!("{} (timer has {n})", kle.node_count()),
        });
    }
    if params.len() != n {
        return Err(SstaError::InvalidConfig {
            name: "params.len",
            value: format!("{} (timer has {n})", params.len()),
        });
    }
    let covered: usize = (0..partition.block_count())
        .map(|b| partition.nodes(b).len())
        .sum();
    if covered != n {
        return Err(SstaError::InvalidConfig {
            name: "partition.node_count",
            value: format!("{covered} (timer has {n})"),
        });
    }
    let nominal = timer.analyze(&vec![ParamVector::ZERO; n]);
    extract_blocks_inner(
        timer,
        kle,
        partition,
        params,
        nominal.slews(),
        cache,
        token,
    )
}

fn extract_blocks_inner(
    timer: &Timer,
    kle: &KleFieldSampler,
    partition: &Partition,
    params: &[ParamVector],
    nominal_slews: &[f64],
    cache: Option<(&ArtifactCache, &ArtifactKey)>,
    token: &CancelToken,
) -> Result<(Vec<Arc<BlockTimingModel>>, HierStats), SstaError> {
    let _span = klest_obs::span("hier/extract");
    let nblocks = partition.block_count();
    let mut stats = HierStats {
        blocks: nblocks,
        ..HierStats::default()
    };
    let mut models: Vec<Option<Arc<BlockTimingModel>>> = vec![None; nblocks];
    let mut keys: Vec<Option<ArtifactKey>> = vec![None; nblocks];
    if let Some((cache, spectrum)) = cache {
        for b in 0..nblocks {
            let key =
                ArtifactKey::block(region_hash(partition, b, params, kle.rank()), spectrum);
            if let Some(hit) = cache.lookup_block(&key) {
                models[b] = Some(hit);
                stats.cache_hits += 1;
            }
            keys[b] = Some(key);
        }
    }
    let missing: Vec<usize> = (0..nblocks).filter(|&b| models[b].is_none()).collect();
    if !missing.is_empty() {
        let run = Supervisor::new(token.clone()).run(missing.len(), |shard, tok| {
            extract_block(timer, kle, partition, missing[shard], params, nominal_slews, tok)
        });
        for (shard, (result, status)) in run
            .results
            .into_iter()
            .zip(run.status)
            .enumerate()
        {
            let b = missing[shard];
            let model = match result {
                Some(Ok(model)) => model,
                Some(Err(cancelled)) => return Err(SstaError::Cancelled(cancelled)),
                None => {
                    // Shard faulted through its retry budget: recompute
                    // serially — extraction is deterministic, so the
                    // inline pass yields the identical model.
                    debug_assert!(matches!(status, ShardStatus::Faulted { .. }));
                    stats.recovered_serially += 1;
                    extract_block(timer, kle, partition, b, params, nominal_slews, token)?
                }
            };
            let model = Arc::new(model);
            if let (Some((cache, _)), Some(key)) = (cache, &keys[b]) {
                cache.store_block(key, Arc::clone(&model));
            }
            models[b] = Some(model);
            stats.extracted += 1;
        }
    }
    let models = models
        .into_iter()
        .map(|m| m.expect("every block resolved via cache or extraction"))
        .collect();
    Ok((models, stats))
}

/// Stitches per-block models into circuit-level arrivals.
///
/// Boundary nodes are processed in ascending node-id (global
/// topological) order — the block-level dependency graph may be cyclic,
/// the node-level one never is. Each term resolves to its origin's
/// composed arrival plus the term's form (an exact canonical add over
/// the shared ξ basis, so cross-block correlation is preserved);
/// parallel terms fold with `clark_max` in stored order. The worst form
/// is the Clark-max over primary outputs, in the timer's output order —
/// identical fold order to the flat pass.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] if the models disagree on dimension or
/// reference an origin/output no model provides (mixed-partition
/// models).
pub fn compose(
    models: &[Arc<BlockTimingModel>],
    timer: &Timer,
) -> Result<HierReport, SstaError> {
    let _span = klest_obs::span("hier/compose");
    let dim = models.first().map_or(0, |m| m.dim);
    if models.iter().any(|m| m.dim != dim) {
        return Err(SstaError::InvalidConfig {
            name: "models.dim",
            value: "blocks extracted on different ξ bases".into(),
        });
    }
    let mut arcs: Vec<&BlockArc> = models.iter().flat_map(|m| m.outputs.iter()).collect();
    arcs.sort_by_key(|a| a.node);
    let mut resolved: HashMap<u32, CanonicalForm> = HashMap::with_capacity(arcs.len());
    for arc in arcs {
        let mut acc: Option<CanonicalForm> = None;
        for t in &arc.terms {
            let form = CanonicalForm {
                mean: t.mean,
                sens: t.sens.clone(),
                indep: t.indep,
            };
            let value = match t.origin {
                None => form,
                Some(o) => {
                    let Some(base) = resolved.get(&o) else {
                        return Err(SstaError::InvalidConfig {
                            name: "models.origin",
                            value: format!("term at node {} references unresolved node {o}", arc.node),
                        });
                    };
                    let mut v = base.clone();
                    v.add(&form);
                    v
                }
            };
            acc = Some(match acc {
                None => value,
                Some(a) => CanonicalForm::clark_max(&a, &value),
            });
        }
        resolved.insert(
            arc.node,
            acc.unwrap_or_else(|| CanonicalForm::constant(0.0, dim)),
        );
    }
    let mut worst: Option<CanonicalForm> = None;
    for &o in timer.outputs() {
        let Some(a) = resolved.get(&(o.index() as u32)) else {
            return Err(SstaError::InvalidConfig {
                name: "models.outputs",
                value: format!("primary output {} missing from every model", o.index()),
            });
        };
        worst = Some(match worst {
            None => a.clone(),
            Some(w) => CanonicalForm::clark_max(&w, a),
        });
    }
    let worst = worst.unwrap_or_else(|| CanonicalForm::constant(0.0, dim));
    Ok(HierReport { resolved, worst })
}

/// The hierarchical timing engine: cached block models in front, the
/// exact scalar [`IncrementalTimer`] as the intra-block engine behind
/// them.
///
/// Construction extracts (or cache-loads) every block and composes the
/// circuit-level report. [`edit_gate`](Self::edit_gate) applies a
/// one-gate parameter change: the scalar engine re-times the fan-out
/// cone incrementally, and because [`region_hash`] folds parameter bits
/// into the cache key, exactly one block's model is invalidated and
/// re-extracted — every other block is a cache hit.
pub struct HierEngine<'a> {
    timer: &'a Timer,
    kle: &'a KleFieldSampler,
    partition: &'a Partition,
    cache: Option<(&'a ArtifactCache, ArtifactKey)>,
    params: Vec<ParamVector>,
    nominal_slews: Vec<f64>,
    models: Vec<Arc<BlockTimingModel>>,
    report: HierReport,
    scalar: IncrementalTimer<'a>,
    last_stats: HierStats,
}

impl std::fmt::Debug for HierEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ArtifactCache is deliberately opaque; summarize the rest.
        f.debug_struct("HierEngine")
            .field("blocks", &self.models.len())
            .field("cached", &self.cache.is_some())
            .field("worst_mean", &self.report.worst().mean)
            .field("last_stats", &self.last_stats)
            .finish_non_exhaustive()
    }
}

impl<'a> HierEngine<'a> {
    /// Builds the engine: full block extraction (cache-accelerated when
    /// `cache` is given) plus the initial composition.
    ///
    /// # Errors
    ///
    /// [`SstaError::InvalidConfig`] on node-count/length mismatches,
    /// [`SstaError::Cancelled`] if the token trips mid-extraction.
    pub fn new(
        timer: &'a Timer,
        kle: &'a KleFieldSampler,
        partition: &'a Partition,
        params: Vec<ParamVector>,
        cache: Option<(&'a ArtifactCache, ArtifactKey)>,
        token: &CancelToken,
    ) -> Result<Self, SstaError> {
        let scalar = IncrementalTimer::new(timer, params.clone()).map_err(|e| {
            SstaError::InvalidConfig {
                name: "params.len",
                value: e.to_string(),
            }
        })?;
        let n = timer.node_count();
        let nominal = timer.analyze(&vec![ParamVector::ZERO; n]);
        let nominal_slews = nominal.slews().to_vec();
        let (models, last_stats) = extract_blocks(
            timer,
            kle,
            partition,
            &params,
            cache.as_ref().map(|(c, k)| (*c, k)),
            token,
        )?;
        let report = compose(&models, timer)?;
        Ok(HierEngine {
            timer,
            kle,
            partition,
            cache,
            params,
            nominal_slews,
            models,
            report,
            scalar,
            last_stats,
        })
    }

    /// The current composed report.
    pub fn report(&self) -> &HierReport {
        &self.report
    }

    /// The composed worst-delay form.
    pub fn worst(&self) -> &CanonicalForm {
        self.report.worst()
    }

    /// The exact scalar worst delay at the current parameters (from the
    /// intra-block incremental engine).
    pub fn scalar_worst(&self) -> f64 {
        self.scalar.worst_delay()
    }

    /// Current per-node parameters.
    pub fn params(&self) -> &[ParamVector] {
        &self.params
    }

    /// Counters from the most recent extraction pass (construction or
    /// the last [`edit_gate`](Self::edit_gate)).
    pub fn last_stats(&self) -> HierStats {
        self.last_stats
    }

    /// Applies a one-gate parameter edit and re-times.
    ///
    /// The scalar fan-out cone is re-propagated incrementally; the
    /// edited gate's block is re-keyed (its [`region_hash`] changes) and
    /// re-extracted or cache-loaded, the other blocks' models are reused
    /// as-is, and the composition is re-run. Returns the new composed
    /// worst form.
    ///
    /// # Errors
    ///
    /// [`SstaError::InvalidConfig`] if `id` is out of range (state
    /// untouched), [`SstaError::Cancelled`] if the token trips.
    pub fn edit_gate(
        &mut self,
        id: NodeId,
        p: ParamVector,
        token: &CancelToken,
    ) -> Result<&CanonicalForm, SstaError> {
        self.scalar
            .update(&[(id, p)])
            .map_err(|e| SstaError::InvalidConfig {
                name: "edit.node",
                value: e.to_string(),
            })?;
        self.params[id.index()] = p;
        let b = self.partition.block_of(id);
        let mut stats = HierStats {
            blocks: self.partition.block_count(),
            ..HierStats::default()
        };
        let model = match &self.cache {
            Some((cache, spectrum)) => {
                let key = ArtifactKey::block(
                    region_hash(self.partition, b, &self.params, self.kle.rank()),
                    spectrum,
                );
                match cache.lookup_block(&key) {
                    Some(hit) => {
                        stats.cache_hits = 1;
                        hit
                    }
                    None => {
                        let model = Arc::new(extract_block(
                            self.timer,
                            self.kle,
                            self.partition,
                            b,
                            &self.params,
                            &self.nominal_slews,
                            token,
                        )?);
                        cache.store_block(&key, Arc::clone(&model));
                        stats.extracted = 1;
                        model
                    }
                }
            }
            None => {
                stats.extracted = 1;
                Arc::new(extract_block(
                    self.timer,
                    self.kle,
                    self.partition,
                    b,
                    &self.params,
                    &self.nominal_slews,
                    token,
                )?)
            }
        };
        self.models[b] = model;
        self.report = compose(&self.models, self.timer)?;
        self.last_stats = stats;
        Ok(self.report.worst())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{analyze_canonical, analyze_canonical_with};
    use crate::experiments::{CircuitSetup, KleContext};
    use klest_circuit::{generate, GeneratorConfig};
    use klest_kernels::GaussianKernel;

    fn setup(gates: usize, seed: u64) -> (CircuitSetup, KleContext, klest_circuit::Circuit) {
        let circuit = generate("hier", GeneratorConfig::combinational(gates, seed)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        (setup, ctx, circuit)
    }

    #[test]
    fn single_block_engine_is_bitwise_flat() {
        let (setup, ctx, circuit) = setup(120, 7);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).unwrap();
        let partition = Partition::build(&circuit, 1);
        let flat = analyze_canonical(&setup.timer, &sampler).unwrap();
        let token = CancelToken::unlimited();
        let engine = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count()],
            None,
            &token,
        )
        .unwrap();
        // One block, no cuts: the extraction replays the flat op
        // sequence exactly, so composition is bitwise-equal.
        assert_eq!(engine.worst(), flat.worst());
        for &o in setup.timer.outputs() {
            assert_eq!(engine.report().arrival(o).unwrap(), flat.arrival(o));
        }
        assert_eq!(engine.last_stats().extracted, 1);
        assert_eq!(engine.last_stats().blocks, 1);
    }

    #[test]
    fn multi_block_engine_tracks_flat_closely() {
        let (setup, ctx, circuit) = setup(300, 11);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).unwrap();
        let partition = Partition::build(&circuit, 6);
        assert!(partition.cut_node_count() > 0, "partition must cut something");
        let flat = analyze_canonical(&setup.timer, &sampler).unwrap();
        let token = CancelToken::unlimited();
        let engine = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count()],
            None,
            &token,
        )
        .unwrap();
        let (fw, hw) = (flat.worst(), engine.worst());
        assert!(
            (fw.mean - hw.mean).abs() <= 0.02 * fw.mean.abs().max(1e-9),
            "mean drifted: flat {} hier {}",
            fw.mean,
            hw.mean
        );
        assert!(
            (fw.sigma() - hw.sigma()).abs() <= 0.05 * fw.sigma().max(1e-12),
            "sigma drifted: flat {} hier {}",
            fw.sigma(),
            hw.sigma()
        );
    }

    #[test]
    fn edit_rekeys_exactly_one_block() {
        let (setup, ctx, circuit) = setup(200, 3);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).unwrap();
        let partition = Partition::build(&circuit, 4);
        let cache = ArtifactCache::new();
        let spectrum = test_spectrum_key();
        let token = CancelToken::unlimited();
        let mut engine = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count()],
            Some((&cache, spectrum.clone())),
            &token,
        )
        .unwrap();
        let cold = cache.snapshot();
        assert_eq!(cold.block_misses, 4, "{cold:?}");
        // A warm rebuild hits every block.
        let rebuilt = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count()],
            Some((&cache, spectrum.clone())),
            &token,
        )
        .unwrap();
        assert_eq!(rebuilt.last_stats().cache_hits, 4);
        assert_eq!(rebuilt.worst(), engine.worst());
        // One gate edit invalidates exactly one block artifact.
        let victim = NodeId((circuit.input_count() + 3) as u32);
        let before = cache.snapshot();
        engine
            .edit_gate(victim, ParamVector::new([1.0, -0.5, 0.7, 0.2]), &token)
            .unwrap();
        let after = cache.snapshot();
        assert_eq!(after.block_misses - before.block_misses, 1, "one re-key");
        assert_eq!(engine.last_stats().extracted, 1);
        // The edit matches the parameterized flat reference within the
        // boundary-max tolerance; the scalar engine stays exact.
        let mut params = vec![ParamVector::ZERO; circuit.node_count()];
        params[victim.index()] = ParamVector::new([1.0, -0.5, 0.7, 0.2]);
        let flat = analyze_canonical_with(&setup.timer, &sampler, &params).unwrap();
        let (fw, hw) = (flat.worst(), engine.worst());
        assert!((fw.mean - hw.mean).abs() <= 0.02 * fw.mean.abs().max(1e-9));
        assert_eq!(engine.scalar_worst(), setup.timer.analyze(&params).worst_delay());
        // Editing back to nominal re-uses the original block artifact.
        let before = cache.snapshot();
        engine.edit_gate(victim, ParamVector::ZERO, &token).unwrap();
        let after = cache.snapshot();
        assert_eq!(after.block_hits - before.block_hits, 1, "revert is a hit");
        assert_eq!(engine.worst(), rebuilt.worst());
    }

    #[test]
    fn out_of_range_edit_is_typed_and_state_untouched() {
        let (setup, ctx, circuit) = setup(80, 5);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).unwrap();
        let partition = Partition::build(&circuit, 3);
        let token = CancelToken::unlimited();
        let mut engine = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count()],
            None,
            &token,
        )
        .unwrap();
        let before = engine.worst().clone();
        let bogus = NodeId(circuit.node_count() as u32);
        let err = engine
            .edit_gate(bogus, ParamVector::new([1.0; 4]), &token)
            .expect_err("out-of-range edit must be rejected");
        assert!(matches!(err, SstaError::InvalidConfig { .. }));
        assert_eq!(engine.worst(), &before);
    }

    #[test]
    fn cancelled_extraction_surfaces_typed() {
        let (setup, ctx, circuit) = setup(100, 2);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).unwrap();
        let partition = Partition::build(&circuit, 4);
        let token = CancelToken::unlimited();
        token.cancel();
        let err = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count()],
            None,
            &token,
        )
        .expect_err("pre-tripped token must cancel extraction");
        assert!(matches!(err, SstaError::Cancelled(_)));
    }

    #[test]
    fn length_mismatches_are_typed() {
        let (setup, ctx, circuit) = setup(60, 1);
        let sampler = KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).unwrap();
        let partition = Partition::build(&circuit, 2);
        let token = CancelToken::unlimited();
        let err = HierEngine::new(
            &setup.timer,
            &sampler,
            &partition,
            vec![ParamVector::ZERO; circuit.node_count() - 1],
            None,
            &token,
        )
        .expect_err("short params must be rejected");
        assert!(matches!(err, SstaError::InvalidConfig { .. }));
        // Partition over a different circuit: node coverage mismatch.
        let other = generate("other", GeneratorConfig::combinational(30, 9)).unwrap();
        let foreign = Partition::build(&other, 2);
        let err = extract_blocks(
            &setup.timer,
            &sampler,
            &foreign,
            &vec![ParamVector::ZERO; circuit.node_count()],
            None,
            &token,
        )
        .expect_err("foreign partition must be rejected");
        assert!(matches!(err, SstaError::InvalidConfig { .. }));
    }

    fn test_spectrum_key() -> ArtifactKey {
        use klest_core::{EigenSolver, QuadratureRule};
        use klest_geometry::Rect;
        use klest_kernels::CovarianceKernel;
        let mesh = ArtifactKey::mesh(Rect::unit_die(), 0.02, 25.0);
        let galerkin = ArtifactKey::galerkin(
            &mesh,
            &GaussianKernel::new(2.0).cache_key().unwrap(),
            QuadratureRule::Centroid,
        );
        ArtifactKey::spectrum(&galerkin, EigenSolver::Full, 200)
    }
}
