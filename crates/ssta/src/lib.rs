//! # klest-ssta
//!
//! Monte Carlo statistical static timing analysis — the experimental
//! vehicle of the paper's Sec. 5. Two sample generators feed the same
//! [`klest_sta::Timer`]:
//!
//! - **Algorithm 1** ([`CholeskySampler`]): the reference grid-free MC —
//!   build the `N_g x N_g` covariance matrix from the kernel at the gate
//!   locations, Cholesky-factor it once, then correlate i.i.d. normals,
//! - **Algorithm 2** ([`KleFieldSampler`]): the paper's method — draw
//!   `r ≈ 25` uncorrelated normals, reconstruct the field over the mesh
//!   via `D_λ ξ` (eq. 28), and gather per-gate values through the
//!   triangle index.
//!
//! [`run_monte_carlo`] drives either sampler through N timing runs
//! (optionally across threads, optionally with antithetic variates) and
//! returns worst-delay samples, per-output statistics and statistical
//! criticality; [`experiments`] packages the paper's Table 1 and Fig. 6
//! comparisons. [`run_monte_carlo_supervised`] is the deadline-aware
//! variant: workers run under a fault-isolating supervisor, poll a
//! [`klest_runtime::CancelToken`] between samples, and a cancelled or
//! partially-faulted run salvages every completed sample with the CI
//! widening recorded in [`SalvageStats`].
//!
//! Beyond the paper's Monte Carlo: [`GridPcaSampler`] is the Sec. 2.1
//! grid baseline, [`ProcessModel`] binds a distinct kernel per
//! statistical parameter, [`canonical`] propagates arrival times
//! symbolically over the KLE variables (one pass instead of N), and
//! [`pce`] fits a Hermite polynomial-chaos surrogate of the delay.
//! [`validation`] empirically checks any sampler against its kernel.
//!
//! ```no_run
//! use klest_ssta::{experiments::CircuitSetup, CholeskySampler, McConfig, run_monte_carlo};
//! use klest_circuit::{benchmark, BenchmarkId};
//! use klest_kernels::GaussianKernel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = benchmark(BenchmarkId::C880)?;
//! let setup = CircuitSetup::prepare(&circuit);
//! let kernel = GaussianKernel::with_correlation_distance(1.0);
//! let sampler = CholeskySampler::new(&kernel, setup.locations())?;
//! let run = run_monte_carlo(&setup.timer, &sampler, &McConfig::new(1000, 7))?;
//! println!("mean worst delay = {}", run.worst_delay_stats().mean);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod canonical;
mod degradation;
mod error;
pub mod experiments;
pub mod faultinject;
mod grid_model;
pub mod hier;
mod mc;
mod normal;
pub mod pce;
mod process;
mod samplers;
mod stats;
pub mod validation;

pub use degradation::{DegradationEvent, DegradationReport};
pub use error::SstaError;
pub use grid_model::GridPcaSampler;
pub use mc::{
    run_monte_carlo, run_monte_carlo_checkpointed, run_monte_carlo_per_param,
    run_monte_carlo_supervised, run_monte_carlo_supervised_per_param,
    run_monte_carlo_supervised_with_faults, McCheckpoint, McConfig, McRun, SalvageStats, N_PARAMS,
};
pub use normal::NormalSource;
pub use process::ProcessModel;
pub use samplers::{CholeskySampler, GateFieldSampler, KleFieldSampler};
pub use stats::{quantile, OutputStats, SummaryStats};
