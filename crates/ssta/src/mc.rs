//! The Monte Carlo SSTA loop shared by both sample generators.

use crate::faultinject::{FaultPlan, Stage};
use crate::{
    DegradationEvent, DegradationReport, GateFieldSampler, NormalSource, OutputStats, SstaError,
    SummaryStats,
};
use klest_runtime::{CancelToken, Cancelled, Supervisor};
use klest_sta::{ParamVector, Timer};
use klest_rng::{SeedableRng, StdRng};
use std::time::{Duration, Instant};

/// Number of independent statistical parameters per gate
/// (`L`, `W`, `Vt`, `tox`).
pub const N_PARAMS: usize = 4;

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Number of Monte Carlo samples `N`.
    pub samples: usize,
    /// Base RNG seed; worker `t` derives its own stream from it.
    pub seed: u64,
    /// Worker threads (1 = fully sequential and bitwise deterministic
    /// regardless of machine).
    pub threads: usize,
    /// Antithetic variates: every second sample reuses the previous
    /// draw negated (`ξ → −ξ`). The pairing is exact because the fields
    /// are linear in ξ and the normals are symmetric; it cancels the
    /// odd-order error terms of mean estimates at zero extra sampling
    /// cost (classic MC variance reduction).
    pub antithetic: bool,
}

impl McConfig {
    /// Single-threaded configuration.
    pub fn new(samples: usize, seed: u64) -> Self {
        McConfig {
            samples,
            seed,
            threads: 1,
            antithetic: false,
        }
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables antithetic variates.
    pub fn with_antithetic(mut self) -> Self {
        self.antithetic = true;
        self
    }
}

/// What a supervised Monte Carlo run managed to keep: how many of the
/// planned samples completed before cancellation / faults, how hard the
/// supervisor had to work, and the resulting statistical penalty.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageStats {
    /// Samples originally requested.
    pub planned: usize,
    /// Samples actually salvaged into the run.
    pub completed: usize,
    /// Shards that needed at least one retry.
    pub shards_retried: usize,
    /// Shards lost entirely (every attempt panicked).
    pub worker_faults: usize,
    /// Factor by which the mean's confidence interval widens relative to
    /// the planned run: `√(planned/completed)` (1 for a full run).
    pub ci_widening: f64,
}

impl SalvageStats {
    /// Whether the run was truncated (fewer samples than planned).
    pub fn truncated(&self) -> bool {
        self.completed < self.planned
    }
}

/// Result of one Monte Carlo SSTA run.
#[derive(Debug, Clone)]
pub struct McRun {
    worst_delays: Vec<f64>,
    output_stats: OutputStats,
    /// Per-output count of samples in which that output was the worst.
    critical_counts: Vec<usize>,
    random_dims: usize,
    wall: Duration,
    /// Salvage accounting — `Some` only for supervised runs.
    salvage: Option<SalvageStats>,
}

impl McRun {
    /// Worst-delay sample per MC iteration.
    pub fn worst_delays(&self) -> &[f64] {
        &self.worst_delays
    }

    /// Summary of the worst-delay distribution (the Table 1 statistics).
    pub fn worst_delay_stats(&self) -> SummaryStats {
        SummaryStats::of(&self.worst_delays)
    }

    /// Per-primary-output arrival statistics (the Fig. 6 metric).
    pub fn output_stats(&self) -> &OutputStats {
        &self.output_stats
    }

    /// Random variables consumed per parameter per sample (`N_g` for
    /// Algorithm 1, `r` for Algorithm 2).
    pub fn random_dims(&self) -> usize {
        self.random_dims
    }

    /// Wall-clock duration of the sampling + timing loop.
    pub fn wall_time(&self) -> Duration {
        self.wall
    }

    /// Salvage statistics — `Some` for runs produced by
    /// [`run_monte_carlo_supervised`] and friends, `None` for plain runs.
    pub fn salvage(&self) -> Option<&SalvageStats> {
        self.salvage.as_ref()
    }

    /// Statistical criticality: the probability (over process outcomes)
    /// that each primary output is the circuit's worst — the quantity
    /// that makes "the" critical path a distribution under variation.
    /// Indexed like `Timer::outputs()`; sums to 1.
    pub fn criticality(&self) -> Vec<f64> {
        let total: usize = self.critical_counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.critical_counts.len()];
        }
        self.critical_counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Runs `N` Monte Carlo STA iterations: per sample, draws [`N_PARAMS`]
/// independent correlated fields from `sampler` (the paper's tests use
/// one kernel for all four parameters), assembles per-node parameter
/// vectors and runs the timer.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] for a zero sample count or a sampler/timer
/// node-count mismatch.
pub fn run_monte_carlo<S: GateFieldSampler>(
    timer: &Timer,
    sampler: &S,
    config: &McConfig,
) -> Result<McRun, SstaError> {
    let samplers: [&dyn GateFieldSampler; N_PARAMS] = [&sampler; N_PARAMS].map(|s| s as _);
    run_monte_carlo_per_param(timer, &samplers, config)
}

/// The general form of Algorithms 1/2: a distinct field generator per
/// statistical parameter (`for all stat. parameters p_j ... K_j` in the
/// paper's pseudocode), in `[L, W, Vt, tox]` order. Generators may mix
/// kinds (e.g. KLE for the long-range parameters, grid-PCA for a
/// legacy one).
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] for a zero sample count or any
/// sampler/timer node-count mismatch.
pub fn run_monte_carlo_per_param(
    timer: &Timer,
    samplers: &[&dyn GateFieldSampler; N_PARAMS],
    config: &McConfig,
) -> Result<McRun, SstaError> {
    if config.samples == 0 {
        return Err(SstaError::InvalidConfig {
            name: "samples",
            value: "0".into(),
        });
    }
    for (i, s) in samplers.iter().enumerate() {
        if s.node_count() != timer.node_count() {
            return Err(SstaError::InvalidConfig {
                name: "sampler.node_count",
                value: format!(
                    "param {i}: {} (timer has {})",
                    s.node_count(),
                    timer.node_count()
                ),
            });
        }
    }
    let started = Instant::now();
    let threads = config.threads.max(1).min(config.samples);
    let n_outputs = timer.outputs().len();

    // Split the sample budget across workers.
    let mut shares = vec![config.samples / threads; threads];
    for s in shares.iter_mut().take(config.samples % threads) {
        *s += 1;
    }

    let antithetic = config.antithetic;
    let observe = klest_obs::enabled();
    let mut results: Vec<WorkerOutput> = Vec::with_capacity(threads);
    if threads == 1 {
        results.push(worker(
            timer,
            samplers,
            config.seed,
            config.samples,
            n_outputs,
            antithetic,
        ));
        if observe {
            klest_obs::histogram_observe(
                "mc.worker_wall_ms",
                started.elapsed().as_secs_f64() * 1e3,
            );
        }
    } else {
        let mut slots: Vec<Option<WorkerOutput>> = (0..threads).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (t, (slot, &share)) in slots.iter_mut().zip(shares.iter()).enumerate() {
                let seed = config.seed.wrapping_add(0x100_0003u64.wrapping_mul(t as u64 + 1));
                scope.spawn(move || {
                    // Spans stay on the coordinating thread (thread-local
                    // stacks start fresh here); workers report through the
                    // thread-safe metrics registry instead.
                    let t0 = observe.then(Instant::now);
                    *slot = Some(worker(timer, samplers, seed, share, n_outputs, antithetic));
                    if let Some(t0) = t0 {
                        klest_obs::histogram_observe(
                            "mc.worker_wall_ms",
                            t0.elapsed().as_secs_f64() * 1e3,
                        );
                    }
                });
            }
        });
        results.extend(slots.into_iter().map(|s| s.expect("worker completed")));
    }

    let mut worst_delays = Vec::with_capacity(config.samples);
    let mut output_stats = OutputStats::new(n_outputs);
    let mut critical_counts = vec![0usize; n_outputs];
    for (w, o, crit) in results {
        worst_delays.extend(w);
        output_stats.merge(&o);
        for (acc, c) in critical_counts.iter_mut().zip(crit) {
            *acc += c;
        }
    }
    let wall = started.elapsed();
    if observe {
        klest_obs::counter_add("mc.samples", config.samples as u64);
        klest_obs::gauge_set("mc.threads", threads as f64);
        let secs = wall.as_secs_f64();
        if secs > 0.0 {
            klest_obs::gauge_set("mc.samples_per_sec", config.samples as f64 / secs);
        }
    }
    Ok(McRun {
        worst_delays,
        output_stats,
        critical_counts,
        random_dims: samplers.iter().map(|s| s.random_dims()).max().unwrap_or(0),
        wall,
        salvage: None,
    })
}

/// Supervised [`run_monte_carlo`]: workers run under a fault-isolating
/// [`Supervisor`], poll `token` between samples (`mc/sample` checkpoints)
/// and return partial results on cancellation. Panicking shards are
/// retried with bounded backoff; shards that exhaust their retries lose
/// only their own samples. The returned run always carries
/// [`SalvageStats`] and records [`DegradationEvent`]s for cancellation,
/// CI widening and every worker fault.
///
/// With a live (never-tripped) token and no faults the samples are
/// bitwise identical to [`run_monte_carlo`]'s.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] as for [`run_monte_carlo`];
/// [`SstaError::Cancelled`] when cancellation struck before *any* sample
/// completed; [`SstaError::WorkerFault`] when every sample was lost to
/// panicking shards.
pub fn run_monte_carlo_supervised<S: GateFieldSampler>(
    timer: &Timer,
    sampler: &S,
    config: &McConfig,
    token: &CancelToken,
    report: &mut DegradationReport,
) -> Result<McRun, SstaError> {
    let samplers: [&dyn GateFieldSampler; N_PARAMS] = [&sampler; N_PARAMS].map(|s| s as _);
    run_monte_carlo_supervised_per_param(timer, &samplers, config, token, None, report)
}

/// [`run_monte_carlo_supervised`] with a [`FaultPlan`] injecting panics /
/// hangs at `mc/sample` sites — the deterministic harness behind the
/// fault-injection suite and the CLI's `--inject-*` flags.
///
/// # Errors
///
/// As for [`run_monte_carlo_supervised`].
pub fn run_monte_carlo_supervised_with_faults<S: GateFieldSampler>(
    timer: &Timer,
    sampler: &S,
    config: &McConfig,
    token: &CancelToken,
    plan: &FaultPlan,
    report: &mut DegradationReport,
) -> Result<McRun, SstaError> {
    let samplers: [&dyn GateFieldSampler; N_PARAMS] = [&sampler; N_PARAMS].map(|s| s as _);
    run_monte_carlo_supervised_per_param(timer, &samplers, config, token, Some(plan), report)
}

/// The general supervised form: distinct generator per parameter, optional
/// fault plan. See [`run_monte_carlo_supervised`] for the contract.
///
/// # Errors
///
/// As for [`run_monte_carlo_supervised`].
pub fn run_monte_carlo_supervised_per_param(
    timer: &Timer,
    samplers: &[&dyn GateFieldSampler; N_PARAMS],
    config: &McConfig,
    token: &CancelToken,
    plan: Option<&FaultPlan>,
    report: &mut DegradationReport,
) -> Result<McRun, SstaError> {
    if config.samples == 0 {
        return Err(SstaError::InvalidConfig {
            name: "samples",
            value: "0".into(),
        });
    }
    for (i, s) in samplers.iter().enumerate() {
        if s.node_count() != timer.node_count() {
            return Err(SstaError::InvalidConfig {
                name: "sampler.node_count",
                value: format!(
                    "param {i}: {} (timer has {})",
                    s.node_count(),
                    timer.node_count()
                ),
            });
        }
    }
    let _span = klest_obs::span("mc/supervised");
    let started = Instant::now();
    let threads = config.threads.max(1).min(config.samples);
    let n_outputs = timer.outputs().len();

    let mut shares = vec![config.samples / threads; threads];
    for s in shares.iter_mut().take(config.samples % threads) {
        *s += 1;
    }

    let antithetic = config.antithetic;
    let shares_ref = &shares;
    let supervisor = Supervisor::new(token.clone());
    let run = supervisor.run(threads, |shard, tok| {
        // The single-shard seed matches the sequential path of
        // `run_monte_carlo`, so a truncated supervised run salvages an
        // exact prefix of the plain run's sample stream.
        let seed = if threads == 1 {
            config.seed
        } else {
            config.seed.wrapping_add(0x100_0003u64.wrapping_mul(shard as u64 + 1))
        };
        supervised_worker(
            timer,
            samplers,
            seed,
            shares_ref[shard],
            n_outputs,
            antithetic,
            tok,
            plan,
            shard,
        )
    });

    // Salvage: keep everything completed shards produced, including the
    // partial output of cancelled stragglers.
    let mut worst_delays = Vec::with_capacity(config.samples);
    let mut output_stats = OutputStats::new(n_outputs);
    let mut critical_counts = vec![0usize; n_outputs];
    let mut first_cancel: Option<Cancelled> = None;
    for ((w, o, crit), cancel) in run.results.iter().flatten() {
        worst_delays.extend_from_slice(w);
        output_stats.merge(o);
        for (acc, c) in critical_counts.iter_mut().zip(crit) {
            *acc += c;
        }
        if first_cancel.is_none() {
            first_cancel.clone_from(cancel);
        }
    }

    let mut shards_retried = 0usize;
    let mut first_fault: Option<SstaError> = None;
    for (shard, status) in run.status.iter().enumerate() {
        match status {
            klest_runtime::ShardStatus::Completed => {}
            klest_runtime::ShardStatus::Recovered { retries } => {
                shards_retried += 1;
                report.record(DegradationEvent::WorkerFault {
                    stage: "mc/sample",
                    shard,
                    attempts: retries + 1,
                    recovered: true,
                });
            }
            klest_runtime::ShardStatus::Faulted { attempts, message } => {
                report.record(DegradationEvent::WorkerFault {
                    stage: "mc/sample",
                    shard,
                    attempts: *attempts,
                    recovered: false,
                });
                if first_fault.is_none() {
                    first_fault = Some(SstaError::WorkerFault {
                        stage: "mc/sample",
                        shard,
                        attempts: *attempts,
                        message: message.clone(),
                    });
                }
            }
        }
    }

    let completed = worst_delays.len();
    let planned = config.samples;
    if completed == 0 {
        // Nothing to salvage: surface the typed cause.
        return Err(match (first_fault, first_cancel) {
            (Some(fault), _) => fault,
            (None, Some(c)) => SstaError::Cancelled(c),
            (None, None) => SstaError::Cancelled(Cancelled {
                stage: "mc/sample",
                completed: 0,
                budget: token.budget(),
            }),
        });
    }

    let ci_widening = if completed < planned {
        (planned as f64 / completed as f64).sqrt()
    } else {
        1.0
    };
    if completed < planned {
        let stage = first_cancel.as_ref().map_or("mc/sample", |c| c.stage);
        report.record(DegradationEvent::Cancelled {
            stage,
            completed,
            planned,
        });
        report.record(DegradationEvent::CiWidened { factor: ci_widening });
    }

    let wall = started.elapsed();
    if klest_obs::enabled() {
        klest_obs::counter_add("mc.samples", completed as u64);
        klest_obs::counter_add("mc.samples_salvaged", completed as u64);
        klest_obs::gauge_set("mc.threads", threads as f64);
        klest_obs::gauge_set("mc.ci_widening", ci_widening);
    }
    Ok(McRun {
        worst_delays,
        output_stats,
        critical_counts,
        random_dims: samplers.iter().map(|s| s.random_dims()).max().unwrap_or(0),
        wall,
        salvage: Some(SalvageStats {
            planned,
            completed,
            shards_retried,
            worker_faults: run.fault_count(),
            ci_widening,
        }),
    })
}

/// Crash-consistent snapshot of a single-threaded Monte Carlo run,
/// captured at a sample-batch boundary by [`run_monte_carlo_checkpointed`].
///
/// The snapshot is *complete*: worst-delay prefix, Welford accumulator
/// internals, criticality counts, the xoshiro RNG state and the normal
/// source's cached polar spare. Resuming from it replays the remaining
/// samples **bitwise identically** to the uninterrupted run — the textual
/// serialization stores exact f64 bit patterns, so a disk round-trip
/// loses nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct McCheckpoint {
    completed: usize,
    worst_delays: Vec<f64>,
    stats_count: usize,
    stats_mean: Vec<f64>,
    stats_m2: Vec<f64>,
    critical_counts: Vec<usize>,
    rng_state: [u64; 4],
    spare: Option<f64>,
}

const MC_CKPT_HEADER: &str = "klest-mc-checkpoint/v1";

fn push_f64_words(out: &mut String, label: &str, values: &[f64]) {
    out.push_str(label);
    for &v in values {
        out.push(' ');
        out.push_str(&format!("{:016x}", v.to_bits()));
    }
    out.push('\n');
}

fn parse_f64_words(line: &str, label: &str) -> Option<Vec<f64>> {
    let rest = line.strip_prefix(label)?;
    let mut values = Vec::new();
    for word in rest.split_whitespace() {
        if word.len() != 16 {
            return None;
        }
        values.push(f64::from_bits(u64::from_str_radix(word, 16).ok()?));
    }
    Some(values)
}

impl McCheckpoint {
    /// Samples completed up to this checkpoint.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Number of tracked primary outputs.
    pub fn outputs(&self) -> usize {
        self.critical_counts.len()
    }

    /// Serializes the checkpoint as text with exact f64 bit patterns.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(MC_CKPT_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "completed {}\noutputs {}\n",
            self.completed,
            self.outputs()
        ));
        out.push_str(&format!(
            "rng {:016x} {:016x} {:016x} {:016x}\n",
            self.rng_state[0], self.rng_state[1], self.rng_state[2], self.rng_state[3]
        ));
        match self.spare {
            Some(v) => out.push_str(&format!("spare {:016x}\n", v.to_bits())),
            None => out.push_str("spare -\n"),
        }
        push_f64_words(&mut out, "worst", &self.worst_delays);
        out.push_str(&format!("stats-count {}\n", self.stats_count));
        push_f64_words(&mut out, "stats-mean", &self.stats_mean);
        push_f64_words(&mut out, "stats-m2", &self.stats_m2);
        out.push_str("critical");
        for &c in &self.critical_counts {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
        out
    }

    /// Parses a [`serialize`](Self::serialize)d checkpoint. `None` on any
    /// structural damage or internal inconsistency — a torn or corrupted
    /// checkpoint degrades to "no checkpoint", never a panic.
    pub fn deserialize(text: &str) -> Option<McCheckpoint> {
        let mut lines = text.lines();
        if lines.next()? != MC_CKPT_HEADER {
            return None;
        }
        let completed: usize = lines.next()?.strip_prefix("completed ")?.parse().ok()?;
        let outputs: usize = lines.next()?.strip_prefix("outputs ")?.parse().ok()?;
        let rng_words = parse_f64_words(lines.next()?, "rng")?;
        if rng_words.len() != 4 {
            return None;
        }
        let mut rng_state = [0u64; 4];
        for (slot, v) in rng_state.iter_mut().zip(rng_words) {
            *slot = v.to_bits();
        }
        let spare_line = lines.next()?.strip_prefix("spare ")?;
        let spare = if spare_line == "-" {
            None
        } else if spare_line.len() == 16 {
            Some(f64::from_bits(u64::from_str_radix(spare_line, 16).ok()?))
        } else {
            return None;
        };
        let worst_delays = parse_f64_words(lines.next()?, "worst")?;
        let stats_count: usize = lines.next()?.strip_prefix("stats-count ")?.parse().ok()?;
        let stats_mean = parse_f64_words(lines.next()?, "stats-mean")?;
        let stats_m2 = parse_f64_words(lines.next()?, "stats-m2")?;
        let critical_line = lines.next()?.strip_prefix("critical")?;
        let mut critical_counts = Vec::new();
        for word in critical_line.split_whitespace() {
            critical_counts.push(word.parse().ok()?);
        }
        if lines.next().is_some()
            || worst_delays.len() != completed
            || stats_mean.len() != outputs
            || stats_m2.len() != outputs
            || critical_counts.len() != outputs
            || stats_count != completed
        {
            return None;
        }
        Some(McCheckpoint {
            completed,
            worst_delays,
            stats_count,
            stats_mean,
            stats_m2,
            critical_counts,
            rng_state,
            spare,
        })
    }
}

/// [`run_monte_carlo`] in checkpointed sample batches: after every
/// `batch` completed samples (and once more at the end) an
/// [`McCheckpoint`] is handed to `on_batch`, and the `mc/batch`
/// deterministic kill point ([`klest_runtime::crash_point`]) is passed.
/// Feeding a captured checkpoint back as `resume` continues the run and
/// produces a **bitwise identical** [`McRun`] (worst delays, output
/// moments, criticality) to the uninterrupted run with the same config.
///
/// Checkpointing is defined for the sequential sample stream only, so
/// `threads` must be 1; with antithetic variates `batch` must be even so
/// every boundary falls between mirror pairs.
///
/// # Errors
///
/// [`SstaError::InvalidConfig`] as for [`run_monte_carlo`], plus for
/// `threads != 1`, a zero or (with antithetic) odd `batch`, or a `resume`
/// checkpoint inconsistent with `timer`/`config`.
pub fn run_monte_carlo_checkpointed<S: GateFieldSampler>(
    timer: &Timer,
    sampler: &S,
    config: &McConfig,
    batch: usize,
    resume: Option<&McCheckpoint>,
    on_batch: &mut dyn FnMut(&McCheckpoint),
) -> Result<McRun, SstaError> {
    let samplers: [&dyn GateFieldSampler; N_PARAMS] = [&sampler; N_PARAMS].map(|s| s as _);
    if config.samples == 0 {
        return Err(SstaError::InvalidConfig {
            name: "samples",
            value: "0".into(),
        });
    }
    if config.threads != 1 {
        return Err(SstaError::InvalidConfig {
            name: "threads",
            value: format!("{} (checkpointed runs are single-threaded)", config.threads),
        });
    }
    if batch == 0 || (config.antithetic && !batch.is_multiple_of(2)) {
        return Err(SstaError::InvalidConfig {
            name: "batch",
            value: format!(
                "{batch} (must be positive{})",
                if config.antithetic { ", and even with antithetic variates" } else { "" }
            ),
        });
    }
    for (i, s) in samplers.iter().enumerate() {
        if s.node_count() != timer.node_count() {
            return Err(SstaError::InvalidConfig {
                name: "sampler.node_count",
                value: format!(
                    "param {i}: {} (timer has {})",
                    s.node_count(),
                    timer.node_count()
                ),
            });
        }
    }
    let n_outputs = timer.outputs().len();
    if let Some(cp) = resume {
        // Antithetic resume must land on a pair boundary — except at
        // `completed == samples`, where an odd sample count legitimately
        // ends mid-pair and there is nothing left to generate.
        let consistent = cp.completed <= config.samples
            && cp.outputs() == n_outputs
            && (!config.antithetic
                || cp.completed.is_multiple_of(2)
                || cp.completed == config.samples);
        if !consistent {
            return Err(SstaError::InvalidConfig {
                name: "resume",
                value: format!(
                    "checkpoint at {} samples / {} outputs does not fit run of {} / {}",
                    cp.completed,
                    cp.outputs(),
                    config.samples,
                    n_outputs
                ),
            });
        }
    }

    let started = Instant::now();
    let n = timer.node_count();
    let (mut normals, start_at, mut worst, mut stats, mut critical_counts) = match resume {
        Some(cp) => {
            let stats = OutputStats::from_raw_parts(
                cp.stats_count,
                cp.stats_mean.clone(),
                cp.stats_m2.clone(),
            )
            .ok_or_else(|| SstaError::InvalidConfig {
                name: "resume",
                value: "corrupted accumulator widths".into(),
            })?;
            (
                NormalSource::from_parts(StdRng::from_state(cp.rng_state), cp.spare),
                cp.completed,
                cp.worst_delays.clone(),
                stats,
                cp.critical_counts.clone(),
            )
        }
        None => (
            NormalSource::new(StdRng::seed_from_u64(config.seed)),
            0,
            Vec::with_capacity(config.samples),
            OutputStats::new(n_outputs),
            vec![0usize; n_outputs],
        ),
    };
    let mut fields = vec![vec![0.0; n]; N_PARAMS];
    let mut params = vec![ParamVector::ZERO; n];
    let mut arrivals = vec![0.0; n];
    let mut slews = vec![0.0; n];
    let mut out_values = vec![0.0; n_outputs];
    for s in start_at..config.samples {
        if config.antithetic && s % 2 == 1 {
            // Mirror the previous draw (see `worker`); a batch boundary
            // never splits a mirror pair, so resumed runs always start on
            // a fresh draw.
            for field in fields.iter_mut() {
                for v in field.iter_mut() {
                    *v = -*v;
                }
            }
        } else {
            for (field, sampler) in fields.iter_mut().zip(samplers.iter()) {
                sampler.sample_into(&mut normals, field);
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            *p = ParamVector::new([fields[0][i], fields[1][i], fields[2][i], fields[3][i]]);
        }
        let w = timer.analyze_into(&params, &mut arrivals, &mut slews);
        worst.push(w);
        let mut argmax = 0usize;
        let mut best = f64::NEG_INFINITY;
        for ((slot, v), o) in out_values.iter_mut().enumerate().zip(timer.outputs()) {
            *v = arrivals[o.index()];
            if *v > best {
                best = *v;
                argmax = slot;
            }
        }
        if n_outputs > 0 {
            critical_counts[argmax] += 1;
        }
        stats.push(&out_values);
        let done = s + 1;
        if done % batch == 0 || done == config.samples {
            let (count, mean, m2) = stats.raw_parts();
            let cp = McCheckpoint {
                completed: done,
                worst_delays: worst.clone(),
                stats_count: count,
                stats_mean: mean.to_vec(),
                stats_m2: m2.to_vec(),
                critical_counts: critical_counts.clone(),
                rng_state: normals.rng_mut().state(),
                spare: normals.spare(),
            };
            on_batch(&cp);
            klest_runtime::crash_point("mc/batch");
        }
    }
    let wall = started.elapsed();
    if klest_obs::enabled() {
        klest_obs::counter_add("mc.samples", (config.samples - start_at) as u64);
        klest_obs::gauge_set("mc.threads", 1.0);
    }
    Ok(McRun {
        worst_delays: worst,
        output_stats: stats,
        critical_counts,
        random_dims: samplers.iter().map(|s| s.random_dims()).max().unwrap_or(0),
        wall,
        salvage: None,
    })
}

/// Per-worker results: worst delays, per-output stats, criticality counts.
type WorkerOutput = (Vec<f64>, OutputStats, Vec<usize>);

/// One worker's share of the Monte Carlo loop.
fn worker(
    timer: &Timer,
    samplers: &[&dyn GateFieldSampler; N_PARAMS],
    seed: u64,
    samples: usize,
    n_outputs: usize,
    antithetic: bool,
) -> WorkerOutput {
    let n = timer.node_count();
    let mut normals = NormalSource::new(StdRng::seed_from_u64(seed));
    let mut fields = vec![vec![0.0; n]; N_PARAMS];
    let mut params = vec![ParamVector::ZERO; n];
    let mut arrivals = vec![0.0; n];
    let mut slews = vec![0.0; n];
    let mut out_values = vec![0.0; n_outputs];
    let mut worst = Vec::with_capacity(samples);
    let mut stats = OutputStats::new(n_outputs);
    let mut critical_counts = vec![0usize; n_outputs];
    for s in 0..samples {
        if antithetic && s % 2 == 1 {
            // Mirror the previous draw: fields are linear in the
            // underlying normals, so negating the field equals negating ξ.
            for field in fields.iter_mut() {
                for v in field.iter_mut() {
                    *v = -*v;
                }
            }
        } else {
            for (field, sampler) in fields.iter_mut().zip(samplers.iter()) {
                sampler.sample_into(&mut normals, field);
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            *p = ParamVector::new([fields[0][i], fields[1][i], fields[2][i], fields[3][i]]);
        }
        let w = timer.analyze_into(&params, &mut arrivals, &mut slews);
        worst.push(w);
        let mut argmax = 0usize;
        let mut best = f64::NEG_INFINITY;
        for ((slot, v), o) in out_values.iter_mut().enumerate().zip(timer.outputs()) {
            *v = arrivals[o.index()];
            if *v > best {
                best = *v;
                argmax = slot;
            }
        }
        if n_outputs > 0 {
            critical_counts[argmax] += 1;
        }
        stats.push(&out_values);
    }
    (worst, stats, critical_counts)
}

/// One supervised worker: the plain [`worker`] loop plus a per-sample
/// `mc/sample` checkpoint and fault-plan instrumentation. Returns whatever
/// it completed together with the cancellation marker, if any — the
/// supervisor salvages the partial output either way.
#[allow(clippy::too_many_arguments)]
fn supervised_worker(
    timer: &Timer,
    samplers: &[&dyn GateFieldSampler; N_PARAMS],
    seed: u64,
    samples: usize,
    n_outputs: usize,
    antithetic: bool,
    token: &CancelToken,
    plan: Option<&FaultPlan>,
    shard: usize,
) -> (WorkerOutput, Option<Cancelled>) {
    if let Some(plan) = plan {
        // Injected hang / panic on entry; a panic here is caught by the
        // supervisor and the retried shard reruns from this point with
        // the same seed, reproducing the original sample stream.
        plan.fire(Stage::Mc, shard, token);
    }
    let n = timer.node_count();
    let mut normals = NormalSource::new(StdRng::seed_from_u64(seed));
    let mut fields = vec![vec![0.0; n]; N_PARAMS];
    let mut params = vec![ParamVector::ZERO; n];
    let mut arrivals = vec![0.0; n];
    let mut slews = vec![0.0; n];
    let mut out_values = vec![0.0; n_outputs];
    let mut worst = Vec::with_capacity(samples);
    let mut stats = OutputStats::new(n_outputs);
    let mut critical_counts = vec![0usize; n_outputs];
    for s in 0..samples {
        if let Err(c) = token.checkpoint("mc/sample") {
            let done = worst.len();
            return ((worst, stats, critical_counts), Some(c.with_completed(done)));
        }
        if antithetic && s % 2 == 1 {
            for field in fields.iter_mut() {
                for v in field.iter_mut() {
                    *v = -*v;
                }
            }
        } else {
            for (field, sampler) in fields.iter_mut().zip(samplers.iter()) {
                sampler.sample_into(&mut normals, field);
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            *p = ParamVector::new([fields[0][i], fields[1][i], fields[2][i], fields[3][i]]);
        }
        let w = timer.analyze_into(&params, &mut arrivals, &mut slews);
        worst.push(w);
        let mut argmax = 0usize;
        let mut best = f64::NEG_INFINITY;
        for ((slot, v), o) in out_values.iter_mut().enumerate().zip(timer.outputs()) {
            *v = arrivals[o.index()];
            if *v > best {
                best = *v;
                argmax = slot;
            }
        }
        if n_outputs > 0 {
            critical_counts[argmax] += 1;
        }
        stats.push(&out_values);
    }
    ((worst, stats, critical_counts), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CholeskySampler;
    use klest_circuit::{generate, GeneratorConfig, Placement, WireModel};
    use klest_kernels::GaussianKernel;
    use klest_sta::GateLibrary;

    fn setup(gates: usize) -> (Timer, CholeskySampler) {
        let c = generate("mc", GeneratorConfig::combinational(gates, 3)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let timer = Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm());
        let sampler = CholeskySampler::new(&GaussianKernel::new(2.0), p.locations()).unwrap();
        (timer, sampler)
    }

    #[test]
    fn produces_requested_sample_count() {
        let (timer, sampler) = setup(60);
        let run = run_monte_carlo(&timer, &sampler, &McConfig::new(100, 1)).unwrap();
        assert_eq!(run.worst_delays().len(), 100);
        assert_eq!(run.output_stats().count(), 100);
        assert_eq!(run.random_dims(), timer.node_count());
        assert!(run.wall_time().as_nanos() > 0);
        let stats = run.worst_delay_stats();
        assert!(stats.mean > 0.0);
        assert!(stats.std_dev > 0.0, "process variation must spread delays");
    }

    #[test]
    fn deterministic_single_thread() {
        let (timer, sampler) = setup(40);
        let a = run_monte_carlo(&timer, &sampler, &McConfig::new(50, 11)).unwrap();
        let b = run_monte_carlo(&timer, &sampler, &McConfig::new(50, 11)).unwrap();
        assert_eq!(a.worst_delays(), b.worst_delays());
        let c = run_monte_carlo(&timer, &sampler, &McConfig::new(50, 12)).unwrap();
        assert_ne!(a.worst_delays(), c.worst_delays());
    }

    #[test]
    fn threaded_matches_sample_count_and_stats_roughly() {
        let (timer, sampler) = setup(50);
        let seq = run_monte_carlo(&timer, &sampler, &McConfig::new(400, 5)).unwrap();
        let par = run_monte_carlo(&timer, &sampler, &McConfig::new(400, 5).with_threads(4)).unwrap();
        assert_eq!(par.worst_delays().len(), 400);
        assert_eq!(par.output_stats().count(), 400);
        let (s, p) = (seq.worst_delay_stats(), par.worst_delay_stats());
        // Different RNG streams, same distribution.
        assert!(p.mean_error_pct(&s) < 2.0, "means {} vs {}", p.mean, s.mean);
        assert!(p.std_error_pct(&s) < 35.0);
    }

    #[test]
    fn antithetic_pairs_mirror_and_reduce_mean_noise() {
        let (timer, sampler) = setup(60);
        // Pairing symmetry: with an even count the empirical mean of the
        // underlying parameter fields is exactly zero, which shows up as
        // a much more stable worst-delay mean across seeds.
        let plain_means: Vec<f64> = (0..6)
            .map(|s| {
                run_monte_carlo(&timer, &sampler, &McConfig::new(200, s))
                    .unwrap()
                    .worst_delay_stats()
                    .mean
            })
            .collect();
        let anti_means: Vec<f64> = (0..6)
            .map(|s| {
                run_monte_carlo(&timer, &sampler, &McConfig::new(200, s).with_antithetic())
                    .unwrap()
                    .worst_delay_stats()
                    .mean
            })
            .collect();
        let spread = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(
            spread(&anti_means) < spread(&plain_means),
            "antithetic mean spread {} should beat plain {}",
            spread(&anti_means),
            spread(&plain_means)
        );
        // Sample count is unchanged.
        let run = run_monte_carlo(&timer, &sampler, &McConfig::new(101, 1).with_antithetic())
            .unwrap();
        assert_eq!(run.worst_delays().len(), 101);
    }

    #[test]
    fn criticality_sums_to_one_and_tracks_dominance() {
        use klest_circuit::{Circuit, GateKind};
        // Diamond with one clearly slower output: its criticality ~ 1.
        let mut b = Circuit::builder("crit");
        let a = b.input();
        let a2 = b.input();
        let fast = b.gate(GateKind::Inv, &[a]).unwrap();
        let s1 = b.gate(GateKind::Xor2, &[a, a2]).unwrap();
        let s2 = b.gate(GateKind::Xor2, &[s1, a2]).unwrap();
        let s3 = b.gate(GateKind::Xor2, &[s2, a2]).unwrap();
        b.output(fast);
        b.output(s3);
        let c = b.build().unwrap();
        let p = Placement::recursive_bisection(&c);
        let timer = Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm());
        let sampler = CholeskySampler::new(&GaussianKernel::new(2.0), p.locations()).unwrap();
        let run = run_monte_carlo(&timer, &sampler, &McConfig::new(500, 3)).unwrap();
        let crit = run.criticality();
        assert_eq!(crit.len(), 2);
        assert!((crit.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Output order matches timer.outputs(): fast first, slow second.
        assert!(crit[1] > 0.95, "slow output criticality {}", crit[1]);
        assert!(crit[0] < 0.05);
    }

    #[test]
    fn per_param_mixed_samplers() {
        use crate::{GridPcaSampler, KleFieldSampler};
        use klest_core::{GalerkinKle, KleOptions};
        use klest_geometry::Rect;
        use klest_mesh::MeshBuilder;
        let c = generate("mix", GeneratorConfig::combinational(60, 8)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let timer = Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm());
        let kernel = GaussianKernel::new(2.0);
        let chol = CholeskySampler::new(&kernel, p.locations()).unwrap();
        let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.05).build().unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let kle_s = KleFieldSampler::new(&kle, &mesh, 15, p.locations()).unwrap();
        let grid = GridPcaSampler::new(&kernel, Rect::unit_die(), 6, 15, p.locations()).unwrap();
        // L from Cholesky, W from KLE, Vt from grid-PCA, tox from KLE.
        let samplers: [&dyn GateFieldSampler; N_PARAMS] = [&chol, &kle_s, &grid, &kle_s];
        let run =
            run_monte_carlo_per_param(&timer, &samplers, &McConfig::new(200, 5)).unwrap();
        assert_eq!(run.worst_delays().len(), 200);
        assert!(run.worst_delay_stats().std_dev > 0.0);
        assert_eq!(run.random_dims(), timer.node_count(), "max over params");
        // Mismatched node counts in one slot are rejected.
        let (other_timer, _) = setup(61);
        assert!(matches!(
            run_monte_carlo_per_param(&other_timer, &samplers, &McConfig::new(5, 1)),
            Err(SstaError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn supervised_matches_plain_run_bitwise_when_untripped() {
        let (timer, sampler) = setup(40);
        for threads in [1usize, 3] {
            let cfg = McConfig::new(60, 7).with_threads(threads);
            let plain = run_monte_carlo(&timer, &sampler, &cfg).unwrap();
            let token = CancelToken::unlimited();
            let mut report = DegradationReport::new();
            let sup =
                run_monte_carlo_supervised(&timer, &sampler, &cfg, &token, &mut report).unwrap();
            assert_eq!(plain.worst_delays(), sup.worst_delays(), "threads={threads}");
            assert!(report.is_clean(), "{report}");
            let salvage = sup.salvage().expect("supervised runs report salvage");
            assert_eq!(salvage.planned, 60);
            assert_eq!(salvage.completed, 60);
            assert_eq!(salvage.ci_widening, 1.0);
            assert!(!salvage.truncated());
        }
    }

    #[test]
    fn tripped_run_salvages_exact_prefix() {
        let (timer, sampler) = setup(40);
        let cfg = McConfig::new(50, 13);
        let full = run_monte_carlo(&timer, &sampler, &cfg).unwrap();
        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(20);
        let mut report = DegradationReport::new();
        let run =
            run_monte_carlo_supervised(&timer, &sampler, &cfg, &token, &mut report).unwrap();
        assert_eq!(run.worst_delays().len(), 20);
        assert_eq!(run.worst_delays(), &full.worst_delays()[..20]);
        let salvage = run.salvage().unwrap();
        assert_eq!(salvage.completed, 20);
        assert!((salvage.ci_widening - (50.0f64 / 20.0).sqrt()).abs() < 1e-12);
        assert!(report.events().iter().any(|e| matches!(
            e,
            DegradationEvent::Cancelled { stage: "mc/sample", completed: 20, planned: 50 }
        )));
        assert!(report
            .events()
            .iter()
            .any(|e| matches!(e, DegradationEvent::CiWidened { .. })));
    }

    #[test]
    fn transient_panic_is_retried_and_recovers_bitwise() {
        let (timer, sampler) = setup(40);
        let cfg = McConfig::new(40, 5).with_threads(2);
        let clean = run_monte_carlo(&timer, &sampler, &cfg).unwrap();
        let token = CancelToken::unlimited();
        let plan = FaultPlan::new().panic_at(Stage::Mc, 1);
        let mut report = DegradationReport::new();
        let run = run_monte_carlo_supervised_with_faults(
            &timer, &sampler, &cfg, &token, &plan, &mut report,
        )
        .unwrap();
        // The retry reran shard 1 with its original seed: full salvage,
        // same sample multiset as the clean parallel run.
        assert_eq!(run.worst_delays().len(), 40);
        assert_eq!(run.worst_delays(), clean.worst_delays());
        let salvage = run.salvage().unwrap();
        assert_eq!(salvage.shards_retried, 1);
        assert_eq!(salvage.worker_faults, 0);
        assert!(report.events().iter().any(|e| matches!(
            e,
            DegradationEvent::WorkerFault { shard: 1, recovered: true, .. }
        )));
    }

    #[test]
    fn permanent_panic_loses_one_shard_keeps_siblings() {
        let (timer, sampler) = setup(40);
        let cfg = McConfig::new(40, 5).with_threads(2);
        let token = CancelToken::unlimited();
        // More scheduled panics than the supervisor will retry.
        let plan = FaultPlan::new().panic_at_times(Stage::Mc, 0, 100);
        let mut report = DegradationReport::new();
        let run = run_monte_carlo_supervised_with_faults(
            &timer, &sampler, &cfg, &token, &plan, &mut report,
        )
        .unwrap();
        // Shard 0's 20 samples are lost; shard 1's 20 survive.
        assert_eq!(run.worst_delays().len(), 20);
        let salvage = run.salvage().unwrap();
        assert_eq!(salvage.worker_faults, 1);
        assert!(salvage.truncated());
        assert!(report.events().iter().any(|e| matches!(
            e,
            DegradationEvent::WorkerFault { shard: 0, recovered: false, .. }
        )));
    }

    #[test]
    fn zero_salvage_surfaces_typed_errors() {
        let (timer, sampler) = setup(30);
        // Pre-cancelled token: no sample ever completes.
        let token = CancelToken::unlimited();
        token.cancel();
        let mut report = DegradationReport::new();
        let err =
            run_monte_carlo_supervised(&timer, &sampler, &McConfig::new(10, 1), &token, &mut report)
                .unwrap_err();
        assert!(matches!(err, SstaError::Cancelled(_)), "{err:?}");
        // Every shard permanently faulted: worker fault, not cancellation.
        let token = CancelToken::unlimited();
        let plan = FaultPlan::new().panic_at_times(Stage::Mc, 0, 100);
        let mut report = DegradationReport::new();
        let err = run_monte_carlo_supervised_with_faults(
            &timer,
            &sampler,
            &McConfig::new(10, 1),
            &token,
            &plan,
            &mut report,
        )
        .unwrap_err();
        assert!(
            matches!(err, SstaError::WorkerFault { shard: 0, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("injected fault"));
    }

    fn run_bits(run: &McRun) -> (Vec<u64>, Vec<u64>, Vec<u64>, Vec<usize>) {
        let worst = run.worst_delays().iter().map(|v| v.to_bits()).collect();
        let k = run.output_stats().outputs();
        let means = (0..k).map(|i| run.output_stats().mean(i).to_bits()).collect();
        let stds = (0..k)
            .map(|i| run.output_stats().std_dev(i).to_bits())
            .collect();
        (worst, means, stds, run.critical_counts.clone())
    }

    #[test]
    fn checkpointed_run_matches_plain_bitwise_and_resumes_from_every_batch() {
        let (timer, sampler) = setup(40);
        for antithetic in [false, true] {
            let mut cfg = McConfig::new(50, 13);
            if antithetic {
                cfg = cfg.with_antithetic();
            }
            let plain = run_monte_carlo(&timer, &sampler, &cfg).unwrap();
            let mut checkpoints = Vec::new();
            let full = run_monte_carlo_checkpointed(
                &timer,
                &sampler,
                &cfg,
                8,
                None,
                &mut |cp| checkpoints.push(cp.clone()),
            )
            .unwrap();
            assert_eq!(run_bits(&full), run_bits(&plain), "antithetic={antithetic}");
            // ceil(50/8) = 7 boundaries (the last is the final sample).
            assert_eq!(checkpoints.len(), 7);
            assert_eq!(checkpoints.last().unwrap().completed(), 50);
            for cp in &checkpoints {
                // Disk round-trip through the textual format, then resume.
                let restored = McCheckpoint::deserialize(&cp.serialize()).unwrap();
                assert_eq!(&restored, cp, "serialization must be lossless");
                let resumed = run_monte_carlo_checkpointed(
                    &timer,
                    &sampler,
                    &cfg,
                    8,
                    Some(&restored),
                    &mut |_| {},
                )
                .unwrap();
                assert_eq!(
                    run_bits(&resumed),
                    run_bits(&plain),
                    "resume from {} (antithetic={antithetic}) must be bitwise identical",
                    cp.completed()
                );
            }
        }
    }

    #[test]
    fn mc_checkpoint_deserialize_rejects_damage() {
        let (timer, sampler) = setup(30);
        let cfg = McConfig::new(16, 3);
        let mut last = None;
        let _ = run_monte_carlo_checkpointed(&timer, &sampler, &cfg, 8, None, &mut |cp| {
            last = Some(cp.clone())
        })
        .unwrap();
        let wire = last.unwrap().serialize();
        assert!(McCheckpoint::deserialize(&wire).is_some());
        // Torn tail, wrong header, count drift, trailing garbage.
        assert!(McCheckpoint::deserialize(&wire[..wire.len() - 7]).is_none());
        assert!(McCheckpoint::deserialize(&wire.replacen("v1", "v7", 1)).is_none());
        assert!(McCheckpoint::deserialize(&wire.replacen("completed 16", "completed 15", 1))
            .is_none());
        assert!(McCheckpoint::deserialize(&format!("{wire}junk\n")).is_none());
        assert!(McCheckpoint::deserialize("").is_none());
    }

    #[test]
    fn checkpointed_run_rejects_bad_configs() {
        let (timer, sampler) = setup(30);
        let nop = &mut |_: &McCheckpoint| {};
        let threaded = McConfig::new(10, 1).with_threads(2);
        assert!(matches!(
            run_monte_carlo_checkpointed(&timer, &sampler, &threaded, 4, None, nop),
            Err(SstaError::InvalidConfig { name: "threads", .. })
        ));
        assert!(matches!(
            run_monte_carlo_checkpointed(&timer, &sampler, &McConfig::new(10, 1), 0, None, nop),
            Err(SstaError::InvalidConfig { name: "batch", .. })
        ));
        let anti = McConfig::new(10, 1).with_antithetic();
        assert!(matches!(
            run_monte_carlo_checkpointed(&timer, &sampler, &anti, 3, None, nop),
            Err(SstaError::InvalidConfig { name: "batch", .. })
        ));
        // A checkpoint from a different circuit shape is rejected.
        let cfg = McConfig::new(10, 1);
        let mut cp = None;
        let _ = run_monte_carlo_checkpointed(&timer, &sampler, &cfg, 4, None, &mut |c| {
            cp = Some(c.clone())
        })
        .unwrap();
        let cp = cp.unwrap();
        let (other_timer, other_sampler) = setup(31);
        if other_timer.outputs().len() != timer.outputs().len() {
            assert!(matches!(
                run_monte_carlo_checkpointed(
                    &other_timer,
                    &other_sampler,
                    &cfg,
                    4,
                    Some(&cp),
                    nop
                ),
                Err(SstaError::InvalidConfig { name: "resume", .. })
            ));
        }
        // A checkpoint claiming more samples than the run is rejected.
        let tiny = McConfig::new(2, 1);
        assert!(matches!(
            run_monte_carlo_checkpointed(&timer, &sampler, &tiny, 2, Some(&cp), nop),
            Err(SstaError::InvalidConfig { name: "resume", .. })
        ));
    }

    #[test]
    fn abort_fault_in_supervised_run_unwinds_like_process_death() {
        let (timer, sampler) = setup(30);
        let cfg = McConfig::new(20, 5).with_threads(2);
        let token = CancelToken::unlimited();
        let plan = FaultPlan::new().abort_at(Stage::Mc, 1, 1);
        let mut report = DegradationReport::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_monte_carlo_supervised_with_faults(
                &timer, &sampler, &cfg, &token, &plan, &mut report,
            )
        }));
        let payload = caught.expect_err("simulated abort must unwind out of the run");
        assert!(
            payload.is::<klest_runtime::AbortSignal>(),
            "AbortSignal payload expected"
        );
    }

    #[test]
    fn rejects_bad_configs() {
        let (timer, sampler) = setup(30);
        assert!(matches!(
            run_monte_carlo(&timer, &sampler, &McConfig::new(0, 1)),
            Err(SstaError::InvalidConfig { name: "samples", .. })
        ));
        let (_, other_sampler) = setup(31);
        assert!(matches!(
            run_monte_carlo(&timer, &other_sampler, &McConfig::new(10, 1)),
            Err(SstaError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn variation_scales_delay_spread() {
        // Wider kernel decay (less correlation) should not change the
        // mean much, but sample-to-sample independence across the die
        // partially averages out — σ of the worst delay shrinks relative
        // to a fully correlated die.
        let c = generate("mcv", GeneratorConfig::combinational(80, 13)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let timer = Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm());
        // Nearly fully correlated field (huge correlation distance).
        let correlated =
            CholeskySampler::new(&GaussianKernel::new(0.01), p.locations()).unwrap();
        // Nearly independent field.
        let independent =
            CholeskySampler::new(&GaussianKernel::new(200.0), p.locations()).unwrap();
        let cfg = McConfig::new(600, 21);
        let rc = run_monte_carlo(&timer, &correlated, &cfg).unwrap();
        let ri = run_monte_carlo(&timer, &independent, &cfg).unwrap();
        let (sc, si) = (rc.worst_delay_stats(), ri.worst_delay_stats());
        assert!(
            sc.std_dev > 1.5 * si.std_dev,
            "correlated σ {} should exceed independent σ {}",
            sc.std_dev,
            si.std_dev
        );
    }
}
