//! Standard-normal variates (Marsaglia polar method) on top of any
//! `rand` RNG — `rand` 0.8 ships only uniform distributions, and pulling
//! in `rand_distr` for one function is not worth the dependency.

use klest_rng::Rng;

/// A source of N(0, 1) variates wrapping an RNG.
///
/// The polar method produces pairs; the spare value is cached, so
/// consecutive draws cost one uniform pair on average.
#[derive(Debug, Clone)]
pub struct NormalSource<R> {
    rng: R,
    spare: Option<f64>,
}

impl<R: Rng> NormalSource<R> {
    /// Wraps an RNG.
    pub fn new(rng: R) -> Self {
        NormalSource { rng, spare: None }
    }

    /// One standard-normal draw.
    pub fn sample(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.rng.gen::<f64>() - 1.0;
            let v = 2.0 * self.rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return u * factor;
            }
        }
    }

    /// Fills a slice with i.i.d. standard normals.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.sample();
        }
    }

    /// Access to the wrapped RNG (e.g. for reseeding decisions).
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }

    /// Reassembles a source from checkpointed parts: the wrapped RNG and
    /// the cached spare half of a polar pair. Together with
    /// [`NormalSource::into_parts`] this makes the normal stream exactly
    /// resumable — the spare must travel with the RNG state, otherwise a
    /// resumed stream is offset by one draw half the time.
    pub fn from_parts(rng: R, spare: Option<f64>) -> Self {
        NormalSource { rng, spare }
    }

    /// Decomposes the source into its checkpointable parts
    /// (see [`NormalSource::from_parts`]).
    pub fn into_parts(self) -> (R, Option<f64>) {
        (self.rng, self.spare)
    }

    /// The cached spare polar draw, if any (read-only checkpoint view).
    pub fn spare(&self) -> Option<f64> {
        self.spare
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_rng::{SeedableRng, StdRng};

    #[test]
    fn moments_match_standard_normal() {
        let mut src = NormalSource::new(StdRng::seed_from_u64(12));
        let n = 200_000;
        let (mut s1, mut s2, mut s3, mut s4) = (0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = src.sample();
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
            s4 += x * x * x * x;
        }
        let nf = n as f64;
        assert!((s1 / nf).abs() < 0.01, "mean {}", s1 / nf);
        assert!((s2 / nf - 1.0).abs() < 0.02, "variance {}", s2 / nf);
        assert!((s3 / nf).abs() < 0.05, "skew {}", s3 / nf);
        assert!((s4 / nf - 3.0).abs() < 0.1, "kurtosis {}", s4 / nf);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NormalSource::new(StdRng::seed_from_u64(5));
        let mut b = NormalSource::new(StdRng::seed_from_u64(5));
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut src = NormalSource::new(StdRng::seed_from_u64(1));
        let mut buf = vec![0.0; 64];
        src.fill(&mut buf);
        assert!(buf.iter().any(|&v| v != 0.0));
        // No absurd outliers from a broken transform.
        assert!(buf.iter().all(|&v| v.abs() < 10.0));
        let _ = src.rng_mut();
    }

    #[test]
    fn parts_roundtrip_resumes_stream_exactly() {
        // Split at an odd draw count so a spare is cached: the resumed
        // source must replay the tail bitwise, spare included.
        let mut src = NormalSource::new(StdRng::seed_from_u64(9));
        for _ in 0..7 {
            src.sample();
        }
        assert!(src.spare().is_some(), "odd draw count leaves a spare");
        let (rng, spare) = src.clone().into_parts();
        let tail: Vec<f64> = (0..50).map(|_| src.sample()).collect();
        let mut resumed = NormalSource::from_parts(rng, spare);
        let replay: Vec<f64> = (0..50).map(|_| resumed.sample()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn tail_probability_sane() {
        // P(|X| > 1.96) ≈ 0.05.
        let mut src = NormalSource::new(StdRng::seed_from_u64(77));
        let n = 100_000;
        let tails = (0..n).filter(|_| src.sample().abs() > 1.96).count();
        let frac = tails as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.005, "tail fraction {frac}");
    }
}
