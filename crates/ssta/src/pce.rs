//! Polynomial-chaos response surface of circuit delay on the KLE basis.
//!
//! The paper contrasts itself with the polynomial-chaos SSTA of [2];
//! this module shows the two compose: once the field is compressed to
//! `4·r` uncorrelated standard normals ξ, the worst delay admits a cheap
//! Hermite surrogate
//!
//! `D(ξ) ≈ c₀ + Σᵢ aᵢ He₁(ξᵢ) + Σᵢ bᵢ He₂(ξᵢ)`
//!
//! (diagonal second order, `He₁(x) = x`, `He₂(x) = x² − 1`), fitted by
//! regression on a modest number of timing runs. Orthogonality of the
//! Hermite basis gives closed-form statistics: `E[D] = c₀`,
//! `Var[D] = Σ aᵢ² + 2 Σ bᵢ²` — no further simulation needed, and the
//! surrogate itself evaluates in O(dim) for fast what-if queries.

use crate::{GateFieldSampler, KleFieldSampler, NormalSource, SstaError};
use klest_linalg::{Cholesky, Matrix};
use klest_sta::{ParamVector, Timer};
use klest_rng::{SeedableRng, StdRng};

/// A fitted diagonal-quadratic Hermite surrogate of the worst delay.
#[derive(Debug, Clone)]
pub struct PceSurrogate {
    /// Constant (mean) coefficient `c₀`.
    c0: f64,
    /// Linear (He₁) coefficients, one per ξ.
    linear: Vec<f64>,
    /// Quadratic (He₂) coefficients, one per ξ.
    quadratic: Vec<f64>,
    /// Training residual RMS (fit quality diagnostic).
    residual_rms: f64,
}

impl PceSurrogate {
    /// Closed-form mean `E[D] = c₀`.
    pub fn mean(&self) -> f64 {
        self.c0
    }

    /// Closed-form variance `Σ aᵢ² + 2 Σ bᵢ²` (Hermite orthogonality).
    pub fn variance(&self) -> f64 {
        self.linear.iter().map(|a| a * a).sum::<f64>()
            + 2.0 * self.quadratic.iter().map(|b| b * b).sum::<f64>()
    }

    /// Closed-form standard deviation.
    pub fn sigma(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Number of ξ variables.
    pub fn dim(&self) -> usize {
        self.linear.len()
    }

    /// Training residual RMS.
    pub fn residual_rms(&self) -> f64 {
        self.residual_rms
    }

    /// Evaluates the surrogate at a ξ point.
    ///
    /// # Panics
    ///
    /// Panics if `xi.len() != dim()`.
    pub fn eval(&self, xi: &[f64]) -> f64 {
        assert_eq!(xi.len(), self.dim(), "xi dimension mismatch");
        let mut acc = self.c0;
        for ((x, a), b) in xi.iter().zip(&self.linear).zip(&self.quadratic) {
            acc += a * x + b * (x * x - 1.0);
        }
        acc
    }
}

/// Fits the surrogate from `samples` timing runs with explicit ξ draws.
///
/// A small ridge (1e-8 relative) regularises the normal equations; with
/// `samples >= 3 * (1 + 2 dim)` the fit is well conditioned.
///
/// # Errors
///
/// - [`SstaError::InvalidConfig`] for mismatched node counts or too few
///   samples,
/// - [`SstaError::Linalg`] if the (regularised) normal equations are
///   singular.
pub fn fit_pce(
    timer: &Timer,
    sampler: &KleFieldSampler,
    samples: usize,
    seed: u64,
) -> Result<PceSurrogate, SstaError> {
    let n = timer.node_count();
    if sampler.node_count() != n {
        return Err(SstaError::InvalidConfig {
            name: "sampler.node_count",
            value: format!("{} (timer has {n})", sampler.node_count()),
        });
    }
    let r = sampler.rank();
    let dim = 4 * r;
    let p = 1 + 2 * dim;
    if samples < 2 * p {
        return Err(SstaError::InvalidConfig {
            name: "samples",
            value: format!("{samples} (need at least {} for {p} coefficients)", 2 * p),
        });
    }

    let mut normals = NormalSource::new(StdRng::seed_from_u64(seed));
    let mut xi = vec![0.0; dim];
    let mut params = vec![ParamVector::ZERO; n];
    let mut arrivals = vec![0.0; n];
    let mut slews = vec![0.0; n];
    let mut row = vec![0.0; p];

    // Accumulate normal equations AᵀA x = Aᵀy.
    let mut ata = Matrix::zeros(p, p);
    let mut aty = vec![0.0; p];
    let mut yy = 0.0;
    for _ in 0..samples {
        normals.fill(&mut xi);
        // Per-node fields from the loading rows (parameter k uses the
        // ξ block k*r..(k+1)*r).
        for (i, pvec) in params.iter_mut().enumerate() {
            let loading = sampler.loading_row(i);
            let mut vals = [0.0f64; 4];
            for (k, v) in vals.iter_mut().enumerate() {
                *v = klest_linalg::vecops::dot(loading, &xi[k * r..(k + 1) * r]);
            }
            *pvec = ParamVector::new(vals);
        }
        let y = timer.analyze_into(&params, &mut arrivals, &mut slews);
        // Design row: [1, He1(ξ)..., He2(ξ)...].
        row[0] = 1.0;
        for (j, &x) in xi.iter().enumerate() {
            row[1 + j] = x;
            row[1 + dim + j] = x * x - 1.0;
        }
        for a in 0..p {
            let ra = row[a];
            if ra == 0.0 {
                continue;
            }
            let target = ata.row_mut(a);
            for (t, &rb) in target.iter_mut().zip(&row) {
                *t += ra * rb;
            }
            aty[a] += ra * y;
        }
        yy += y * y;
    }
    // Ridge proportional to the diagonal scale.
    let scale = (0..p).map(|i| ata[(i, i)]).fold(0.0f64, f64::max);
    for i in 0..p {
        ata[(i, i)] += 1e-8 * scale.max(1.0);
    }
    let chol = Cholesky::new(&ata)?;
    let coeffs = chol.solve(&aty)?;

    // Residual RMS from the normal-equation identity:
    // ||y - Ax||² = yᵀy − 2 xᵀAᵀy + xᵀAᵀA x; with x solving the normal
    // equations this is yᵀy − xᵀAᵀy.
    let explained: f64 = coeffs.iter().zip(&aty).map(|(c, b)| c * b).sum();
    let residual_rms = ((yy - explained).max(0.0) / samples as f64).sqrt();

    Ok(PceSurrogate {
        c0: coeffs[0],
        linear: coeffs[1..1 + dim].to_vec(),
        quadratic: coeffs[1 + dim..].to_vec(),
        residual_rms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{CircuitSetup, KleContext};
    use crate::{run_monte_carlo, McConfig};
    use klest_circuit::{generate, GeneratorConfig};
    use klest_kernels::GaussianKernel;

    fn setup() -> (CircuitSetup, KleContext) {
        let circuit = generate("pce", GeneratorConfig::combinational(150, 7)).unwrap();
        let setup = CircuitSetup::prepare(&circuit);
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        (setup, ctx)
    }

    #[test]
    fn surrogate_matches_monte_carlo_moments() {
        let (setup, ctx) = setup();
        let rank = 8.min(ctx.rank);
        let sampler =
            KleFieldSampler::new(&ctx.kle, &ctx.mesh, rank, setup.locations()).unwrap();
        let pce = fit_pce(&setup.timer, &sampler, 2000, 3).unwrap();
        let mc = run_monte_carlo(&setup.timer, &sampler, &McConfig::new(6000, 11)).unwrap();
        let stats = mc.worst_delay_stats();
        let mean_err = 100.0 * (pce.mean() - stats.mean).abs() / stats.mean;
        let sigma_err = 100.0 * (pce.sigma() - stats.std_dev).abs() / stats.std_dev;
        assert!(mean_err < 0.5, "PCE mean {} vs MC {} ({mean_err:.2}%)", pce.mean(), stats.mean);
        assert!(
            sigma_err < 15.0,
            "PCE sigma {} vs MC {} ({sigma_err:.1}%)",
            pce.sigma(),
            stats.std_dev
        );
        assert_eq!(pce.dim(), 4 * rank);
        assert!(pce.residual_rms() < stats.std_dev, "surrogate explains most variance");
    }

    #[test]
    fn surrogate_eval_tracks_simulation() {
        let (setup, ctx) = setup();
        let rank = 6.min(ctx.rank);
        let sampler =
            KleFieldSampler::new(&ctx.kle, &ctx.mesh, rank, setup.locations()).unwrap();
        let pce = fit_pce(&setup.timer, &sampler, 1500, 5).unwrap();
        // Evaluate surrogate vs true timer at fresh ξ points.
        let dim = 4 * rank;
        let mut normals = NormalSource::new(StdRng::seed_from_u64(99));
        let mut xi = vec![0.0; dim];
        let mut params = vec![ParamVector::ZERO; setup.timer.node_count()];
        let mut arrivals = vec![0.0; setup.timer.node_count()];
        let mut slews = vec![0.0; setup.timer.node_count()];
        let mut worst_err: f64 = 0.0;
        let mut scale = 0.0;
        for _ in 0..50 {
            normals.fill(&mut xi);
            for (i, pvec) in params.iter_mut().enumerate() {
                let loading = sampler.loading_row(i);
                let mut vals = [0.0f64; 4];
                for (k, v) in vals.iter_mut().enumerate() {
                    *v = klest_linalg::vecops::dot(loading, &xi[k * rank..(k + 1) * rank]);
                }
                *pvec = ParamVector::new(vals);
            }
            let truth = setup.timer.analyze_into(&params, &mut arrivals, &mut slews);
            let pred = pce.eval(&xi);
            worst_err = worst_err.max((truth - pred).abs());
            scale = truth.max(scale);
        }
        assert!(
            worst_err / scale < 0.02,
            "pointwise surrogate error {:.3}% too large",
            100.0 * worst_err / scale
        );
    }

    #[test]
    fn rejects_underdetermined_fits() {
        let (setup, ctx) = setup();
        let sampler =
            KleFieldSampler::new(&ctx.kle, &ctx.mesh, 10.min(ctx.rank), setup.locations())
                .unwrap();
        assert!(matches!(
            fit_pce(&setup.timer, &sampler, 10, 1),
            Err(SstaError::InvalidConfig { name: "samples", .. })
        ));
    }
}
