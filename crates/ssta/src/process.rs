//! High-level process model: per-parameter kernels and σ weights,
//! bundled into a one-call statistical timing flow.
//!
//! The paper's algorithms are written per statistical parameter (`for
//! all stat. parameters p_j` with kernel `K_j`); its experiments use one
//! Gaussian kernel for all four. [`ProcessModel`] supports both: bind a
//! kernel per parameter (sharing KLE computations between parameters
//! that share a kernel is the caller's choice — contexts are cheap to
//! clone and reuse).

use crate::experiments::{CircuitSetup, KleContext};
use crate::{
    run_monte_carlo_per_param, CholeskySampler, GateFieldSampler, KleFieldSampler, McConfig,
    McRun, SstaError, N_PARAMS,
};
use klest_kernels::CovarianceKernel;
use klest_sta::StatParam;

/// Which generator a parameter's field comes from.
enum ParamSource<'a> {
    /// Algorithm 2 on a prepared KLE context, at the context's rank.
    Kle(&'a KleContext),
    /// Algorithm 1 (reference) on the given kernel.
    Cholesky(&'a dyn CovarianceKernel),
}

/// A per-parameter process description: one field source per
/// `[L, W, Vt, tox]`.
///
/// ```no_run
/// use klest_ssta::{ProcessModel, McConfig};
/// use klest_ssta::experiments::{CircuitSetup, KleContext};
/// use klest_kernels::GaussianKernel;
/// use klest_circuit::{benchmark, BenchmarkId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let kernel = GaussianKernel::with_correlation_distance(1.0);
/// let ctx = KleContext::paper_default(&kernel)?;
/// let circuit = benchmark(BenchmarkId::C880)?;
/// let setup = CircuitSetup::prepare(&circuit);
/// // All four parameters from the same KLE (the paper's configuration).
/// let model = ProcessModel::uniform_kle(&ctx);
/// let run = model.run(&setup, &McConfig::new(1000, 7))?;
/// println!("sigma = {}", run.worst_delay_stats().std_dev);
/// # Ok(())
/// # }
/// ```
pub struct ProcessModel<'a> {
    sources: [ParamSource<'a>; N_PARAMS],
}

impl<'a> ProcessModel<'a> {
    /// All four parameters drawn via the KLE of one context — the
    /// paper's experimental configuration.
    pub fn uniform_kle(ctx: &'a KleContext) -> Self {
        ProcessModel {
            sources: [
                ParamSource::Kle(ctx),
                ParamSource::Kle(ctx),
                ParamSource::Kle(ctx),
                ParamSource::Kle(ctx),
            ],
        }
    }

    /// All four parameters drawn via Algorithm 1 on one kernel — the
    /// reference configuration.
    pub fn uniform_reference<K: CovarianceKernel>(kernel: &'a K) -> Self {
        ProcessModel {
            sources: [
                ParamSource::Cholesky(kernel),
                ParamSource::Cholesky(kernel),
                ParamSource::Cholesky(kernel),
                ParamSource::Cholesky(kernel),
            ],
        }
    }

    /// Starts from [`uniform_kle`](Self::uniform_kle) and overrides one
    /// parameter to use a *different* KLE context (e.g. `Vt` with a
    /// shorter correlation length than `L`).
    pub fn with_kle(mut self, param: StatParam, ctx: &'a KleContext) -> Self {
        self.sources[param.index()] = ParamSource::Kle(ctx);
        self
    }

    /// Overrides one parameter to use the Algorithm 1 reference sampler.
    pub fn with_reference(mut self, param: StatParam, kernel: &'a dyn CovarianceKernel) -> Self {
        self.sources[param.index()] = ParamSource::Cholesky(kernel);
        self
    }

    /// Builds the per-parameter samplers for `setup` and runs the Monte
    /// Carlo SSTA.
    ///
    /// # Errors
    ///
    /// Propagates [`SstaError`] from sampler construction or the MC loop.
    pub fn run(&self, setup: &CircuitSetup, config: &McConfig) -> Result<McRun, SstaError> {
        // Build concrete samplers, deduplicating identical KLE sources by
        // pointer so four-way-shared contexts build one gather matrix.
        let mut kle_cache: Vec<(*const KleContext, KleFieldSampler)> = Vec::new();
        let mut chol_cache: Vec<(*const dyn CovarianceKernel, CholeskySampler)> = Vec::new();
        for source in &self.sources {
            match source {
                ParamSource::Kle(ctx) => {
                    let key = *ctx as *const KleContext;
                    if !kle_cache.iter().any(|(k, _)| *k == key) {
                        let sampler = KleFieldSampler::new(
                            &ctx.kle,
                            &ctx.mesh,
                            ctx.rank,
                            setup.locations(),
                        )?;
                        kle_cache.push((key, sampler));
                    }
                }
                ParamSource::Cholesky(kernel) => {
                    let key = *kernel as *const dyn CovarianceKernel;
                    if !chol_cache
                        .iter()
                        .any(|(k, _)| std::ptr::eq(*k as *const u8, key as *const u8))
                    {
                        let sampler = CholeskySampler::new(*kernel, setup.locations())?;
                        chol_cache.push((key, sampler));
                    }
                }
            }
        }
        let samplers: [&dyn GateFieldSampler; N_PARAMS] =
            std::array::from_fn(|i| match &self.sources[i] {
                ParamSource::Kle(ctx) => {
                    let key = *ctx as *const KleContext;
                    let (_, s) = kle_cache
                        .iter()
                        .find(|(k, _)| *k == key)
                        .expect("cached above");
                    s as &dyn GateFieldSampler
                }
                ParamSource::Cholesky(kernel) => {
                    let key = *kernel as *const dyn CovarianceKernel;
                    let (_, s) = chol_cache
                        .iter()
                        .find(|(k, _)| std::ptr::eq(*k as *const u8, key as *const u8))
                        .expect("cached above");
                    s as &dyn GateFieldSampler
                }
            });
        run_monte_carlo_per_param(&setup.timer, &samplers, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_circuit::{generate, GeneratorConfig};
    use klest_kernels::GaussianKernel;

    fn setup() -> CircuitSetup {
        let c = generate("pm", GeneratorConfig::combinational(80, 6)).unwrap();
        CircuitSetup::prepare(&c)
    }

    #[test]
    fn uniform_kle_runs() {
        let kernel = GaussianKernel::new(2.0);
        let ctx = KleContext::coarse(&kernel).unwrap();
        let s = setup();
        let run = ProcessModel::uniform_kle(&ctx)
            .run(&s, &McConfig::new(300, 3))
            .unwrap();
        assert_eq!(run.worst_delays().len(), 300);
        assert!(run.worst_delay_stats().std_dev > 0.0);
        assert_eq!(run.random_dims(), ctx.rank);
    }

    #[test]
    fn uniform_reference_runs() {
        let kernel = GaussianKernel::new(2.0);
        let s = setup();
        let run = ProcessModel::uniform_reference(&kernel)
            .run(&s, &McConfig::new(200, 5))
            .unwrap();
        assert_eq!(run.random_dims(), s.timer.node_count());
    }

    #[test]
    fn mixed_sources_per_parameter() {
        let long_range = GaussianKernel::new(0.5);
        let short_range = GaussianKernel::new(8.0);
        let ctx_long = KleContext::coarse(&long_range).unwrap();
        let ctx_short = KleContext::coarse(&short_range).unwrap();
        let s = setup();
        // L, W long-range; Vt short-range; tox via the reference sampler.
        let run = ProcessModel::uniform_kle(&ctx_long)
            .with_kle(StatParam::Vt, &ctx_short)
            .with_reference(StatParam::Tox, &long_range)
            .run(&s, &McConfig::new(300, 9))
            .unwrap();
        assert_eq!(run.worst_delays().len(), 300);
        // random_dims reports the max across parameters: the reference
        // sampler's N_g dominates.
        assert_eq!(run.random_dims(), s.timer.node_count());
    }

    #[test]
    fn statistics_agree_between_apis() {
        // ProcessModel::uniform_* must match the plain run_monte_carlo
        // calls bit-for-bit for the same seed.
        let kernel = GaussianKernel::new(2.0);
        let s = setup();
        let via_model = ProcessModel::uniform_reference(&kernel)
            .run(&s, &McConfig::new(100, 21))
            .unwrap();
        let direct = {
            let sampler = CholeskySampler::new(&kernel, s.locations()).unwrap();
            crate::run_monte_carlo(&s.timer, &sampler, &McConfig::new(100, 21)).unwrap()
        };
        assert_eq!(via_model.worst_delays(), direct.worst_delays());
    }
}
