//! The two correlated-field sample generators of the paper's Sec. 5.1.

use crate::{DegradationEvent, DegradationReport, NormalSource, SstaError};
use klest_core::{GalerkinKle, KleSampler};
use klest_geometry::Point2;
use klest_kernels::CovarianceKernel;
use klest_linalg::{Cholesky, Matrix, SymmetricEigen};
use klest_mesh::Mesh;
use klest_rng::StdRng;

/// Diagonal "nugget" added to the gate covariance matrix so that gates
/// sharing (or nearly sharing) a placement cell do not make the matrix
/// numerically singular. This models the tiny independent per-device
/// residual that always exists on silicon.
const COVARIANCE_NUGGET: f64 = 1e-8;

/// A generator of correlated per-gate parameter fields: one call yields
/// one realisation of one statistical parameter (`L`, `W`, `Vt` or
/// `tox`) over all circuit nodes.
///
/// The trait is object-safe (the normal source is concretely
/// `NormalSource<StdRng>`), so a [`crate::ProcessModel`] can mix
/// sampler kinds across parameters.
pub trait GateFieldSampler: Send + Sync {
    /// Number of circuit nodes each realisation covers.
    fn node_count(&self) -> usize;

    /// Number of underlying random variables consumed per realisation —
    /// `N_g` for Algorithm 1, `r` for Algorithm 2. This is the quantity
    /// the paper's dimensionality-reduction argument is about.
    fn random_dims(&self) -> usize;

    /// Draws one realisation into `out` (`out.len() == node_count()`).
    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]);
}

impl<S: GateFieldSampler + ?Sized> GateFieldSampler for &S {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn random_dims(&self) -> usize {
        (**self).random_dims()
    }
    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        (**self).sample_into(normals, out)
    }
}

/// Escalating relative jitter ladder tried by
/// [`CholeskySampler::new_with_report`] before giving up on Cholesky
/// entirely: each rung adds `ε · tr(K)/n` to the diagonal.
const JITTER_LADDER: [f64; 4] = [1e-12, 1e-10, 1e-8, 1e-6];

/// The correlating factor backing a [`CholeskySampler`]: the Cholesky
/// `L` on the happy path, or the eigendecomposition factor
/// `L = Q √max(Λ, 0)` when the jitter ladder is exhausted.
#[derive(Debug, Clone)]
enum Factor {
    Cholesky(Cholesky),
    Eigen(Matrix),
}

/// **Algorithm 1**: the reference sampler. Builds the full `N_g x N_g`
/// covariance matrix `K_ij = K(g_i, g_j)` from the kernel at the node
/// locations and Cholesky-factors it once; each realisation correlates a
/// fresh i.i.d. normal vector.
#[derive(Debug, Clone)]
pub struct CholeskySampler {
    factor: Factor,
}

impl CholeskySampler {
    /// Builds the covariance matrix at `locations` and factors it.
    ///
    /// A tiny diagonal nugget (1e-8) is added for numerical positive
    /// definiteness — see DESIGN.md. This is the *strict* constructor: a
    /// matrix that still fails to factor is reported as an error, with no
    /// repair attempted. Use [`new_with_report`](Self::new_with_report)
    /// for the fault-tolerant path.
    ///
    /// # Errors
    ///
    /// [`SstaError::Linalg`] if the (nugget-regularised) matrix is still
    /// not positive definite — the sign of an invalid kernel.
    pub fn new<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        let _span = klest_obs::span("cholesky/factor");
        let cov = Self::covariance(kernel, locations);
        Ok(CholeskySampler {
            factor: Factor::Cholesky(Cholesky::new(&cov)?),
        })
    }

    /// Fault-tolerant constructor: on Cholesky failure, retries with an
    /// escalating diagonal jitter (`ε · tr(K)/n` for ε in 1e-12..1e-6),
    /// and as a last resort switches to the eigendecomposition factor
    /// `L = Q √max(Λ, 0)` — which correlates against the nearest-PSD
    /// covariance instead of aborting. Every rung taken is recorded in
    /// `report`; on healthy inputs this is bitwise identical to
    /// [`new`](Self::new) and records nothing.
    ///
    /// # Errors
    ///
    /// [`SstaError::Linalg`] only if the final eigendecomposition itself
    /// fails (NaN-poisoned covariance, i.e. a kernel returning NaN).
    pub fn new_with_report<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        locations: &[Point2],
        report: &mut DegradationReport,
    ) -> Result<Self, SstaError> {
        let _span = klest_obs::span("cholesky/factor");
        let cov = Self::covariance(kernel, locations);
        if let Ok(chol) = Cholesky::new(&cov) {
            return Ok(CholeskySampler {
                factor: Factor::Cholesky(chol),
            });
        }
        let n = cov.rows();
        let mean_diag = (0..n).map(|i| cov[(i, i)]).sum::<f64>() / n.max(1) as f64;
        for (attempt, &epsilon) in JITTER_LADDER.iter().enumerate() {
            let jitter = epsilon * mean_diag.abs().max(f64::MIN_POSITIVE);
            let mut jittered = cov.clone();
            for i in 0..n {
                jittered[(i, i)] += jitter;
            }
            if let Ok(chol) = Cholesky::new(&jittered) {
                klest_obs::counter_add("ssta.cholesky_jitter_attempts", (attempt + 1) as u64);
                klest_obs::gauge_set("ssta.cholesky_jitter_epsilon", epsilon);
                report.record(DegradationEvent::CholeskyJitter {
                    epsilon,
                    attempts: attempt + 1,
                });
                return Ok(CholeskySampler {
                    factor: Factor::Cholesky(chol),
                });
            }
        }
        // Ladder exhausted: factor against the nearest-PSD covariance via
        // eigendecomposition. This also surfaces the QL→Jacobi fallback
        // when the eigensolver itself had to degrade.
        let eig = SymmetricEigen::new(&cov)?;
        if eig.used_fallback() {
            report.record(DegradationEvent::EigenSolverFallback);
        }
        let min_eigenvalue = eig.eigenvalues().last().copied().unwrap_or(0.0);
        let mut l = eig.eigenvectors().clone();
        for i in 0..n {
            let row = l.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= eig.eigenvalues()[j].max(0.0).sqrt();
            }
        }
        klest_obs::counter_add("ssta.cholesky_jitter_attempts", JITTER_LADDER.len() as u64);
        klest_obs::counter_add("ssta.eigen_sampler_fallback", 1);
        report.record(DegradationEvent::EigenSamplerFallback { min_eigenvalue });
        Ok(CholeskySampler {
            factor: Factor::Eigen(l),
        })
    }

    fn covariance<K: CovarianceKernel + ?Sized>(kernel: &K, locations: &[Point2]) -> Matrix {
        let n = locations.len();
        Matrix::from_fn(n, n, |i, j| {
            let base = kernel.eval(locations[i], locations[j]);
            if i == j {
                base + COVARIANCE_NUGGET
            } else {
                base
            }
        })
    }

    /// The Cholesky factorisation (exposed for benches that time setup
    /// separately). `None` when the sampler runs on the eigendecomposition
    /// fallback factor.
    pub fn cholesky(&self) -> Option<&Cholesky> {
        match &self.factor {
            Factor::Cholesky(c) => Some(c),
            Factor::Eigen(_) => None,
        }
    }

    fn dim(&self) -> usize {
        match &self.factor {
            Factor::Cholesky(c) => c.dim(),
            Factor::Eigen(l) => l.rows(),
        }
    }
}

impl GateFieldSampler for CholeskySampler {
    fn node_count(&self) -> usize {
        self.dim()
    }

    fn random_dims(&self) -> usize {
        self.dim()
    }

    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        // z is drawn into `out` first, then correlated in place via a
        // scratch copy — one allocation per call would hurt the MC loop,
        // so the scratch lives in thread-local storage.
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|cell| {
            let mut z = cell.borrow_mut();
            z.resize(out.len(), 0.0);
            normals.fill(&mut z);
            match &self.factor {
                Factor::Cholesky(chol) => chol
                    .correlate_into(&z, out)
                    .expect("dimensions fixed at construction"),
                Factor::Eigen(l) => {
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = klest_linalg::vecops::dot(l.row(i), &z);
                    }
                }
            }
        });
    }
}

/// **Algorithm 2**: the paper's KLE sampler. Per realisation draws `r`
/// normals `ξ`, reconstructs the field over *all* mesh triangles
/// (`p_Δ = D_λ ξ`, eq. 28 — Algorithm 2 line 3) and gathers the per-gate
/// values through the containing-triangle index (lines 4–7).
///
/// [`KleFieldSampler::pregathered`] builds the fused variant — rows of
/// `D_λ` gathered per gate up front, skipping the full-mesh
/// reconstruction — an optimisation *beyond* the paper, benchmarked as an
/// ablation (`sampling` bench).
#[derive(Debug, Clone)]
pub struct KleFieldSampler {
    /// `n_triangles x r` reconstruction matrix `D √Λ`.
    d_lambda: Matrix,
    /// Containing-triangle index per circuit node.
    node_triangles: Vec<usize>,
    /// Fused per-node rows (the beyond-paper optimisation), when enabled.
    gathered: Option<Matrix>,
}

impl KleFieldSampler {
    /// Builds the paper-faithful sampler from a computed KLE, its mesh,
    /// the truncation rank and the node locations.
    ///
    /// # Errors
    ///
    /// [`SstaError::Kle`] if the rank is out of range or a node lies
    /// outside the meshed die.
    pub fn new(
        kle: &GalerkinKle,
        mesh: &Mesh,
        rank: usize,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        let _span = klest_obs::span("gather");
        let sampler = KleSampler::new(kle, mesh, rank)?;
        let node_triangles = sampler.triangles_of(locations)?;
        Ok(KleFieldSampler {
            d_lambda: sampler.reconstruction_matrix().clone(),
            node_triangles,
            gathered: None,
        })
    }

    /// Fault-tolerant constructor: gate locations outside the meshed die
    /// are clamped to the nearest-centroid triangle (recorded as a
    /// [`DegradationEvent::PointsClamped`]) instead of failing. On
    /// all-in-die inputs this is identical to [`new`](Self::new) and
    /// records nothing.
    ///
    /// # Errors
    ///
    /// [`SstaError::Kle`] if the rank is out of range.
    pub fn new_with_report(
        kle: &GalerkinKle,
        mesh: &Mesh,
        rank: usize,
        locations: &[Point2],
        report: &mut DegradationReport,
    ) -> Result<Self, SstaError> {
        let _span = klest_obs::span("gather");
        let sampler = KleSampler::new(kle, mesh, rank)?;
        let (node_triangles, clamped) = sampler.triangles_of_clamped(locations);
        if clamped > 0 {
            report.record(DegradationEvent::PointsClamped { count: clamped });
        }
        Ok(KleFieldSampler {
            d_lambda: sampler.reconstruction_matrix().clone(),
            node_triangles,
            gathered: None,
        })
    }

    /// Builds the fused (pre-gathered) variant: per-sample cost
    /// `O(N_nodes · r)` instead of `O(n_triangles · r)`.
    ///
    /// # Errors
    ///
    /// Same as [`KleFieldSampler::new`].
    pub fn pregathered(
        kle: &GalerkinKle,
        mesh: &Mesh,
        rank: usize,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        let mut s = Self::new(kle, mesh, rank, locations)?;
        let mut gathered = Matrix::zeros(locations.len(), rank);
        for (row, &t) in s.node_triangles.iter().enumerate() {
            gathered
                .row_mut(row)
                .copy_from_slice(&s.d_lambda.row(t)[..rank]);
        }
        s.gathered = Some(gathered);
        Ok(s)
    }

    /// The truncation rank `r`.
    pub fn rank(&self) -> usize {
        self.d_lambda.cols()
    }

    /// Is the beyond-paper fused gather enabled?
    pub fn is_pregathered(&self) -> bool {
        self.gathered.is_some()
    }

    /// The loading row of circuit node `node`: the `D_λ` row of its
    /// containing triangle (length `r`). A node's field value is the dot
    /// product of this row with the ξ vector — the linear map a
    /// canonical-form SSTA propagates symbolically.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn loading_row(&self, node: usize) -> &[f64] {
        let t = self.node_triangles[node];
        self.d_lambda.row(t)
    }
}

impl GateFieldSampler for KleFieldSampler {
    fn node_count(&self) -> usize {
        self.node_triangles.len()
    }

    fn random_dims(&self) -> usize {
        self.d_lambda.cols()
    }

    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        thread_local! {
            static XI: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
            static FIELD: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        XI.with(|cell| {
            let mut xi = cell.borrow_mut();
            xi.resize(self.rank(), 0.0);
            normals.fill(&mut xi);
            if let Some(gathered) = &self.gathered {
                // Fused variant: one dot product per gate.
                for (o, row) in out.iter_mut().zip(0..gathered.rows()) {
                    *o = klest_linalg::vecops::dot(gathered.row(row), &xi);
                }
            } else {
                // Algorithm 2 as printed: reconstruct over every triangle,
                // then gather by containing-triangle index.
                FIELD.with(|fcell| {
                    let mut field = fcell.borrow_mut();
                    field.resize(self.d_lambda.rows(), 0.0);
                    for (f, row) in field.iter_mut().zip(0..self.d_lambda.rows()) {
                        *f = klest_linalg::vecops::dot(self.d_lambda.row(row), &xi);
                    }
                    for (o, &t) in out.iter_mut().zip(&self.node_triangles) {
                        *o = field[t];
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_core::{GalerkinKle, KleOptions};
    use klest_geometry::Rect;
    use klest_kernels::GaussianKernel;
    use klest_mesh::MeshBuilder;
    use klest_rng::SeedableRng;

    fn grid_locations(side: usize) -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(Point2::new(
                    -0.9 + 1.8 * i as f64 / (side - 1) as f64,
                    -0.9 + 1.8 * j as f64 / (side - 1) as f64,
                ));
            }
        }
        pts
    }

    fn empirical_corr<S: GateFieldSampler>(
        sampler: &S,
        i: usize,
        j: usize,
        samples: usize,
    ) -> f64 {
        let mut normals = NormalSource::new(StdRng::seed_from_u64(101));
        let mut buf = vec![0.0; sampler.node_count()];
        let (mut sij, mut sii, mut sjj) = (0.0, 0.0, 0.0);
        for _ in 0..samples {
            sampler.sample_into(&mut normals, &mut buf);
            sij += buf[i] * buf[j];
            sii += buf[i] * buf[i];
            sjj += buf[j] * buf[j];
        }
        sij / (sii * sjj).sqrt()
    }

    #[test]
    fn cholesky_sampler_matches_kernel_correlation() {
        let kernel = GaussianKernel::new(2.0);
        let locs = grid_locations(5);
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        assert_eq!(sampler.node_count(), 25);
        assert_eq!(sampler.random_dims(), 25);
        // Nearby pair: strong correlation; far pair: weak.
        let near = empirical_corr(&sampler, 0, 1, 4000);
        let expected_near = kernel.eval(locs[0], locs[1]);
        assert!((near - expected_near).abs() < 0.05, "{near} vs {expected_near}");
        let far = empirical_corr(&sampler, 0, 24, 4000);
        let expected_far = kernel.eval(locs[0], locs[24]);
        assert!((far - expected_far).abs() < 0.07, "{far} vs {expected_far}");
    }

    #[test]
    fn cholesky_sampler_handles_duplicate_locations() {
        // Two gates in the same placement cell: the nugget keeps the
        // matrix factorable.
        let kernel = GaussianKernel::new(1.0);
        let locs = vec![Point2::new(0.0, 0.0), Point2::new(0.0, 0.0), Point2::new(0.5, 0.5)];
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        let corr = empirical_corr(&sampler, 0, 1, 2000);
        assert!(corr > 0.99, "coincident gates must be ~perfectly correlated, got {corr}");
    }

    #[test]
    fn kle_sampler_matches_kernel_correlation() {
        let kernel = GaussianKernel::new(2.0);
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.01)
            .min_angle_degrees(28.0)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = grid_locations(5);
        let sampler = KleFieldSampler::new(&kle, &mesh, 25, &locs).unwrap();
        assert_eq!(sampler.node_count(), 25);
        assert_eq!(sampler.random_dims(), 25);
        assert_eq!(sampler.rank(), 25);
        let near = empirical_corr(&sampler, 0, 1, 4000);
        // The KLE field is piecewise constant, so the exact target is the
        // kernel between the containing triangles' centroids, not between
        // the raw points.
        let locator = mesh.locator();
        let c0 = mesh.centroids()[locator.locate(locs[0]).unwrap()];
        let c1 = mesh.centroids()[locator.locate(locs[1]).unwrap()];
        let expected_near = kernel.eval(c0, c1);
        assert!((near - expected_near).abs() < 0.06, "{near} vs {expected_near}");
    }

    #[test]
    fn kle_sampler_dimensionality_reduction() {
        // The headline claim: thousands of correlated RVs -> r = 25.
        let kernel = GaussianKernel::new(2.0);
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = grid_locations(40); // 1600 "gates"
        let sampler = KleFieldSampler::new(&kle, &mesh, 25, &locs).unwrap();
        assert_eq!(sampler.node_count(), 1600);
        assert_eq!(sampler.random_dims(), 25);
        let chol = CholeskySampler::new(&kernel, &locs).unwrap();
        assert_eq!(chol.random_dims(), 1600);
    }

    #[test]
    fn kle_sampler_rejects_offdie_gate() {
        let kernel = GaussianKernel::new(1.0);
        let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.1).build().unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let e = KleFieldSampler::new(&kle, &mesh, 10, &[Point2::new(3.0, 0.0)]);
        assert!(matches!(e, Err(SstaError::Kle(_))));
    }

    #[test]
    fn pregathered_matches_paper_faithful() {
        // Same ξ stream -> identical per-gate fields, by construction.
        let kernel = GaussianKernel::new(2.0);
        let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.05).build().unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = grid_locations(6);
        let paper = KleFieldSampler::new(&kle, &mesh, 12, &locs).unwrap();
        let fused = KleFieldSampler::pregathered(&kle, &mesh, 12, &locs).unwrap();
        assert!(!paper.is_pregathered());
        assert!(fused.is_pregathered());
        assert_eq!(paper.rank(), fused.rank());
        let mut a = NormalSource::new(StdRng::seed_from_u64(33));
        let mut b = NormalSource::new(StdRng::seed_from_u64(33));
        let mut out_a = vec![0.0; locs.len()];
        let mut out_b = vec![0.0; locs.len()];
        for _ in 0..5 {
            paper.sample_into(&mut a, &mut out_a);
            fused.sample_into(&mut b, &mut out_b);
            for (x, y) in out_a.iter().zip(out_b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fault_tolerant_cholesky_is_noop_on_healthy_kernel() {
        let kernel = GaussianKernel::new(2.0);
        let locs = grid_locations(4);
        let mut report = crate::DegradationReport::new();
        let tolerant = CholeskySampler::new_with_report(&kernel, &locs, &mut report).unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(tolerant.cholesky().is_some());
        // Bitwise identical to the strict path.
        let strict = CholeskySampler::new(&kernel, &locs).unwrap();
        let mut a = NormalSource::new(StdRng::seed_from_u64(5));
        let mut b = NormalSource::new(StdRng::seed_from_u64(5));
        let mut out_a = vec![0.0; locs.len()];
        let mut out_b = vec![0.0; locs.len()];
        strict.sample_into(&mut a, &mut out_a);
        tolerant.sample_into(&mut b, &mut out_b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn cholesky_ladder_falls_back_to_eigen_on_indefinite_kernel() {
        // An unclamped linear decay goes negative at large separation:
        // its Gram on spread points is strongly indefinite, beyond any
        // jitter rung. The strict path refuses; the tolerant path
        // degrades to the eigen factor.
        let kernel = crate::faultinject::IndefiniteKernel { slope: 1.0 };
        let locs = grid_locations(7);
        assert!(CholeskySampler::new(&kernel, &locs).is_err());
        let mut report = crate::DegradationReport::new();
        let sampler = CholeskySampler::new_with_report(&kernel, &locs, &mut report).unwrap();
        assert!(report
            .events()
            .iter()
            .any(|e| matches!(e, crate::DegradationEvent::EigenSamplerFallback { .. })));
        assert!(sampler.cholesky().is_none());
        assert_eq!(sampler.node_count(), locs.len());
        // The fallback still samples finite, correlated fields.
        let mut normals = NormalSource::new(StdRng::seed_from_u64(17));
        let mut out = vec![0.0; locs.len()];
        for _ in 0..10 {
            sampler.sample_into(&mut normals, &mut out);
            assert!(out.iter().all(|v| v.is_finite()));
        }
        // Coincident points are still perfectly correlated under the
        // clamped covariance.
        let corr = empirical_corr(&sampler, 0, 0, 500);
        assert!((corr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kle_sampler_with_report_clamps_offdie_gates() {
        let kernel = GaussianKernel::new(1.0);
        let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.05).build().unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = vec![Point2::new(0.1, 0.1), Point2::new(4.0, 4.0)];
        // Strict path refuses; tolerant path clamps and records.
        assert!(KleFieldSampler::new(&kle, &mesh, 10, &locs).is_err());
        let mut report = crate::DegradationReport::new();
        let sampler =
            KleFieldSampler::new_with_report(&kle, &mesh, 10, &locs, &mut report).unwrap();
        assert_eq!(
            report.events(),
            &[crate::DegradationEvent::PointsClamped { count: 1 }]
        );
        let mut normals = NormalSource::new(StdRng::seed_from_u64(3));
        let mut out = vec![0.0; 2];
        sampler.sample_into(&mut normals, &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
        // All-inside gates: identical to strict, nothing recorded.
        let inside = grid_locations(3);
        let mut clean = crate::DegradationReport::new();
        let s =
            KleFieldSampler::new_with_report(&kle, &mesh, 10, &inside, &mut clean).unwrap();
        assert!(clean.is_clean());
        assert_eq!(s.node_count(), 9);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let kernel = GaussianKernel::new(1.0);
        let locs = grid_locations(3);
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        let mut a = NormalSource::new(StdRng::seed_from_u64(9));
        let mut b = NormalSource::new(StdRng::seed_from_u64(9));
        let mut out_a = vec![0.0; 9];
        let mut out_b = vec![0.0; 9];
        sampler.sample_into(&mut a, &mut out_a);
        sampler.sample_into(&mut b, &mut out_b);
        assert_eq!(out_a, out_b);
    }
}
