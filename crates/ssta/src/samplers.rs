//! The two correlated-field sample generators of the paper's Sec. 5.1.

use crate::{NormalSource, SstaError};
use klest_core::{GalerkinKle, KleSampler};
use klest_geometry::Point2;
use klest_kernels::CovarianceKernel;
use klest_linalg::{Cholesky, Matrix};
use klest_mesh::Mesh;
use rand::rngs::StdRng;

/// Diagonal "nugget" added to the gate covariance matrix so that gates
/// sharing (or nearly sharing) a placement cell do not make the matrix
/// numerically singular. This models the tiny independent per-device
/// residual that always exists on silicon.
const COVARIANCE_NUGGET: f64 = 1e-8;

/// A generator of correlated per-gate parameter fields: one call yields
/// one realisation of one statistical parameter (`L`, `W`, `Vt` or
/// `tox`) over all circuit nodes.
///
/// The trait is object-safe (the normal source is concretely
/// `NormalSource<StdRng>`), so a [`crate::ProcessModel`] can mix
/// sampler kinds across parameters.
pub trait GateFieldSampler: Send + Sync {
    /// Number of circuit nodes each realisation covers.
    fn node_count(&self) -> usize;

    /// Number of underlying random variables consumed per realisation —
    /// `N_g` for Algorithm 1, `r` for Algorithm 2. This is the quantity
    /// the paper's dimensionality-reduction argument is about.
    fn random_dims(&self) -> usize;

    /// Draws one realisation into `out` (`out.len() == node_count()`).
    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]);
}

impl<S: GateFieldSampler + ?Sized> GateFieldSampler for &S {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn random_dims(&self) -> usize {
        (**self).random_dims()
    }
    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        (**self).sample_into(normals, out)
    }
}

/// **Algorithm 1**: the reference sampler. Builds the full `N_g x N_g`
/// covariance matrix `K_ij = K(g_i, g_j)` from the kernel at the node
/// locations and Cholesky-factors it once; each realisation correlates a
/// fresh i.i.d. normal vector.
#[derive(Debug, Clone)]
pub struct CholeskySampler {
    chol: Cholesky,
}

impl CholeskySampler {
    /// Builds the covariance matrix at `locations` and factors it.
    ///
    /// A tiny diagonal nugget (1e-8) is added for numerical positive
    /// definiteness — see DESIGN.md.
    ///
    /// # Errors
    ///
    /// [`SstaError::Linalg`] if the (nugget-regularised) matrix is still
    /// not positive definite — the sign of an invalid kernel.
    pub fn new<K: CovarianceKernel + ?Sized>(
        kernel: &K,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        let n = locations.len();
        let cov = Matrix::from_fn(n, n, |i, j| {
            let base = kernel.eval(locations[i], locations[j]);
            if i == j {
                base + COVARIANCE_NUGGET
            } else {
                base
            }
        });
        Ok(CholeskySampler {
            chol: Cholesky::new(&cov)?,
        })
    }

    /// The Cholesky factorisation (exposed for benches that time setup
    /// separately).
    pub fn cholesky(&self) -> &Cholesky {
        &self.chol
    }
}

impl GateFieldSampler for CholeskySampler {
    fn node_count(&self) -> usize {
        self.chol.dim()
    }

    fn random_dims(&self) -> usize {
        self.chol.dim()
    }

    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        // z is drawn into `out` first, then correlated in place via a
        // scratch copy — one allocation per call would hurt the MC loop,
        // so the scratch lives in thread-local storage.
        thread_local! {
            static SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        SCRATCH.with(|cell| {
            let mut z = cell.borrow_mut();
            z.resize(out.len(), 0.0);
            normals.fill(&mut z);
            self.chol
                .correlate_into(&z, out)
                .expect("dimensions fixed at construction");
        });
    }
}

/// **Algorithm 2**: the paper's KLE sampler. Per realisation draws `r`
/// normals `ξ`, reconstructs the field over *all* mesh triangles
/// (`p_Δ = D_λ ξ`, eq. 28 — Algorithm 2 line 3) and gathers the per-gate
/// values through the containing-triangle index (lines 4–7).
///
/// [`KleFieldSampler::pregathered`] builds the fused variant — rows of
/// `D_λ` gathered per gate up front, skipping the full-mesh
/// reconstruction — an optimisation *beyond* the paper, benchmarked as an
/// ablation (`sampling` bench).
#[derive(Debug, Clone)]
pub struct KleFieldSampler {
    /// `n_triangles x r` reconstruction matrix `D √Λ`.
    d_lambda: Matrix,
    /// Containing-triangle index per circuit node.
    node_triangles: Vec<usize>,
    /// Fused per-node rows (the beyond-paper optimisation), when enabled.
    gathered: Option<Matrix>,
}

impl KleFieldSampler {
    /// Builds the paper-faithful sampler from a computed KLE, its mesh,
    /// the truncation rank and the node locations.
    ///
    /// # Errors
    ///
    /// [`SstaError::Kle`] if the rank is out of range or a node lies
    /// outside the meshed die.
    pub fn new(
        kle: &GalerkinKle,
        mesh: &Mesh,
        rank: usize,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        let sampler = KleSampler::new(kle, mesh, rank)?;
        let node_triangles = sampler.triangles_of(locations)?;
        Ok(KleFieldSampler {
            d_lambda: sampler.reconstruction_matrix().clone(),
            node_triangles,
            gathered: None,
        })
    }

    /// Builds the fused (pre-gathered) variant: per-sample cost
    /// `O(N_nodes · r)` instead of `O(n_triangles · r)`.
    ///
    /// # Errors
    ///
    /// Same as [`KleFieldSampler::new`].
    pub fn pregathered(
        kle: &GalerkinKle,
        mesh: &Mesh,
        rank: usize,
        locations: &[Point2],
    ) -> Result<Self, SstaError> {
        let mut s = Self::new(kle, mesh, rank, locations)?;
        let mut gathered = Matrix::zeros(locations.len(), rank);
        for (row, &t) in s.node_triangles.iter().enumerate() {
            gathered
                .row_mut(row)
                .copy_from_slice(&s.d_lambda.row(t)[..rank]);
        }
        s.gathered = Some(gathered);
        Ok(s)
    }

    /// The truncation rank `r`.
    pub fn rank(&self) -> usize {
        self.d_lambda.cols()
    }

    /// Is the beyond-paper fused gather enabled?
    pub fn is_pregathered(&self) -> bool {
        self.gathered.is_some()
    }

    /// The loading row of circuit node `node`: the `D_λ` row of its
    /// containing triangle (length `r`). A node's field value is the dot
    /// product of this row with the ξ vector — the linear map a
    /// canonical-form SSTA propagates symbolically.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn loading_row(&self, node: usize) -> &[f64] {
        let t = self.node_triangles[node];
        self.d_lambda.row(t)
    }
}

impl GateFieldSampler for KleFieldSampler {
    fn node_count(&self) -> usize {
        self.node_triangles.len()
    }

    fn random_dims(&self) -> usize {
        self.d_lambda.cols()
    }

    fn sample_into(&self, normals: &mut NormalSource<StdRng>, out: &mut [f64]) {
        thread_local! {
            static XI: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
            static FIELD: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        XI.with(|cell| {
            let mut xi = cell.borrow_mut();
            xi.resize(self.rank(), 0.0);
            normals.fill(&mut xi);
            if let Some(gathered) = &self.gathered {
                // Fused variant: one dot product per gate.
                for (o, row) in out.iter_mut().zip(0..gathered.rows()) {
                    *o = klest_linalg::vecops::dot(gathered.row(row), &xi);
                }
            } else {
                // Algorithm 2 as printed: reconstruct over every triangle,
                // then gather by containing-triangle index.
                FIELD.with(|fcell| {
                    let mut field = fcell.borrow_mut();
                    field.resize(self.d_lambda.rows(), 0.0);
                    for (f, row) in field.iter_mut().zip(0..self.d_lambda.rows()) {
                        *f = klest_linalg::vecops::dot(self.d_lambda.row(row), &xi);
                    }
                    for (o, &t) in out.iter_mut().zip(&self.node_triangles) {
                        *o = field[t];
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_core::{GalerkinKle, KleOptions};
    use klest_geometry::Rect;
    use klest_kernels::GaussianKernel;
    use klest_mesh::MeshBuilder;
    use rand::SeedableRng;

    fn grid_locations(side: usize) -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(Point2::new(
                    -0.9 + 1.8 * i as f64 / (side - 1) as f64,
                    -0.9 + 1.8 * j as f64 / (side - 1) as f64,
                ));
            }
        }
        pts
    }

    fn empirical_corr<S: GateFieldSampler>(
        sampler: &S,
        i: usize,
        j: usize,
        samples: usize,
    ) -> f64 {
        let mut normals = NormalSource::new(StdRng::seed_from_u64(101));
        let mut buf = vec![0.0; sampler.node_count()];
        let (mut sij, mut sii, mut sjj) = (0.0, 0.0, 0.0);
        for _ in 0..samples {
            sampler.sample_into(&mut normals, &mut buf);
            sij += buf[i] * buf[j];
            sii += buf[i] * buf[i];
            sjj += buf[j] * buf[j];
        }
        sij / (sii * sjj).sqrt()
    }

    #[test]
    fn cholesky_sampler_matches_kernel_correlation() {
        let kernel = GaussianKernel::new(2.0);
        let locs = grid_locations(5);
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        assert_eq!(sampler.node_count(), 25);
        assert_eq!(sampler.random_dims(), 25);
        // Nearby pair: strong correlation; far pair: weak.
        let near = empirical_corr(&sampler, 0, 1, 4000);
        let expected_near = kernel.eval(locs[0], locs[1]);
        assert!((near - expected_near).abs() < 0.05, "{near} vs {expected_near}");
        let far = empirical_corr(&sampler, 0, 24, 4000);
        let expected_far = kernel.eval(locs[0], locs[24]);
        assert!((far - expected_far).abs() < 0.07, "{far} vs {expected_far}");
    }

    #[test]
    fn cholesky_sampler_handles_duplicate_locations() {
        // Two gates in the same placement cell: the nugget keeps the
        // matrix factorable.
        let kernel = GaussianKernel::new(1.0);
        let locs = vec![Point2::new(0.0, 0.0), Point2::new(0.0, 0.0), Point2::new(0.5, 0.5)];
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        let corr = empirical_corr(&sampler, 0, 1, 2000);
        assert!(corr > 0.99, "coincident gates must be ~perfectly correlated, got {corr}");
    }

    #[test]
    fn kle_sampler_matches_kernel_correlation() {
        let kernel = GaussianKernel::new(2.0);
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.01)
            .min_angle_degrees(28.0)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = grid_locations(5);
        let sampler = KleFieldSampler::new(&kle, &mesh, 25, &locs).unwrap();
        assert_eq!(sampler.node_count(), 25);
        assert_eq!(sampler.random_dims(), 25);
        assert_eq!(sampler.rank(), 25);
        let near = empirical_corr(&sampler, 0, 1, 4000);
        // The KLE field is piecewise constant, so the exact target is the
        // kernel between the containing triangles' centroids, not between
        // the raw points.
        let locator = mesh.locator();
        let c0 = mesh.centroids()[locator.locate(locs[0]).unwrap()];
        let c1 = mesh.centroids()[locator.locate(locs[1]).unwrap()];
        let expected_near = kernel.eval(c0, c1);
        assert!((near - expected_near).abs() < 0.06, "{near} vs {expected_near}");
    }

    #[test]
    fn kle_sampler_dimensionality_reduction() {
        // The headline claim: thousands of correlated RVs -> r = 25.
        let kernel = GaussianKernel::new(2.0);
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.02)
            .build()
            .unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = grid_locations(40); // 1600 "gates"
        let sampler = KleFieldSampler::new(&kle, &mesh, 25, &locs).unwrap();
        assert_eq!(sampler.node_count(), 1600);
        assert_eq!(sampler.random_dims(), 25);
        let chol = CholeskySampler::new(&kernel, &locs).unwrap();
        assert_eq!(chol.random_dims(), 1600);
    }

    #[test]
    fn kle_sampler_rejects_offdie_gate() {
        let kernel = GaussianKernel::new(1.0);
        let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.1).build().unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let e = KleFieldSampler::new(&kle, &mesh, 10, &[Point2::new(3.0, 0.0)]);
        assert!(matches!(e, Err(SstaError::Kle(_))));
    }

    #[test]
    fn pregathered_matches_paper_faithful() {
        // Same ξ stream -> identical per-gate fields, by construction.
        let kernel = GaussianKernel::new(2.0);
        let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.05).build().unwrap();
        let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).unwrap();
        let locs = grid_locations(6);
        let paper = KleFieldSampler::new(&kle, &mesh, 12, &locs).unwrap();
        let fused = KleFieldSampler::pregathered(&kle, &mesh, 12, &locs).unwrap();
        assert!(!paper.is_pregathered());
        assert!(fused.is_pregathered());
        assert_eq!(paper.rank(), fused.rank());
        let mut a = NormalSource::new(StdRng::seed_from_u64(33));
        let mut b = NormalSource::new(StdRng::seed_from_u64(33));
        let mut out_a = vec![0.0; locs.len()];
        let mut out_b = vec![0.0; locs.len()];
        for _ in 0..5 {
            paper.sample_into(&mut a, &mut out_a);
            fused.sample_into(&mut b, &mut out_b);
            for (x, y) in out_a.iter().zip(out_b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let kernel = GaussianKernel::new(1.0);
        let locs = grid_locations(3);
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        let mut a = NormalSource::new(StdRng::seed_from_u64(9));
        let mut b = NormalSource::new(StdRng::seed_from_u64(9));
        let mut out_a = vec![0.0; 9];
        let mut out_b = vec![0.0; 9];
        sampler.sample_into(&mut a, &mut out_a);
        sampler.sample_into(&mut b, &mut out_b);
        assert_eq!(out_a, out_b);
    }
}
