//! Streaming statistics for Monte Carlo outputs.

/// Mean / standard deviation summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
}

impl SummaryStats {
    /// Summarises a slice.
    pub fn of(samples: &[f64]) -> Self {
        let count = samples.len();
        if count == 0 {
            return SummaryStats {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        SummaryStats {
            count,
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Relative mismatch of this summary's mean against a reference, in
    /// percent (the `e_μ` of Table 1).
    pub fn mean_error_pct(&self, reference: &SummaryStats) -> f64 {
        100.0 * (self.mean - reference.mean).abs() / reference.mean.abs().max(f64::MIN_POSITIVE)
    }

    /// Relative mismatch of this summary's std-dev against a reference,
    /// in percent (the `e_σ` of Table 1).
    pub fn std_error_pct(&self, reference: &SummaryStats) -> f64 {
        100.0 * (self.std_dev - reference.std_dev).abs()
            / reference.std_dev.abs().max(f64::MIN_POSITIVE)
    }

    /// Half-width of the mean's confidence interval at `z` standard
    /// errors: `z · s/√n`. This is what a truncated (salvaged) run widens
    /// by `√(planned/completed)` — fewer samples, same per-sample σ.
    /// Returns 0 for fewer than two samples.
    pub fn mean_ci_halfwidth(&self, z: f64) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            z * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Empirical quantile of a sample set by linear interpolation between
/// order statistics (`q` in `[0, 1]`). SSTA users track the 95th/99th
/// percentile delay as the timing sign-off number.
///
/// Returns 0 for an empty slice.
///
/// NaN samples sort last (IEEE total order), so a poisoned sample set
/// yields NaN quantiles near `q = 1` rather than a panic.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Welford accumulators for many outputs at once (one mean/variance per
/// primary output of the circuit), mergeable across Monte Carlo worker
/// threads.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputStats {
    count: usize,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl OutputStats {
    /// Accumulator over `outputs` parallel series.
    pub fn new(outputs: usize) -> Self {
        OutputStats {
            count: 0,
            mean: vec![0.0; outputs],
            m2: vec![0.0; outputs],
        }
    }

    /// Number of tracked series.
    pub fn outputs(&self) -> usize {
        self.mean.len()
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one sample vector (one value per output).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the accumulator width.
    pub fn push(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.mean.len());
        self.count += 1;
        let n = self.count as f64;
        for (i, &v) in values.iter().enumerate() {
            let delta = v - self.mean[i];
            self.mean[i] += delta / n;
            self.m2[i] += delta * (v - self.mean[i]);
        }
    }

    /// Merges another accumulator (Chan's parallel Welford update).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &OutputStats) {
        assert_eq!(self.mean.len(), other.mean.len());
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        for i in 0..self.mean.len() {
            let delta = other.mean[i] - self.mean[i];
            self.mean[i] += delta * nb / n;
            self.m2[i] += other.m2[i] + delta * delta * na * nb / n;
        }
        self.count += other.count;
    }

    /// Raw Welford accumulator parts `(count, means, m2s)` — the exact
    /// internal state, for checkpoint serialization. Rebuilding via
    /// [`OutputStats::from_raw_parts`] and continuing to [`push`](Self::push)
    /// reproduces the uninterrupted accumulation bitwise.
    pub fn raw_parts(&self) -> (usize, &[f64], &[f64]) {
        (self.count, &self.mean, &self.m2)
    }

    /// Rebuilds an accumulator from [`OutputStats::raw_parts`]. Returns
    /// `None` when the two vectors disagree in width (a corrupted
    /// checkpoint), never a panic.
    pub fn from_raw_parts(count: usize, mean: Vec<f64>, m2: Vec<f64>) -> Option<Self> {
        if mean.len() != m2.len() {
            return None;
        }
        Some(OutputStats { count, mean, m2 })
    }

    /// Mean of output `i`.
    pub fn mean(&self, i: usize) -> f64 {
        self.mean[i]
    }

    /// Unbiased standard deviation of output `i` (0 for < 2 samples).
    pub fn std_dev(&self, i: usize) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2[i] / (self.count - 1) as f64).sqrt()
        }
    }

    /// Average over outputs of the relative σ error against a reference,
    /// in percent — the Fig. 6 metric ("error is averaged across all the
    /// outputs of the circuit").
    pub fn avg_sigma_error_pct(&self, reference: &OutputStats) -> f64 {
        assert_eq!(self.outputs(), reference.outputs());
        let mut total = 0.0;
        let mut counted = 0usize;
        for i in 0..self.outputs() {
            let ref_sigma = reference.std_dev(i);
            if ref_sigma > 0.0 {
                total += 100.0 * (self.std_dev(i) - ref_sigma).abs() / ref_sigma;
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }

    /// Average over outputs of the relative mean error against a
    /// reference, in percent.
    pub fn avg_mean_error_pct(&self, reference: &OutputStats) -> f64 {
        assert_eq!(self.outputs(), reference.outputs());
        let mut total = 0.0;
        let mut counted = 0usize;
        for i in 0..self.outputs() {
            let ref_mean = reference.mean(i);
            if ref_mean.abs() > 0.0 {
                total += 100.0 * (self.mean(i) - ref_mean).abs() / ref_mean.abs();
                counted += 1;
            }
        }
        if counted == 0 {
            0.0
        } else {
            total / counted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_known_values() {
        let s = SummaryStats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let empty = SummaryStats::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(SummaryStats::of(&[3.0]).std_dev, 0.0);
    }

    #[test]
    fn relative_errors() {
        let a = SummaryStats {
            count: 10,
            mean: 105.0,
            std_dev: 9.0,
        };
        let reference = SummaryStats {
            count: 10,
            mean: 100.0,
            std_dev: 10.0,
        };
        assert!((a.mean_error_pct(&reference) - 5.0).abs() < 1e-12);
        assert!((a.std_error_pct(&reference) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ci_halfwidth_scales_with_samples() {
        let s = SummaryStats {
            count: 100,
            mean: 0.0,
            std_dev: 2.0,
        };
        // z·s/√n = 1.96 · 2 / 10
        assert!((s.mean_ci_halfwidth(1.96) - 0.392).abs() < 1e-12);
        let quarter = SummaryStats { count: 25, ..s };
        // A quarter of the samples → twice the half-width.
        assert!(
            (quarter.mean_ci_halfwidth(1.96) - 2.0 * s.mean_ci_halfwidth(1.96)).abs() < 1e-12
        );
        assert_eq!(SummaryStats::of(&[1.0]).mean_ci_halfwidth(1.96), 0.0);
    }

    #[test]
    fn quantile_known_values() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
        // Interpolation between order statistics.
        assert!((quantile(&xs, 0.1) - 1.4).abs() < 1e-12);
        // Order-independence.
        let shuffled = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(quantile(&shuffled, 0.5), 3.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    #[should_panic]
    fn quantile_out_of_range_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn welford_matches_batch() {
        let data = [
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 15.0],
            vec![4.0, 5.0],
            vec![5.0, 0.0],
        ];
        let mut acc = OutputStats::new(2);
        for row in &data {
            acc.push(row);
        }
        for out in 0..2 {
            let col: Vec<f64> = data.iter().map(|r| r[out]).collect();
            let batch = SummaryStats::of(&col);
            assert!((acc.mean(out) - batch.mean).abs() < 1e-12);
            assert!((acc.std_dev(out) - batch.std_dev).abs() < 1e-12);
        }
        assert_eq!(acc.count(), 5);
        assert_eq!(acc.outputs(), 2);
    }

    #[test]
    fn merge_equals_sequential() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i as f64).sin() * 3.0 + 1.0, (i as f64 * 0.7).cos()])
            .collect();
        let mut whole = OutputStats::new(2);
        for r in &rows {
            whole.push(r);
        }
        let mut a = OutputStats::new(2);
        let mut b = OutputStats::new(2);
        for (i, r) in rows.iter().enumerate() {
            if i % 3 == 0 {
                a.push(r);
            } else {
                b.push(r);
            }
        }
        let mut merged = OutputStats::new(2);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), whole.count());
        for out in 0..2 {
            assert!((merged.mean(out) - whole.mean(out)).abs() < 1e-12);
            assert!((merged.std_dev(out) - whole.std_dev(out)).abs() < 1e-12);
        }
        // Merging an empty accumulator is a no-op.
        let before = merged.clone();
        merged.merge(&OutputStats::new(2));
        assert_eq!(merged, before);
    }

    #[test]
    fn raw_parts_roundtrip_continues_bitwise() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i as f64).sin(), (i as f64 * 1.3).cos()])
            .collect();
        let mut whole = OutputStats::new(2);
        let mut prefix = OutputStats::new(2);
        for r in &rows[..17] {
            whole.push(r);
            prefix.push(r);
        }
        let (count, mean, m2) = prefix.raw_parts();
        let mut resumed =
            OutputStats::from_raw_parts(count, mean.to_vec(), m2.to_vec()).unwrap();
        for r in &rows[17..] {
            whole.push(r);
            resumed.push(r);
        }
        assert_eq!(resumed, whole, "resumed Welford state must match bitwise");
        assert!(OutputStats::from_raw_parts(3, vec![0.0], vec![0.0, 0.0]).is_none());
    }

    #[test]
    fn error_metrics_across_outputs() {
        let mut reference = OutputStats::new(2);
        let mut approx = OutputStats::new(2);
        // Two outputs with different scales.
        for i in 0..100 {
            let x = (i % 10) as f64;
            reference.push(&[x, 10.0 * x]);
            approx.push(&[x * 1.1, 10.0 * x]); // 10% inflated sigma on output 0
        }
        let e = approx.avg_sigma_error_pct(&reference);
        assert!((e - 5.0).abs() < 0.2, "average of 10% and 0% is ~5%, got {e}");
        assert!(approx.avg_mean_error_pct(&reference) > 0.0);
    }
}
