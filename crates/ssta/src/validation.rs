//! Empirical validation of field generators against their kernel.
//!
//! Any [`GateFieldSampler`] claims to produce fields whose correlation
//! between two die locations follows a kernel. This module measures
//! that claim: draw realisations, estimate the correlation at probe
//! pairs, and report the worst deviation — the end-to-end check a user
//! should run after wiring a custom kernel or sampler into the flow.

use crate::{GateFieldSampler, NormalSource};
use klest_geometry::Point2;
use klest_kernels::CovarianceKernel;
use klest_rng::{SeedableRng, StdRng};

/// One probe pair's empirical-vs-kernel comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCheck {
    /// First probe location.
    pub a: Point2,
    /// Second probe location.
    pub b: Point2,
    /// Correlation estimated from samples.
    pub empirical: f64,
    /// Kernel prediction `K(a, b)`.
    pub expected: f64,
}

impl PairCheck {
    /// Absolute deviation between empirical and expected correlation.
    pub fn deviation(&self) -> f64 {
        (self.empirical - self.expected).abs()
    }
}

/// Summary of an empirical correlation validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Per-pair results.
    pub pairs: Vec<PairCheck>,
    /// Worst absolute deviation across pairs.
    pub max_deviation: f64,
    /// Mean per-location field variance (should be ~1 minus truncation
    /// loss for a normalized parameter).
    pub mean_variance: f64,
    /// Samples drawn.
    pub samples: usize,
}

impl ValidationReport {
    /// Does the empirical correlation track the kernel within `tol`
    /// everywhere?
    pub fn passes(&self, tol: f64) -> bool {
        self.max_deviation <= tol
    }
}

/// Draws `samples` realisations from `sampler` (whose node `i`
/// corresponds to `locations[i]`) and compares empirical correlations at
/// the given index pairs against `kernel`.
///
/// # Panics
///
/// Panics if any pair index is out of range or `locations.len()` differs
/// from the sampler's node count.
pub fn validate_sampler<S: GateFieldSampler, K: CovarianceKernel + ?Sized>(
    sampler: &S,
    kernel: &K,
    locations: &[Point2],
    index_pairs: &[(usize, usize)],
    samples: usize,
    seed: u64,
) -> ValidationReport {
    let n = sampler.node_count();
    assert_eq!(locations.len(), n, "one location per sampler node");
    for &(i, j) in index_pairs {
        assert!(i < n && j < n, "probe pair ({i}, {j}) out of range");
    }
    let mut normals = NormalSource::new(StdRng::seed_from_u64(seed));
    let mut field = vec![0.0; n];
    // Accumulate first and second moments for every probed node.
    let mut probed: Vec<usize> = index_pairs
        .iter()
        .flat_map(|&(i, j)| [i, j])
        .collect();
    probed.sort_unstable();
    probed.dedup();
    let mut sums = vec![0.0; probed.len()];
    let mut sq_sums = vec![0.0; probed.len()];
    let mut cross = vec![0.0; index_pairs.len()];
    for _ in 0..samples {
        sampler.sample_into(&mut normals, &mut field);
        for (slot, &node) in probed.iter().enumerate() {
            sums[slot] += field[node];
            sq_sums[slot] += field[node] * field[node];
        }
        for (slot, &(i, j)) in index_pairs.iter().enumerate() {
            cross[slot] += field[i] * field[j];
        }
    }
    let nf = samples as f64;
    let idx_of = |node: usize| probed.binary_search(&node).expect("probed");
    let mean = |node: usize| sums[idx_of(node)] / nf;
    let var = |node: usize| (sq_sums[idx_of(node)] / nf - mean(node) * mean(node)).max(1e-300);

    let mut pairs = Vec::with_capacity(index_pairs.len());
    let mut max_deviation = 0.0f64;
    for (slot, &(i, j)) in index_pairs.iter().enumerate() {
        let cov = cross[slot] / nf - mean(i) * mean(j);
        let empirical = cov / (var(i) * var(j)).sqrt();
        let expected = kernel.eval(locations[i], locations[j]);
        let check = PairCheck {
            a: locations[i],
            b: locations[j],
            empirical,
            expected,
        };
        max_deviation = max_deviation.max(check.deviation());
        pairs.push(check);
    }
    let mean_variance = probed.iter().map(|&node| var(node)).sum::<f64>() / probed.len() as f64;
    ValidationReport {
        pairs,
        max_deviation,
        mean_variance,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CholeskySampler;
    use klest_kernels::GaussianKernel;

    fn grid(side: usize) -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..side {
            for j in 0..side {
                pts.push(Point2::new(
                    -0.8 + 1.6 * i as f64 / (side - 1) as f64,
                    -0.8 + 1.6 * j as f64 / (side - 1) as f64,
                ));
            }
        }
        pts
    }

    #[test]
    fn cholesky_sampler_validates_against_its_kernel() {
        let kernel = GaussianKernel::new(2.0);
        let locs = grid(4);
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        let pairs = [(0usize, 1usize), (0, 5), (0, 15), (3, 12)];
        let report = validate_sampler(&sampler, &kernel, &locs, &pairs, 6000, 42);
        assert_eq!(report.pairs.len(), 4);
        assert_eq!(report.samples, 6000);
        assert!(
            report.passes(0.06),
            "max deviation {}",
            report.max_deviation
        );
        assert!((report.mean_variance - 1.0).abs() < 0.06, "{}", report.mean_variance);
        for p in &report.pairs {
            assert!(p.deviation() <= report.max_deviation);
        }
    }

    #[test]
    fn mismatched_kernel_is_detected() {
        // Sample from a short-range kernel, validate against a long-range
        // one: the report must fail.
        let sampled = GaussianKernel::new(10.0);
        let claimed = GaussianKernel::new(0.5);
        let locs = grid(4);
        let sampler = CholeskySampler::new(&sampled, &locs).unwrap();
        let pairs = [(0usize, 1usize), (0, 5)];
        let report = validate_sampler(&sampler, &claimed, &locs, &pairs, 4000, 7);
        assert!(
            !report.passes(0.1),
            "should detect the kernel mismatch, max dev {}",
            report.max_deviation
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_pair_panics() {
        let kernel = GaussianKernel::new(1.0);
        let locs = grid(3);
        let sampler = CholeskySampler::new(&kernel, &locs).unwrap();
        let _ = validate_sampler(&sampler, &kernel, &locs, &[(0, 99)], 10, 1);
    }
}
