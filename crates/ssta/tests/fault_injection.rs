//! Fault-injection integration suite: drives the KLE → SSTA pipeline with
//! deliberately hostile inputs from `klest_ssta::faultinject` and asserts
//! the degradation contract of DESIGN.md — every fault either surfaces as
//! a typed error or is repaired with a recorded [`DegradationEvent`];
//! no panic ever escapes a library crate.

use klest_circuit::{generate, GeneratorConfig};
use klest_core::{GalerkinKle, KleError, KleOptions, TruncationCriterion};
use klest_geometry::{Point2, Rect};
use klest_kernels::validity::repair_to_psd;
use klest_kernels::{CovarianceKernel, GaussianKernel};
use klest_linalg::{LinalgError, Matrix, SymmetricEigen};
use klest_mesh::{Mesh, MeshBuilder, MeshError};
use klest_rng::{SeedableRng, StdRng};
use klest_runtime::{CancelToken, StageBudgets};
use klest_ssta::experiments::{
    compare_methods_supervised, compare_methods_with_report, CircuitSetup, KleContext,
};
use klest_ssta::faultinject::{
    degenerate_mesh_parts, nan_poisoned_matrix, offdie_locations, FaultPlan, IndefiniteKernel,
    NanKernel, NearSingularKernel, Stage,
};
use klest_ssta::{
    run_monte_carlo, run_monte_carlo_supervised_with_faults, CholeskySampler, DegradationEvent,
    DegradationReport, GateFieldSampler, KleFieldSampler, McConfig, NormalSource, SstaError,
};
use std::time::Duration;

fn grid(side: usize) -> Vec<Point2> {
    let mut pts = Vec::new();
    for i in 0..side {
        for j in 0..side {
            pts.push(Point2::new(
                -0.9 + 1.8 * i as f64 / (side - 1) as f64,
                -0.9 + 1.8 * j as f64 / (side - 1) as f64,
            ));
        }
    }
    pts
}

fn draw_all_finite<S: GateFieldSampler>(sampler: &S, samples: usize) {
    let mut normals = NormalSource::new(StdRng::seed_from_u64(42));
    let mut buf = vec![0.0; sampler.node_count()];
    for _ in 0..samples {
        sampler.sample_into(&mut normals, &mut buf);
        assert!(
            buf.iter().all(|v| v.is_finite()),
            "sampler produced a non-finite value"
        );
    }
}

fn kle_setup() -> (Mesh, GalerkinKle) {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.05)
        .min_angle_degrees(25.0)
        .build()
        .expect("unit-die mesh");
    let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(1.5), KleOptions::default())
        .expect("healthy KLE");
    (mesh, kle)
}

#[test]
fn indefinite_kernel_strict_errors_tolerant_degrades() {
    let kernel = IndefiniteKernel { slope: 1.0 };
    let locs = grid(7);
    // Strict constructor: typed error, no repair.
    assert!(matches!(
        CholeskySampler::new(&kernel, &locs),
        Err(SstaError::Linalg(_))
    ));
    // Fault-tolerant constructor: eigendecomposition fallback, recorded.
    let mut report = DegradationReport::new();
    let sampler = CholeskySampler::new_with_report(&kernel, &locs, &mut report)
        .expect("eigen fallback must succeed on a finite indefinite matrix");
    assert!(sampler.cholesky().is_none(), "must run on the eigen factor");
    assert!(report.events().iter().any(|e| matches!(
        e,
        DegradationEvent::EigenSamplerFallback { min_eigenvalue } if *min_eigenvalue < 0.0
    )));
    draw_all_finite(&sampler, 50);
}

#[test]
fn near_singular_kernel_repaired_by_jitter_rung() {
    // Diagonal deficit 5e-8 defeats the 1e-8 construction nugget but a
    // ladder rung repairs it without abandoning Cholesky.
    let kernel = NearSingularKernel { deficit: 5e-8 };
    let locs = grid(5);
    assert!(CholeskySampler::new(&kernel, &locs).is_err());
    let mut report = DegradationReport::new();
    let sampler =
        CholeskySampler::new_with_report(&kernel, &locs, &mut report).expect("jitter repair");
    assert!(
        sampler.cholesky().is_some(),
        "a jitter rung, not the eigen fallback, must repair this"
    );
    assert!(report.events().iter().any(|e| matches!(
        e,
        DegradationEvent::CholeskyJitter { epsilon, attempts } if *epsilon <= 1e-6 && *attempts >= 1
    )));
    draw_all_finite(&sampler, 50);
}

#[test]
fn nan_kernel_yields_typed_error_not_panic() {
    // A NaN-poisoned covariance cannot be repaired by jitter or by the
    // eigen fallback: the whole ladder must end in a typed error.
    let kernel = NanKernel;
    let locs = grid(4);
    let mut report = DegradationReport::new();
    let result = CholeskySampler::new_with_report(&kernel, &locs, &mut report);
    assert!(matches!(
        result,
        Err(SstaError::Linalg(LinalgError::NonFinite { .. }))
    ));
}

#[test]
fn nan_poisoned_matrix_rejected_by_eigensolver_and_repair() {
    let m = nan_poisoned_matrix(6, 1, 4);
    assert!(matches!(
        SymmetricEigen::new(&m),
        Err(LinalgError::NonFinite { .. })
    ));
    assert!(repair_to_psd(&m, 1e-10).is_err());
}

#[test]
fn degenerate_mesh_rejected_with_typed_error() {
    let (domain, points, triangles) = degenerate_mesh_parts();
    let result = Mesh::from_parts(domain, points, triangles);
    assert!(matches!(
        result,
        Err(MeshError::DegenerateTriangle { index: 1, .. })
    ));
}

#[test]
fn offdie_gates_strict_error_tolerant_clamp() {
    let (mesh, kle) = kle_setup();
    let rank = kle.retained().min(8);
    let locs = offdie_locations(6); // odd indices off-die → 3 clamps
    // Strict path: first off-die gate reported by index.
    assert!(matches!(
        KleFieldSampler::new(&kle, &mesh, rank, &locs),
        Err(SstaError::Kle(KleError::PointOutsideMesh { index: 1 }))
    ));
    // Tolerant path: clamped to nearest-centroid triangles, recorded.
    let mut report = DegradationReport::new();
    let sampler = KleFieldSampler::new_with_report(&kle, &mesh, rank, &locs, &mut report)
        .expect("clamping path");
    assert!(report
        .events()
        .iter()
        .any(|e| matches!(e, DegradationEvent::PointsClamped { count: 3 })));
    draw_all_finite(&sampler, 50);
}

#[test]
fn indefinite_gram_psd_repair_is_recorded_and_effective() {
    // PsdRepaired: project the indefinite Gram of the hostile kernel onto
    // the PSD cone, record the event, and verify the repaired matrix both
    // has a non-negative spectrum and sits exactly frobenius_delta away.
    let kernel = IndefiniteKernel { slope: 1.0 };
    let locs = grid(7);
    let gram = Matrix::from_fn(locs.len(), locs.len(), |i, j| kernel.eval(locs[i], locs[j]));
    let repair = repair_to_psd(&gram, 1e-10)
        .expect("finite matrix")
        .expect("the injected kernel must be indefinite on a 7x7 grid");
    assert!(repair.clamped >= 1);
    assert!(repair.min_eigenvalue_before < 0.0);

    let mut report = DegradationReport::new();
    report.record(DegradationEvent::PsdRepaired {
        clamped: repair.clamped,
        frobenius_delta: repair.frobenius_delta,
    });
    assert!(!report.is_clean());
    assert!(report.events().iter().any(|e| matches!(
        e,
        DegradationEvent::PsdRepaired { clamped, frobenius_delta }
            if *clamped >= 1 && *frobenius_delta > 0.0
    )));
    assert!(report.to_string().contains("clamped"));

    // The repaired matrix is PSD …
    let eig = SymmetricEigen::new(&repair.matrix).expect("repaired matrix decomposes");
    let min_after = eig.eigenvalues().last().copied().unwrap_or(0.0);
    assert!(min_after >= -1e-9, "repair left eigenvalue {min_after}");
    // … and the perturbation size is exactly what the event reports.
    let delta = repair
        .matrix
        .sub(&gram)
        .expect("same shape")
        .frobenius_norm();
    assert!(
        (delta - repair.frobenius_delta).abs() <= 1e-9 * (1.0 + delta),
        "reported delta {} vs actual {delta}",
        repair.frobenius_delta
    );
}

#[test]
fn starved_truncation_budget_is_recorded_by_context() {
    // TruncationBudgetUnmet: a 1e-12 variance budget with only a handful
    // of computed eigenpairs cannot be met on the coarse mesh.
    let criterion = TruncationCriterion::new(4, 1e-12);
    let ctx = KleContext::build(&GaussianKernel::new(1.5), 0.05, 25.0, &criterion)
        .expect("context builds even when the budget saturates");
    assert!(!ctx.budget_met);
    assert!(ctx.degradation.events().iter().any(|e| matches!(
        e,
        DegradationEvent::TruncationBudgetUnmet { rank, computed }
            if *rank <= *computed && *rank >= 1
    )));
}

#[test]
fn unmet_budget_degrades_kle_arm_to_cholesky() {
    // KleDegradedToCholesky: driving the full comparison with a saturated
    // context must abandon Algorithm 2, reuse Algorithm 1's sampler, and
    // record both the cause and the consequence.
    let criterion = TruncationCriterion::new(4, 1e-12);
    let kernel = GaussianKernel::new(1.5);
    let ctx = KleContext::build(&kernel, 0.05, 25.0, &criterion).expect("saturated context");
    let circuit = generate("fault-degrade", GeneratorConfig::combinational(20, 77))
        .expect("circuit generation");
    let setup = CircuitSetup::prepare(&circuit);
    let cmp = compare_methods_with_report(&setup, &kernel, &ctx, &McConfig::new(200, 9))
        .expect("comparison survives the degraded path");
    assert!(cmp.degradation.events().iter().any(|e| matches!(
        e,
        DegradationEvent::TruncationBudgetUnmet { .. }
    )));
    assert!(cmp.degradation.events().iter().any(|e| matches!(
        e,
        DegradationEvent::KleDegradedToCholesky { reason } if reason.contains("budget")
    )));
    // Both arms ran the same sampler, so the distributions are close.
    assert!((cmp.kle.mean - cmp.mc.mean).abs() / cmp.mc.mean < 0.05);
}

#[test]
fn eigensolver_fallback_event_contract() {
    // EigenSolverFallback: the QL solver converges on every matrix this
    // workspace can construct, so the event cannot be triggered end to
    // end; pin the contract instead — the report plumbing and wording,
    // and the Jacobi engine the fallback switches to, which must agree
    // with QL on the hostile indefinite Gram it would be handed.
    let mut report = DegradationReport::new();
    report.record(DegradationEvent::EigenSolverFallback);
    assert!(!report.is_clean());
    assert!(report.to_string().contains("Jacobi fallback"));

    let kernel = IndefiniteKernel { slope: 1.0 };
    let locs = grid(6);
    let gram = Matrix::from_fn(locs.len(), locs.len(), |i, j| kernel.eval(locs[i], locs[j]));
    let ql = SymmetricEigen::new(&gram).expect("QL");
    let jacobi = SymmetricEigen::new_jacobi(&gram).expect("Jacobi");
    let scale = gram.max_abs().max(1.0);
    for (a, b) in ql.eigenvalues().iter().zip(jacobi.eigenvalues()) {
        assert!(
            (a - b).abs() <= 1e-9 * scale,
            "fallback engine disagrees: QL {a} vs Jacobi {b}"
        );
    }
}

#[test]
fn injected_panic_is_retried_and_the_run_recovers_exactly() {
    // PanicAt: a transient worker panic must be absorbed by the
    // supervisor's retry and leave no statistical trace — the retried
    // shard reruns its original seed, so the samples are bitwise those of
    // an uninjected run.
    let circuit = generate("rt-panic", GeneratorConfig::combinational(50, 21)).expect("circuit");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::new(2.0);
    let sampler = CholeskySampler::new(&kernel, setup.locations()).expect("sampler");
    let cfg = McConfig::new(80, 17).with_threads(2);
    let clean = run_monte_carlo(&setup.timer, &sampler, &cfg).expect("clean run");

    let plan = FaultPlan::new().panic_at(Stage::Mc, 0);
    let token = CancelToken::unlimited();
    let mut report = DegradationReport::new();
    let run = run_monte_carlo_supervised_with_faults(
        &setup.timer,
        &sampler,
        &cfg,
        &token,
        &plan,
        &mut report,
    )
    .expect("supervised run survives the injected panic");
    assert_eq!(run.worst_delays(), clean.worst_delays());
    let salvage = run.salvage().expect("salvage stats");
    assert_eq!(salvage.completed, 80);
    assert_eq!(salvage.shards_retried, 1);
    assert_eq!(salvage.worker_faults, 0);
    assert!(report.events().iter().any(|e| matches!(
        e,
        DegradationEvent::WorkerFault { stage: "mc/sample", shard: 0, recovered: true, attempts }
            if *attempts == 2
    )));
}

#[test]
fn injected_hang_is_broken_by_deadline_and_samples_salvaged() {
    // HangFor: a worker parked far beyond the deadline must be released
    // by cooperative cancellation; the sibling shard's samples survive.
    let circuit = generate("rt-hang", GeneratorConfig::combinational(50, 22)).expect("circuit");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::new(2.0);
    let sampler = CholeskySampler::new(&kernel, setup.locations()).expect("sampler");
    let cfg = McConfig::new(100, 9).with_threads(2);

    let plan = FaultPlan::new().hang_for(Stage::Mc, 600_000); // ten minutes
    let token = CancelToken::with_budget(klest_runtime::Budget::wall(Duration::from_millis(300)));
    let mut report = DegradationReport::new();
    let started = std::time::Instant::now();
    let run = run_monte_carlo_supervised_with_faults(
        &setup.timer,
        &sampler,
        &cfg,
        &token,
        &plan,
        &mut report,
    )
    .expect("hung run salvages the live shard");
    // The ten-minute hang did not serialize into wall time.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "deadline failed to break the hang"
    );
    let salvage = run.salvage().expect("salvage stats");
    assert!(salvage.truncated(), "{salvage:?}");
    assert!(salvage.completed > 0, "sibling shard must be salvaged");
    assert!(salvage.ci_widening > 1.0);
    assert!(report.events().iter().any(|e| matches!(
        e,
        DegradationEvent::Cancelled { stage: "mc/sample", .. }
    )));
    assert!(report
        .events()
        .iter()
        .any(|e| matches!(e, DegradationEvent::CiWidened { .. })));
}

#[test]
fn acceptance_panicking_shard_under_deadline_salvages_and_reports() {
    // The issue's acceptance scenario: a fault-injected comparison with a
    // panicking shard *and* a 2 s deadline completes, retries the shard,
    // salvages samples, and lands Cancelled + WorkerFault events in the
    // degradation report.
    let circuit = generate("rt-accept", GeneratorConfig::combinational(60, 23)).expect("circuit");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::new(2.0);
    let token = CancelToken::with_budget(klest_runtime::Budget::wall(Duration::from_secs(2)));
    let ctx = KleContext::build_supervised(
        &kernel,
        0.02,
        25.0,
        &TruncationCriterion::new(60, 0.01),
        &token,
        &StageBudgets::none(),
    )
    .expect("context builds inside the deadline");
    let mut budgets = StageBudgets::none();
    budgets.set("mc", Duration::from_millis(400));
    // Deterministic victims: shard 0 takes a transient panic (retried and
    // recovered), shard 1 hangs until its per-arm deadline breaks it.
    let plan = FaultPlan::new()
        .panic_at(Stage::Mc, 0)
        .hang_at(Stage::Mc, 1, 600_000);
    let cmp = compare_methods_supervised(
        &setup,
        &kernel,
        &ctx,
        &McConfig::new(300, 41).with_threads(2),
        &token,
        &budgets,
        Some(&plan),
    )
    .expect("supervised comparison survives panic + hang under deadline");
    let mc_salvage = cmp.mc_salvage.as_ref().expect("salvage stats");
    assert!(mc_salvage.completed > 0, "samples must be salvaged");
    assert!(mc_salvage.shards_retried >= 1, "the panicking shard retries");
    assert!(cmp.degradation.events().iter().any(|e| matches!(
        e,
        DegradationEvent::WorkerFault { stage: "mc/sample", .. }
    )));
    assert!(cmp.degradation.events().iter().any(|e| matches!(
        e,
        DegradationEvent::Cancelled { stage: "mc/sample", .. }
    )));
}

#[test]
fn healthy_inputs_record_no_degradation() {
    // The repair machinery must be invisible on clean inputs: same
    // factor as the strict path, empty report.
    let kernel = GaussianKernel::new(2.0);
    let locs = grid(5);
    let mut report = DegradationReport::new();
    let tolerant = CholeskySampler::new_with_report(&kernel, &locs, &mut report).unwrap();
    assert!(report.is_clean(), "unexpected events: {report}");
    assert!(tolerant.cholesky().is_some());

    let (mesh, kle) = kle_setup();
    let inside: Vec<Point2> = locs.iter().copied().filter(|p| Rect::unit_die().contains(*p)).collect();
    let mut report = DegradationReport::new();
    let _ = KleFieldSampler::new_with_report(&kle, &mesh, 5, &inside, &mut report).unwrap();
    assert!(report.is_clean(), "unexpected events: {report}");
}
