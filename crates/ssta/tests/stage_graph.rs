//! Stage-graph acceptance suite: the three `compare_methods*` entry
//! points are thin wrappers over one engine-routed dataflow, the
//! artifact cache returns bitwise-equal artifacts, and parallel Galerkin
//! assembly is invisible in the numbers for any worker count.

use klest_circuit::{generate, GeneratorConfig};
use klest_core::pipeline::{ArtifactCache, ExecPolicy, FrontEndConfig};
use klest_core::{TruncationCriterion, PARALLEL_MIN_TRIANGLES};
use klest_kernels::GaussianKernel;
use klest_runtime::{CancelToken, StageBudgets};
use klest_ssta::experiments::{
    compare_methods, compare_methods_supervised, compare_methods_with_report, CircuitSetup,
    KleContext, MethodComparison,
};
use klest_ssta::McConfig;
use std::sync::Arc;

fn setup() -> CircuitSetup {
    let circuit = generate("sg", GeneratorConfig::combinational(80, 5)).expect("generator");
    CircuitSetup::prepare(&circuit)
}

fn coarse_config() -> FrontEndConfig {
    FrontEndConfig::new(0.02, 25.0, TruncationCriterion::new(60, 0.01))
}

/// Bitwise equality of everything deterministic in a comparison (the
/// wall-clock columns are excluded by construction).
fn assert_stats_identical(a: &MethodComparison, b: &MethodComparison) {
    assert_eq!(a.mc.count, b.mc.count);
    assert_eq!(a.mc.mean.to_bits(), b.mc.mean.to_bits());
    assert_eq!(a.mc.std_dev.to_bits(), b.mc.std_dev.to_bits());
    assert_eq!(a.kle.mean.to_bits(), b.kle.mean.to_bits());
    assert_eq!(a.kle.std_dev.to_bits(), b.kle.std_dev.to_bits());
    assert_eq!(a.e_mu_pct.to_bits(), b.e_mu_pct.to_bits());
    assert_eq!(a.e_sigma_pct.to_bits(), b.e_sigma_pct.to_bits());
    assert_eq!(
        a.sigma_err_outputs_pct.to_bits(),
        b.sigma_err_outputs_pct.to_bits()
    );
    assert_eq!(a.rank, b.rank);
}

#[test]
fn three_entry_points_agree_bitwise() {
    // Acceptance criterion: with an untripped token, empty budgets and
    // no fault plan, all three public entry points — now wrappers over
    // the one engine dataflow — produce bitwise-equal statistics.
    let s = setup();
    let kernel = GaussianKernel::new(2.0);
    let ctx = KleContext::coarse(&kernel).expect("context");
    let cfg = McConfig::new(250, 17);
    let strict = compare_methods(&s, &kernel, &ctx, &cfg).expect("strict");
    let tolerant = compare_methods_with_report(&s, &kernel, &ctx, &cfg).expect("tolerant");
    let token = CancelToken::unlimited();
    let supervised = compare_methods_supervised(
        &s,
        &kernel,
        &ctx,
        &cfg,
        &token,
        &StageBudgets::none(),
        None,
    )
    .expect("supervised");
    assert_stats_identical(&strict, &tolerant);
    assert_stats_identical(&strict, &supervised);
    assert!(strict.mc_salvage.is_none() && tolerant.mc_salvage.is_none());
    let salvage = supervised.mc_salvage.as_ref().expect("supervised salvage");
    assert_eq!(salvage.completed, 250);
}

#[test]
fn cached_comparison_equals_uncached_exactly() {
    // Regression: routing the front end through the artifact cache must
    // not move a single bit of the comparison relative to the uncached
    // seed numbers — on the cold (store) pass or the warm (load) pass.
    let s = setup();
    let kernel = GaussianKernel::new(2.0);
    let cfg = McConfig::new(200, 9);
    let config = coarse_config();
    let uncached = KleContext::build_with(&kernel, &config, ExecPolicy::Plain, None).expect("ctx");
    let cache = ArtifactCache::new();
    let cold =
        KleContext::build_with(&kernel, &config, ExecPolicy::Plain, Some(&cache)).expect("cold");
    let warm =
        KleContext::build_with(&kernel, &config, ExecPolicy::Plain, Some(&cache)).expect("warm");
    // The warm context *is* the cold one: the cache hands back the same
    // Arc-shared artifacts rather than recomputing.
    assert!(Arc::ptr_eq(&cold.kle, &warm.kle));
    assert!(Arc::ptr_eq(&cold.mesh, &warm.mesh));
    let snap = cache.snapshot();
    assert!(snap.hits() >= 2, "mesh + spectrum hits, got {}", snap.hits());
    for (a, b) in uncached.kle.eigenvalues().iter().zip(cold.kle.eigenvalues()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let base = compare_methods(&s, &kernel, &uncached, &cfg).expect("base");
    let from_cold = compare_methods(&s, &kernel, &cold, &cfg).expect("from cold");
    let from_warm = compare_methods(&s, &kernel, &warm, &cfg).expect("from warm");
    assert_stats_identical(&base, &from_cold);
    assert_stats_identical(&base, &from_warm);
}

#[test]
fn perturbed_configuration_never_hits_the_cache() {
    // Invalidation-free correctness: any key ingredient change (kernel
    // parameter, mesh area) addresses different content entirely.
    let kernel = GaussianKernel::new(2.0);
    let cache = ArtifactCache::new();
    let config = coarse_config();
    KleContext::build_with(&kernel, &config, ExecPolicy::Plain, Some(&cache)).expect("seed");
    let baseline = cache.snapshot();
    let other_kernel = GaussianKernel::new(2.5);
    KleContext::build_with(&other_kernel, &config, ExecPolicy::Plain, Some(&cache))
        .expect("other kernel");
    let mut finer = coarse_config();
    finer.max_area_fraction = 0.015;
    KleContext::build_with(&kernel, &finer, ExecPolicy::Plain, Some(&cache)).expect("finer mesh");
    let snap = cache.snapshot();
    // One mesh hit is allowed (same mesh, different kernel); the
    // spectrum must never be served across perturbed configurations.
    assert_eq!(snap.hits(), baseline.hits() + 1, "{snap:?}");
    assert!(snap.misses() > baseline.misses(), "{snap:?}");
}

#[test]
fn assembly_thread_count_is_invisible_in_the_numbers() {
    // Determinism contract: the full pipeline — parallel Galerkin
    // assembly included — is bitwise identical for any worker count.
    let s = setup();
    let kernel = GaussianKernel::new(1.5);
    let cfg = McConfig::new(150, 23);
    // Fine enough that the mesh clears the serial-fallback threshold and
    // the parallel shard path genuinely engages.
    let mut serial = FrontEndConfig::new(0.005, 25.0, TruncationCriterion::new(60, 0.01));
    serial.options.assembly_threads = 1;
    let mut parallel = serial.clone();
    parallel.options.assembly_threads = 8;
    let ctx1 = KleContext::build_with(&kernel, &serial, ExecPolicy::Plain, None).expect("serial");
    let ctx8 =
        KleContext::build_with(&kernel, &parallel, ExecPolicy::Plain, None).expect("parallel");
    assert!(
        ctx1.mesh.len() >= PARALLEL_MIN_TRIANGLES,
        "mesh too coarse to engage the parallel path: {}",
        ctx1.mesh.len()
    );
    assert_eq!(ctx1.kle.eigenvalues().len(), ctx8.kle.eigenvalues().len());
    for (a, b) in ctx1.kle.eigenvalues().iter().zip(ctx8.kle.eigenvalues()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let cmp1 = compare_methods(&s, &kernel, &ctx1, &cfg).expect("cmp serial");
    let cmp8 = compare_methods(&s, &kernel, &ctx8, &cfg).expect("cmp parallel");
    assert_stats_identical(&cmp1, &cmp8);
}
