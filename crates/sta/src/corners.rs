//! Classic corner analysis — the pre-statistical baseline.
//!
//! Before SSTA, sign-off ran the timer at a handful of process corners
//! (all parameters pushed ±k σ together). Corners ignore spatial
//! structure entirely: the slow corner assumes *every* gate is slow
//! simultaneously, which intra-die variation makes vanishingly unlikely
//! — that pessimism is the economic argument for statistical timing,
//! and the `corner_pessimism` integration test quantifies it against the
//! Monte Carlo distribution.

use crate::{ParamVector, Timer, TimingReport};

/// A named process corner: a uniform deviation applied to every gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Display name.
    pub name: &'static str,
    /// The per-gate deviation, in `[L, W, Vt, tox]` σ units.
    pub deviation: ParamVector,
}

impl Corner {
    /// The typical corner: nominal everything.
    pub fn typical() -> Self {
        Corner {
            name: "TT",
            deviation: ParamVector::ZERO,
        }
    }

    /// The slow corner at `k` sigma: long channel, narrow device, high
    /// threshold, thick oxide.
    pub fn slow(k: f64) -> Self {
        Corner {
            name: "SS",
            deviation: ParamVector::new([k, -k, k, k]),
        }
    }

    /// The fast corner at `k` sigma.
    pub fn fast(k: f64) -> Self {
        Corner {
            name: "FF",
            deviation: ParamVector::new([-k, k, -k, -k]),
        }
    }

    /// The standard three-corner set at `k` sigma.
    pub fn standard_set(k: f64) -> [Corner; 3] {
        [Corner::fast(k), Corner::typical(), Corner::slow(k)]
    }
}

/// Result of evaluating one corner.
#[derive(Debug, Clone)]
pub struct CornerResult {
    /// The corner evaluated.
    pub corner: Corner,
    /// Full timing report at that corner.
    pub report: TimingReport,
}

/// Runs the timer at each corner (uniform deviation on every node).
pub fn analyze_corners(timer: &Timer, corners: &[Corner]) -> Vec<CornerResult> {
    corners
        .iter()
        .map(|&corner| {
            let params = vec![corner.deviation; timer.node_count()];
            CornerResult {
                corner,
                report: timer.analyze(&params),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateLibrary;
    use klest_circuit::{generate, GeneratorConfig, Placement, WireModel};

    fn timer() -> Timer {
        let c = generate("c", GeneratorConfig::combinational(150, 5)).unwrap();
        let p = Placement::recursive_bisection(&c);
        Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm())
    }

    #[test]
    fn corner_ordering() {
        let t = timer();
        let results = analyze_corners(&t, &Corner::standard_set(3.0));
        assert_eq!(results.len(), 3);
        let ff = results[0].report.worst_delay();
        let tt = results[1].report.worst_delay();
        let ss = results[2].report.worst_delay();
        assert!(ff < tt, "FF {ff} must beat TT {tt}");
        assert!(tt < ss, "TT {tt} must beat SS {ss}");
        assert_eq!(results[0].corner.name, "FF");
        assert_eq!(results[2].corner.name, "SS");
    }

    #[test]
    fn corner_spread_grows_with_sigma() {
        let t = timer();
        let narrow = analyze_corners(&t, &Corner::standard_set(1.0));
        let wide = analyze_corners(&t, &Corner::standard_set(3.0));
        let spread = |r: &[CornerResult]| {
            r[2].report.worst_delay() - r[0].report.worst_delay()
        };
        assert!(spread(&wide) > spread(&narrow));
    }

    #[test]
    fn typical_corner_is_nominal() {
        let t = timer();
        let tt = analyze_corners(&t, &[Corner::typical()]);
        let nominal = t.analyze(&vec![ParamVector::ZERO; t.node_count()]);
        assert_eq!(tt[0].report.worst_delay(), nominal.worst_delay());
    }
}
