//! Interconnect delay and slew metrics.
//!
//! - [`elmore_delay`]: the Elmore metric [19] on the lumped π-model of an
//!   HPWL-derived net,
//! - [`bakoglu_slew`]: Bakoglu's 10–90% rise-time metric [21],
//!   `t_r ≈ ln(9) · t_elmore`,
//! - [`peri_slew`]: the PERI rule [20] extending step metrics to ramp
//!   inputs, `s_out = sqrt(s_in² + s_wire²)`.

use klest_circuit::WireParasitics;

/// `ln 9` — the 10–90% factor of a single-pole response.
const LN_9: f64 = 2.197_224_577_336_219_6;

/// Elmore delay of a lumped net: wire resistance driving half the wire
/// capacitance plus the full sink load,
/// `t = R (C_wire/2 + C_sinks)`.
#[inline]
pub fn elmore_delay(wire: &WireParasitics, sink_cap: f64) -> f64 {
    wire.resistance * (0.5 * wire.capacitance + sink_cap)
}

/// Bakoglu's slew metric: the 10–90% rise time of the Elmore single-pole
/// approximation.
#[inline]
pub fn bakoglu_slew(elmore: f64) -> f64 {
    LN_9 * elmore
}

/// PERI: output slew of a ramp-driven RC stage from the input slew and
/// the stage's intrinsic (step) slew.
#[inline]
pub fn peri_slew(input_slew: f64, wire_slew: f64) -> f64 {
    (input_slew * input_slew + wire_slew * wire_slew).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(r: f64, c: f64) -> WireParasitics {
        WireParasitics {
            resistance: r,
            capacitance: c,
            wirelength: 1.0,
        }
    }

    #[test]
    fn elmore_known_value() {
        // R = 2, C_wire = 3, C_sink = 0.5 -> 2 * (1.5 + 0.5) = 4.
        assert_eq!(elmore_delay(&wire(2.0, 3.0), 0.5), 4.0);
    }

    #[test]
    fn elmore_zero_wire() {
        assert_eq!(elmore_delay(&WireParasitics::default(), 1.0), 0.0);
    }

    #[test]
    fn elmore_monotone_in_r_and_c() {
        let base = elmore_delay(&wire(1.0, 1.0), 0.1);
        assert!(elmore_delay(&wire(2.0, 1.0), 0.1) > base);
        assert!(elmore_delay(&wire(1.0, 2.0), 0.1) > base);
        assert!(elmore_delay(&wire(1.0, 1.0), 0.5) > base);
    }

    #[test]
    fn bakoglu_factor() {
        assert!((bakoglu_slew(1.0) - 9f64.ln()).abs() < 1e-15);
        assert_eq!(bakoglu_slew(0.0), 0.0);
    }

    #[test]
    fn peri_is_rms_composition() {
        assert_eq!(peri_slew(3.0, 4.0), 5.0);
        // Degenerate cases: pure step input / zero wire.
        assert_eq!(peri_slew(0.0, 2.0), 2.0);
        assert_eq!(peri_slew(2.0, 0.0), 2.0);
        // Never less than either component.
        assert!(peri_slew(1.0, 1.0) >= 1.0);
    }
}
