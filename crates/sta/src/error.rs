//! Typed errors for the static-timing crate.
//!
//! The workspace no-panic policy: malformed input gets a typed error,
//! never an `assert!` in library code. `klest-sta` cannot name the
//! facade's `KlestError` (the dependency points the other way), so the
//! precondition failures here carry the same `key`/`value`/`message`
//! shape and the facade converts them into
//! `KlestError::InvalidArgument` losslessly.

use std::fmt;

/// A static-timing API precondition failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// A caller-supplied argument was malformed or out of range.
    InvalidArgument {
        /// Which argument (e.g. `params`, `node`).
        key: String,
        /// The offending value, stringified.
        value: String,
        /// What was wrong with it.
        message: String,
    },
}

impl StaError {
    pub(crate) fn invalid(
        key: impl Into<String>,
        value: impl ToString,
        message: impl Into<String>,
    ) -> StaError {
        StaError::InvalidArgument {
            key: key.into(),
            value: value.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::InvalidArgument { key, value, message } => {
                write!(f, "invalid argument {key}={value}: {message}")
            }
        }
    }
}

impl std::error::Error for StaError {}
