//! Incremental timing: re-analyze only the fan-out cone of a parameter
//! change.
//!
//! Statistical *optimization* loops (gate sizing, what-if analysis)
//! perturb a handful of gates per move; re-timing the whole circuit per
//! move wastes the sparsity. [`IncrementalTimer`] keeps the last
//! arrival/slew state and propagates a change only while it actually
//! moves numbers, with early termination when a recomputed node lands on
//! its previous values.

use crate::{ParamVector, StaError, Timer};
use klest_circuit::NodeId;

/// A timer wrapper holding mutable timing state for incremental updates.
#[derive(Debug, Clone)]
pub struct IncrementalTimer<'a> {
    timer: &'a Timer,
    params: Vec<ParamVector>,
    arrivals: Vec<f64>,
    slews: Vec<f64>,
    /// Nodes recomputed by the last update (diagnostics).
    last_recomputed: usize,
}

impl<'a> IncrementalTimer<'a> {
    /// Builds the initial state with a full analysis.
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidArgument`] if `params.len()` differs from the
    /// timer's node count.
    pub fn new(timer: &'a Timer, params: Vec<ParamVector>) -> Result<Self, StaError> {
        let n = timer.node_count();
        if params.len() != n {
            return Err(StaError::invalid(
                "params",
                params.len(),
                format!("one ParamVector per node required ({n} nodes)"),
            ));
        }
        let mut arrivals = vec![0.0; n];
        let mut slews = vec![0.0; n];
        timer.analyze_into(&params, &mut arrivals, &mut slews);
        Ok(IncrementalTimer {
            timer,
            params,
            arrivals,
            slews,
            last_recomputed: n,
        })
    }

    /// Current arrival times.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Current slews.
    pub fn slews(&self) -> &[f64] {
        &self.slews
    }

    /// Current parameters.
    pub fn params(&self) -> &[ParamVector] {
        &self.params
    }

    /// Worst primary-output arrival under the current state.
    pub fn worst_delay(&self) -> f64 {
        self.timer
            .outputs()
            .iter()
            .map(|o| self.arrivals[o.index()])
            .fold(0.0, f64::max)
    }

    /// How many nodes the last [`update`](Self::update) recomputed.
    pub fn last_recomputed(&self) -> usize {
        self.last_recomputed
    }

    /// Applies new parameters to the given nodes and incrementally
    /// re-times their fan-out cones. Returns the new worst delay.
    ///
    /// Exact: the resulting state is bit-identical to a full re-analysis
    /// with the same parameters (nodes whose inputs and parameters are
    /// unchanged recompute to identical values, so propagation stops
    /// precisely where a full pass would produce no change).
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidArgument`] if any node id is out of range;
    /// the state is untouched in that case.
    pub fn update(&mut self, changes: &[(NodeId, ParamVector)]) -> Result<f64, StaError> {
        let n = self.timer.node_count();
        if let Some(&(id, _)) = changes.iter().find(|(id, _)| id.index() >= n) {
            return Err(StaError::invalid(
                "node",
                id.index(),
                format!("node id out of range (circuit has {n} nodes)"),
            ));
        }
        // Dirty = nodes whose own params changed or whose fanin state
        // changed. Nodes are already in topological order, so one index
        // sweep suffices.
        let mut dirty = vec![false; n];
        let mut first = n;
        for &(id, p) in changes {
            self.params[id.index()] = p;
            dirty[id.index()] = true;
            first = first.min(id.index());
        }
        let mut recomputed = 0usize;
        for i in first..n {
            let id = NodeId(i as u32);
            let fanins = self.timer.fanins_of(id);
            let needs = dirty[i] || fanins.iter().any(|f| dirty[f.index()]);
            if !needs {
                continue;
            }
            recomputed += 1;
            let (arr, slew) = self.timer.evaluate_node(id, &self.params, &self.arrivals, &self.slews);
            if arr == self.arrivals[i] && slew == self.slews[i] {
                // Landed exactly on the old state: fan-out reads only
                // arrivals/slews, so propagation stops here.
                dirty[i] = false;
                continue;
            }
            self.arrivals[i] = arr;
            self.slews[i] = slew;
            dirty[i] = true;
        }
        self.last_recomputed = recomputed;
        Ok(self.worst_delay())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateLibrary;
    use klest_circuit::{generate, Circuit, GeneratorConfig, Placement, WireModel};

    fn setup(gates: usize, seed: u64) -> (Circuit, Timer) {
        let c = generate("inc", GeneratorConfig::combinational(gates, seed)).unwrap();
        let p = Placement::recursive_bisection(&c);
        let t = Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm());
        (c, t)
    }

    #[test]
    fn matches_full_reanalysis_exactly() {
        let (c, timer) = setup(300, 3);
        let base = vec![ParamVector::ZERO; c.node_count()];
        let mut inc = IncrementalTimer::new(&timer, base.clone()).expect("sized params");
        // Perturb a few scattered gates.
        let victims = [
            NodeId((c.input_count() + 5) as u32),
            NodeId((c.input_count() + 77) as u32),
            NodeId((c.node_count() - 3) as u32),
        ];
        let changes: Vec<(NodeId, ParamVector)> = victims
            .iter()
            .map(|&v| (v, ParamVector::new([1.0, -0.5, 0.8, 0.2])))
            .collect();
        let worst = inc.update(&changes).expect("in-range nodes");
        // Full recompute with the same parameters.
        let mut params = base;
        for &(id, p) in &changes {
            params[id.index()] = p;
        }
        let full = timer.analyze(&params);
        assert_eq!(worst, full.worst_delay());
        assert_eq!(inc.arrivals(), full.arrivals());
        assert_eq!(inc.slews(), full.slews());
        assert_eq!(inc.params().len(), c.node_count());
    }

    #[test]
    fn late_change_recomputes_few_nodes() {
        let (c, timer) = setup(2000, 9);
        let mut inc =
            IncrementalTimer::new(&timer, vec![ParamVector::ZERO; c.node_count()]).expect("sized params");
        // Pick a node near the outputs: its cone is small.
        let victim = NodeId((c.node_count() - 10) as u32);
        inc.update(&[(victim, ParamVector::new([2.0, -1.0, 1.5, 0.5]))]).expect("in-range nodes");
        assert!(
            inc.last_recomputed() < c.node_count() / 10,
            "recomputed {} of {} for a late change",
            inc.last_recomputed(),
            c.node_count()
        );
        // And the result still matches a full pass.
        let mut params = vec![ParamVector::ZERO; c.node_count()];
        params[victim.index()] = ParamVector::new([2.0, -1.0, 1.5, 0.5]);
        let full = timer.analyze(&params);
        assert_eq!(inc.arrivals(), full.arrivals());
    }

    #[test]
    fn noop_update_recomputes_minimal_cone() {
        let (c, timer) = setup(500, 5);
        let mut inc =
            IncrementalTimer::new(&timer, vec![ParamVector::ZERO; c.node_count()]).expect("sized params");
        let before = inc.arrivals().to_vec();
        let victim = NodeId((c.input_count() + 1) as u32);
        // "Change" to the same value: the node recomputes to identical
        // numbers and propagation stops immediately.
        inc.update(&[(victim, ParamVector::ZERO)]).expect("in-range nodes");
        assert_eq!(inc.arrivals(), &before[..]);
        assert!(
            inc.last_recomputed() <= 1 + timer.fanins_of(victim).len() + 8,
            "noop should stop early, recomputed {}",
            inc.last_recomputed()
        );
    }

    #[test]
    fn wrong_params_length_is_a_typed_error() {
        let (c, timer) = setup(64, 2);
        for len in [0, c.node_count() - 1, c.node_count() + 1] {
            let err = IncrementalTimer::new(&timer, vec![ParamVector::ZERO; len])
                .expect_err("length mismatch must be rejected");
            match err {
                StaError::InvalidArgument { key, value, .. } => {
                    assert_eq!(key, "params");
                    assert_eq!(value, len.to_string());
                }
            }
        }
    }

    #[test]
    fn out_of_range_node_is_a_typed_error_and_state_is_untouched() {
        let (c, timer) = setup(64, 2);
        let mut inc =
            IncrementalTimer::new(&timer, vec![ParamVector::ZERO; c.node_count()]).expect("sized params");
        let before = inc.arrivals().to_vec();
        let bogus = NodeId(c.node_count() as u32);
        let err = inc
            .update(&[(bogus, ParamVector::new([1.0, 1.0, 1.0, 1.0]))])
            .expect_err("out-of-range node must be rejected");
        match err {
            StaError::InvalidArgument { key, value, message } => {
                assert_eq!(key, "node");
                assert_eq!(value, c.node_count().to_string());
                assert!(message.contains("out of range"), "{message}");
            }
        }
        assert_eq!(inc.arrivals(), &before[..], "failed update must not mutate state");
    }

    #[test]
    fn sequence_of_updates_stays_consistent() {
        let (c, timer) = setup(250, 11);
        let mut inc =
            IncrementalTimer::new(&timer, vec![ParamVector::ZERO; c.node_count()]).expect("sized params");
        let mut params = vec![ParamVector::ZERO; c.node_count()];
        let mut lcg = 12345u64;
        for step in 0..10 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let idx = c.input_count() + (lcg >> 33) as usize % c.gate_count();
            let p = ParamVector::new([
                (step as f64 * 0.3).sin(),
                (step as f64 * 0.7).cos(),
                0.5,
                -0.25,
            ]);
            params[idx] = p;
            inc.update(&[(NodeId(idx as u32), p)]).expect("in-range nodes");
        }
        let full = timer.analyze(&params);
        assert_eq!(inc.arrivals(), full.arrivals());
        assert_eq!(inc.worst_delay(), full.worst_delay());
    }
}
