//! # klest-sta
//!
//! Static timing analysis — the core timer inside the paper's Monte Carlo
//! loops (Sec. 5.1):
//!
//! - **Elmore** wire delay [19] over lumped HPWL parasitics,
//! - **PERI** wire slew [20] with the **Bakoglu** metric [21],
//! - **rank-one quadratic** gate delay/slew models [22] in the four
//!   statistical parameters `L`, `W`, `Vt`, `tox` plus input slew and
//!   output load,
//! - a single-pass topological arrival-time propagation
//!   ([`Timer::analyze`]).
//!
//! The timer is deterministic given the per-gate parameter assignment;
//! all randomness lives in `klest-ssta`, which feeds it sampled
//! parameters.
//!
//! ```
//! use klest_circuit::{generate, GeneratorConfig, Placement, WireModel};
//! use klest_sta::{GateLibrary, ParamVector, Timer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = generate("demo", GeneratorConfig::combinational(100, 1))?;
//! let placement = Placement::recursive_bisection(&circuit);
//! let timer = Timer::new(&circuit, &placement, WireModel::default(), GateLibrary::default_90nm());
//! let nominal = vec![ParamVector::ZERO; circuit.node_count()];
//! let report = timer.analyze(&nominal);
//! assert!(report.worst_delay() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod corners;
mod delay;
mod error;
mod incremental;
mod library;
mod model;
mod params;
mod slack;
mod timer;

pub use corners::{analyze_corners, Corner, CornerResult};
pub use delay::{bakoglu_slew, elmore_delay, peri_slew};
pub use error::StaError;
pub use incremental::IncrementalTimer;
pub use library::GateLibrary;
pub use model::{GateTimingModel, QuadraticGateModel};
pub use params::{ParamVector, StatParam};
pub use slack::SlackReport;
pub use timer::{Timer, TimingReport};
