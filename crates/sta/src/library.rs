//! The gate timing library — 90 nm-flavoured parameters for every
//! [`GateKind`] (the Cadence GPDK stand-in; see DESIGN.md for the
//! substitution rationale).
//!
//! Units are arbitrary but consistent (think picoseconds and normalized
//! femtofarads): the experiments report *relative* errors and speedups,
//! matching the paper's evaluation.

use crate::{GateTimingModel, QuadraticGateModel};
use klest_circuit::GateKind;

/// Timing models for all gate kinds.
#[derive(Debug, Clone)]
pub struct GateLibrary {
    models: Vec<(GateKind, GateTimingModel)>,
    /// Input pin capacitance presented by every gate input.
    input_cap: f64,
    /// Slew assumed at primary inputs.
    primary_input_slew: f64,
}

impl GateLibrary {
    /// The default library, loosely calibrated to a 90 nm standard-cell
    /// flavor: inverters fastest, 3-input gates slowest, XOR in between;
    /// delay rises with `L`, `Vt`, `tox` and falls with `W`.
    pub fn default_90nm() -> Self {
        // Common normalized sensitivity direction: L and Vt dominate gate
        // delay; W helps; tox hurts. Per-kind scale factors below.
        let dir = [0.60, -0.35, 0.55, 0.30];
        let make = |nominal: f64, sigma_frac: f64| GateTimingModel {
            delay: QuadraticGateModel {
                nominal,
                slew_coeff: 0.18,
                load_coeff: 2.0,
                direction: dir,
                linear: sigma_frac * nominal,
                quadratic: 0.15 * sigma_frac * nominal,
            },
            output_slew: QuadraticGateModel {
                nominal: 0.9 * nominal,
                slew_coeff: 0.10,
                load_coeff: 3.0,
                direction: dir,
                linear: 0.8 * sigma_frac * nominal,
                quadratic: 0.10 * sigma_frac * nominal,
            },
        };
        // (kind, nominal delay, relative 1-sigma sensitivity)
        let models = vec![
            (GateKind::Input, make(0.0, 0.0)),
            (GateKind::Buf, make(14.0, 0.05)),
            (GateKind::Inv, make(9.0, 0.06)),
            (GateKind::Nand2, make(13.0, 0.055)),
            (GateKind::Nor2, make(16.0, 0.06)),
            (GateKind::And2, make(20.0, 0.05)),
            (GateKind::Or2, make(22.0, 0.05)),
            (GateKind::Xor2, make(28.0, 0.055)),
            (GateKind::Nand3, make(18.0, 0.06)),
            (GateKind::Nor3, make(24.0, 0.065)),
        ];
        GateLibrary {
            models,
            input_cap: 0.05,
            primary_input_slew: 5.0,
        }
    }

    /// Timing model for a gate kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is missing from the library (cannot happen for
    /// [`GateLibrary::default_90nm`]).
    pub fn model(&self, kind: GateKind) -> &GateTimingModel {
        self.models
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, m)| m)
            .unwrap_or_else(|| panic!("gate kind {kind} missing from library"))
    }

    /// Input pin capacitance per gate input.
    pub fn input_cap(&self) -> f64 {
        self.input_cap
    }

    /// Slew assumed at primary inputs.
    pub fn primary_input_slew(&self) -> f64 {
        self.primary_input_slew
    }
}

impl Default for GateLibrary {
    fn default() -> Self {
        GateLibrary::default_90nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamVector;

    #[test]
    fn covers_every_gate_kind() {
        let lib = GateLibrary::default_90nm();
        let mut kinds = vec![GateKind::Input];
        kinds.extend_from_slice(GateKind::logic_kinds());
        for k in kinds {
            let m = lib.model(k);
            if k == GateKind::Input {
                assert_eq!(m.delay.nominal, 0.0);
            } else {
                assert!(m.delay.nominal > 0.0, "{k} has no delay");
            }
        }
    }

    #[test]
    fn inverter_is_fastest_logic_gate() {
        let lib = GateLibrary::default_90nm();
        let inv = lib.model(GateKind::Inv).delay.nominal;
        for k in GateKind::logic_kinds() {
            if *k != GateKind::Inv {
                assert!(lib.model(*k).delay.nominal >= inv, "{k} beat the inverter");
            }
        }
    }

    #[test]
    fn slow_corner_is_slower_for_all_kinds() {
        let lib = GateLibrary::default_90nm();
        // +1σ L, -1σ W, +1σ Vt, +1σ tox — unambiguous slow corner.
        let slow = ParamVector::new([1.0, -1.0, 1.0, 1.0]);
        for k in GateKind::logic_kinds() {
            let m = lib.model(*k);
            let nominal = m.delay(5.0, 0.1, &ParamVector::ZERO);
            let corner = m.delay(5.0, 0.1, &slow);
            assert!(corner > nominal, "{k} slow corner not slower");
        }
    }

    #[test]
    fn library_defaults() {
        let lib = GateLibrary::default();
        assert!(lib.input_cap() > 0.0);
        assert!(lib.primary_input_slew() > 0.0);
    }
}
