//! Rank-one quadratic gate timing models ([22]).
//!
//! Projection-based performance modeling approximates a gate metric
//! (delay or output slew) as a quadratic in a *single* projected
//! direction of the parameter space:
//!
//! `m(p) = m₀ + k_slew·s_in + k_load·C_out + β (vᵀp) + γ (vᵀp)²`
//!
//! where `p` is the normalized `[L, W, Vt, tox]` deviation vector and `v`
//! the dominant sensitivity direction — the "rank-one quadratic
//! functions" of the paper's Sec. 5.1.

use crate::ParamVector;

/// One rank-one quadratic metric model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticGateModel {
    /// Nominal value `m₀` at zero deviations, zero slew, zero load.
    pub nominal: f64,
    /// Input-slew sensitivity `k_slew` (dimensionless).
    pub slew_coeff: f64,
    /// Output-load sensitivity `k_load` (per unit capacitance).
    pub load_coeff: f64,
    /// Dominant parameter direction `v` over `[L, W, Vt, tox]`.
    pub direction: [f64; 4],
    /// Linear projected sensitivity `β`.
    pub linear: f64,
    /// Quadratic projected sensitivity `γ`.
    pub quadratic: f64,
}

impl QuadraticGateModel {
    /// Evaluates the metric.
    ///
    /// The result is clamped below at 1% of nominal: a physical delay or
    /// slew cannot go negative however extreme the sampled corner.
    #[inline]
    pub fn eval(&self, input_slew: f64, load_cap: f64, params: &ParamVector) -> f64 {
        let w = params.dot(&self.direction);
        let v = self.nominal
            + self.slew_coeff * input_slew
            + self.load_coeff * load_cap
            + self.linear * w
            + self.quadratic * w * w;
        v.max(0.01 * self.nominal)
    }

    /// The projected deviation `vᵀp` (exposed for diagnostics/tests).
    #[inline]
    pub fn projection(&self, params: &ParamVector) -> f64 {
        params.dot(&self.direction)
    }
}

/// Delay and output-slew models for one gate kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTimingModel {
    /// Pin-to-pin delay model.
    pub delay: QuadraticGateModel,
    /// Output slew model.
    pub output_slew: QuadraticGateModel,
}

impl GateTimingModel {
    /// Gate delay for the given input slew, output load and parameters.
    #[inline]
    pub fn delay(&self, input_slew: f64, load_cap: f64, params: &ParamVector) -> f64 {
        self.delay.eval(input_slew, load_cap, params)
    }

    /// Gate output slew for the given input slew, output load and
    /// parameters.
    #[inline]
    pub fn output_slew(&self, input_slew: f64, load_cap: f64, params: &ParamVector) -> f64 {
        self.output_slew.eval(input_slew, load_cap, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> QuadraticGateModel {
        QuadraticGateModel {
            nominal: 10.0,
            slew_coeff: 0.2,
            load_coeff: 3.0,
            direction: [0.7, -0.4, 0.5, 0.3],
            linear: 1.0,
            quadratic: 0.1,
        }
    }

    #[test]
    fn nominal_at_zero() {
        let m = model();
        assert_eq!(m.eval(0.0, 0.0, &ParamVector::ZERO), 10.0);
    }

    #[test]
    fn slew_and_load_sensitivity() {
        let m = model();
        assert_eq!(m.eval(5.0, 0.0, &ParamVector::ZERO), 11.0);
        assert_eq!(m.eval(0.0, 2.0, &ParamVector::ZERO), 16.0);
        assert_eq!(m.eval(5.0, 2.0, &ParamVector::ZERO), 17.0);
    }

    #[test]
    fn parameter_sensitivity_signs() {
        let m = model();
        // Longer channel (positive L deviation, positive direction
        // component) slows the gate.
        let slow = ParamVector::new([1.0, 0.0, 0.0, 0.0]);
        assert!(m.eval(0.0, 0.0, &slow) > 10.0);
        // Wider device (positive W, negative component) speeds it up.
        let fast = ParamVector::new([0.0, 1.0, 0.0, 0.0]);
        assert!(m.eval(0.0, 0.0, &fast) < 10.0);
    }

    #[test]
    fn quadratic_term_is_symmetric_extra() {
        let m = QuadraticGateModel {
            linear: 0.0,
            ..model()
        };
        let plus = m.eval(0.0, 0.0, &ParamVector::new([1.0, 0.0, 0.0, 0.0]));
        let minus = m.eval(0.0, 0.0, &ParamVector::new([-1.0, 0.0, 0.0, 0.0]));
        assert!((plus - minus).abs() < 1e-12, "pure quadratic is even");
        assert!(plus > 10.0, "positive curvature adds delay both ways");
    }

    #[test]
    fn clamped_at_one_percent_of_nominal() {
        // Linear-only model: a hugely fast corner would drive the raw
        // value negative, but the clamp floors it at 1% of nominal.
        let m = QuadraticGateModel {
            quadratic: 0.0,
            ..model()
        };
        let corner = ParamVector::new([-30.0, 30.0, -30.0, -30.0]);
        assert!(m.projection(&corner) < -10.0, "raw value is deeply negative");
        let v = m.eval(0.0, 0.0, &corner);
        assert!((v - 0.1).abs() < 1e-12, "clamped at 1% of nominal, got {v}");
    }

    #[test]
    fn projection_matches_dot() {
        let m = model();
        let p = ParamVector::new([1.0, 1.0, 1.0, 1.0]);
        assert!((m.projection(&p) - (0.7 - 0.4 + 0.5 + 0.3)).abs() < 1e-15);
    }

    #[test]
    fn gate_timing_model_dispatch() {
        let g = GateTimingModel {
            delay: model(),
            output_slew: QuadraticGateModel {
                nominal: 4.0,
                ..model()
            },
        };
        assert_eq!(g.delay(0.0, 0.0, &ParamVector::ZERO), 10.0);
        assert_eq!(g.output_slew(0.0, 0.0, &ParamVector::ZERO), 4.0);
    }
}
