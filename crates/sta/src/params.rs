//! The four statistical device parameters of the paper's gate models.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A statistical device parameter (paper Sec. 5.1: "the gate output slew
/// and gate delay are modeled as functions of the input slew and 4
/// statistical parameters: L, W, Vt and tox").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatParam {
    /// Effective channel length.
    L,
    /// Device width.
    W,
    /// Threshold voltage.
    Vt,
    /// Oxide thickness.
    Tox,
}

impl StatParam {
    /// All four parameters, in storage order.
    pub const ALL: [StatParam; 4] = [StatParam::L, StatParam::W, StatParam::Vt, StatParam::Tox];

    /// Storage index of the parameter.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            StatParam::L => 0,
            StatParam::W => 1,
            StatParam::Vt => 2,
            StatParam::Tox => 3,
        }
    }
}

impl fmt::Display for StatParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StatParam::L => "L",
            StatParam::W => "W",
            StatParam::Vt => "Vt",
            StatParam::Tox => "tox",
        };
        f.write_str(s)
    }
}

/// Normalized parameter deviations for one gate: z-scores
/// `(p - μ) / σ` of the four [`StatParam`]s (the paper normalizes every
/// parameter to zero mean, unit variance — Sec. 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ParamVector(pub [f64; 4]);

impl ParamVector {
    /// All-zero deviations (nominal process corner).
    pub const ZERO: ParamVector = ParamVector([0.0; 4]);

    /// Creates a vector from `[L, W, Vt, tox]` deviations.
    pub const fn new(values: [f64; 4]) -> Self {
        ParamVector(values)
    }

    /// Inner product with a sensitivity direction.
    #[inline]
    pub fn dot(&self, dir: &[f64; 4]) -> f64 {
        self.0[0] * dir[0] + self.0[1] * dir[1] + self.0[2] * dir[2] + self.0[3] * dir[3]
    }
}

impl Index<StatParam> for ParamVector {
    type Output = f64;
    fn index(&self, p: StatParam) -> &f64 {
        &self.0[p.index()]
    }
}

impl IndexMut<StatParam> for ParamVector {
    fn index_mut(&mut self, p: StatParam) -> &mut f64 {
        &mut self.0[p.index()]
    }
}

impl From<[f64; 4]> for ParamVector {
    fn from(v: [f64; 4]) -> Self {
        ParamVector(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable() {
        assert_eq!(StatParam::L.index(), 0);
        assert_eq!(StatParam::W.index(), 1);
        assert_eq!(StatParam::Vt.index(), 2);
        assert_eq!(StatParam::Tox.index(), 3);
        for (i, p) in StatParam::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn vector_indexing() {
        let mut v = ParamVector::ZERO;
        v[StatParam::Vt] = 1.5;
        assert_eq!(v[StatParam::Vt], 1.5);
        assert_eq!(v[StatParam::L], 0.0);
        let w: ParamVector = [1.0, 2.0, 3.0, 4.0].into();
        assert_eq!(w[StatParam::Tox], 4.0);
    }

    #[test]
    fn dot_product() {
        let v = ParamVector::new([1.0, -1.0, 2.0, 0.5]);
        let d = [0.5, 0.5, 0.25, -2.0];
        assert_eq!(v.dot(&d), 0.5 - 0.5 + 0.5 - 1.0);
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = StatParam::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["L", "W", "Vt", "tox"]);
    }
}
