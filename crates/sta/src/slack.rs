//! Required-time / slack analysis and critical-path extraction.
//!
//! A forward sweep ([`Timer::analyze`]) gives arrival times; the backward
//! sweep here propagates *required* times from a target clock period and
//! reports per-node slack. The most negative slack chain is the critical
//! path — the structure statistical timing ultimately cares about,
//! because its membership shifts corner to corner under variation.

use crate::{ParamVector, Timer, TimingReport};
use klest_circuit::NodeId;

/// Slack analysis of one timing run against a required time.
#[derive(Debug, Clone)]
pub struct SlackReport {
    required: Vec<f64>,
    slack: Vec<f64>,
    critical_path: Vec<NodeId>,
    worst_slack: f64,
}

impl SlackReport {
    /// Computes required times and slacks for `report` (produced by
    /// `timer.analyze(params)`) against a required arrival
    /// `required_time` at every primary output.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the timer's node count.
    pub fn new(
        timer: &Timer,
        report: &TimingReport,
        params: &[ParamVector],
        required_time: f64,
    ) -> Self {
        let n = timer.node_count();
        assert_eq!(params.len(), n, "one ParamVector per node required");
        let arrivals = report.arrivals();
        let slews = report.slews();
        // Backward sweep over true edge delays:
        // required[f] = min over fanouts v (required[v] - delay(f -> v)).
        let mut required = vec![f64::INFINITY; n];
        for &o in timer.outputs() {
            required[o.index()] = required_time;
        }
        for v in (0..n).rev() {
            let rv = required[v];
            if !rv.is_finite() {
                continue;
            }
            for &f in timer.fanins_of(NodeId(v as u32)) {
                let stage = timer.edge_delay(f, NodeId(v as u32), slews, params);
                let candidate = rv - stage;
                if candidate < required[f.index()] {
                    required[f.index()] = candidate;
                }
            }
        }
        // Slack. Nodes that reach no output keep +inf required -> +inf
        // slack; clamp those to the required time for reporting sanity.
        let mut slack = Vec::with_capacity(n);
        let mut worst_slack = f64::INFINITY;
        for v in 0..n {
            let s = if required[v].is_finite() {
                required[v] - arrivals[v]
            } else {
                f64::INFINITY
            };
            if s < worst_slack {
                worst_slack = s;
            }
            slack.push(s);
        }
        // Critical path: start from the worst-arrival output and walk the
        // max-arrival fanin chain back to an input.
        let mut critical_path = Vec::new();
        if let Some(mut cur) = report.critical_output() {
            critical_path.push(cur);
            loop {
                let mut best: Option<NodeId> = None;
                let mut best_arr = f64::NEG_INFINITY;
                for &f in timer.fanins_of(cur) {
                    let via = arrivals[f.index()] + timer.edge_delay(f, cur, slews, params);
                    if via > best_arr {
                        best_arr = via;
                        best = Some(f);
                    }
                }
                match best {
                    Some(prev) => {
                        critical_path.push(prev);
                        cur = prev;
                    }
                    None => break,
                }
            }
            critical_path.reverse();
        }
        SlackReport {
            required,
            slack,
            critical_path,
            worst_slack,
        }
    }

    /// Required time at each node (`+inf` for nodes feeding no output).
    pub fn required(&self) -> &[f64] {
        &self.required
    }

    /// Slack at each node.
    pub fn slacks(&self) -> &[f64] {
        &self.slack
    }

    /// Slack of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn slack(&self, id: NodeId) -> f64 {
        self.slack[id.index()]
    }

    /// The most negative (or least positive) slack in the design.
    pub fn worst_slack(&self) -> f64 {
        self.worst_slack
    }

    /// The critical path, input to output.
    pub fn critical_path(&self) -> &[NodeId] {
        &self.critical_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateLibrary, ParamVector};
    use klest_circuit::{generate, Circuit, GateKind, GeneratorConfig, Placement, WireModel};

    fn analyze(c: &Circuit) -> (Timer, TimingReport, Vec<ParamVector>) {
        let p = Placement::recursive_bisection(c);
        let timer = Timer::new(c, &p, WireModel::default(), GateLibrary::default_90nm());
        let params = vec![ParamVector::ZERO; c.node_count()];
        let report = timer.analyze(&params);
        (timer, report, params)
    }

    #[test]
    fn zero_slack_on_critical_path_at_exact_required() {
        let c = generate("s", GeneratorConfig::combinational(200, 4)).unwrap();
        let (timer, report, params) = analyze(&c);
        let slacks = SlackReport::new(&timer, &report, &params, report.worst_delay());
        // Required time == worst delay: worst slack is exactly zero.
        assert!(slacks.worst_slack().abs() < 1e-9, "worst slack {}", slacks.worst_slack());
        // Every node on the critical path has ~zero slack.
        for &v in slacks.critical_path() {
            assert!(
                slacks.slack(v).abs() < 1e-9,
                "critical node {v} slack {}",
                slacks.slack(v)
            );
        }
    }

    #[test]
    fn critical_path_structure() {
        let c = generate("p", GeneratorConfig::combinational(300, 11)).unwrap();
        let (timer, report, params) = analyze(&c);
        let slacks = SlackReport::new(&timer, &report, &params, report.worst_delay());
        let path = slacks.critical_path();
        assert!(path.len() >= 2, "path has at least input and output");
        // Starts at a primary input, ends at the critical output.
        assert_eq!(c.kind(path[0]), GateKind::Input);
        assert_eq!(Some(*path.last().unwrap()), report.critical_output());
        // Consecutive nodes are connected.
        for w in path.windows(2) {
            assert!(
                c.fanins(w[1]).contains(&w[0]),
                "{} is not a fanin of {}",
                w[0],
                w[1]
            );
        }
        // Arrivals strictly increase along the path.
        for w in path.windows(2) {
            assert!(report.arrival(w[1]) > report.arrival(w[0]));
        }
    }

    #[test]
    fn slack_shifts_with_required_time() {
        let c = generate("r", GeneratorConfig::combinational(150, 21)).unwrap();
        let (timer, report, params) = analyze(&c);
        let tight = SlackReport::new(&timer, &report, &params, report.worst_delay() - 10.0);
        let loose = SlackReport::new(&timer, &report, &params, report.worst_delay() + 10.0);
        assert!((tight.worst_slack() + 10.0).abs() < 1e-9);
        assert!((loose.worst_slack() - 10.0).abs() < 1e-9);
        // Slack at every reachable node shifts by exactly the delta.
        for v in 0..timer.node_count() {
            let (a, b) = (tight.slacks()[v], loose.slacks()[v]);
            if a.is_finite() && b.is_finite() {
                assert!((b - a - 20.0).abs() < 1e-9);
            }
        }
        assert_eq!(tight.required().len(), timer.node_count());
    }

    #[test]
    fn hand_built_diamond() {
        // a -> {fast INV, slow XOR chain} -> NAND2 -> out.
        let mut b = Circuit::builder("d");
        let a = b.input();
        let a2 = b.input();
        let inv = b.gate(GateKind::Inv, &[a]).unwrap();
        let x1 = b.gate(GateKind::Xor2, &[a, a2]).unwrap();
        let x2 = b.gate(GateKind::Xor2, &[x1, a2]).unwrap();
        let top = b.gate(GateKind::Nand2, &[inv, x2]).unwrap();
        b.output(top);
        let c = b.build().unwrap();
        let (timer, report, params) = analyze(&c);
        let slacks = SlackReport::new(&timer, &report, &params, report.worst_delay());
        // The slow branch is critical; the fast inverter has positive slack.
        assert!(slacks.slack(inv) > 1.0, "fast branch should have slack");
        assert!(slacks.slack(x2).abs() < 1e-9, "slow branch is critical");
        let path = slacks.critical_path();
        assert!(path.contains(&x1) && path.contains(&x2));
        assert!(!path.contains(&inv));
    }
}
