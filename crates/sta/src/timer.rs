//! The topological timing engine (the "core timer inside the Monte Carlo
//! loops", paper Sec. 5.1).

use crate::{bakoglu_slew, elmore_delay, peri_slew, GateLibrary, ParamVector};
use klest_circuit::{Circuit, GateKind, NodeId, Placement, WireModel, WireParasitics};

/// Per-node timing quantities from one analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    arrivals: Vec<f64>,
    slews: Vec<f64>,
    worst_delay: f64,
    critical_output: Option<NodeId>,
}

impl TimingReport {
    /// Arrival time at every node's output, indexed by node.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Slew at every node's output, indexed by node.
    pub fn slews(&self) -> &[f64] {
        &self.slews
    }

    /// Arrival time at node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn arrival(&self, id: NodeId) -> f64 {
        self.arrivals[id.index()]
    }

    /// The worst (largest) primary-output arrival — the circuit delay
    /// statistic Table 1 reports.
    pub fn worst_delay(&self) -> f64 {
        self.worst_delay
    }

    /// The primary output achieving [`worst_delay`](Self::worst_delay).
    pub fn critical_output(&self) -> Option<NodeId> {
        self.critical_output
    }
}

/// A static timer bound to one circuit + placement + library.
///
/// Net parasitics and load capacitances are precomputed once; each
/// [`analyze`](Timer::analyze) call is a single allocation-light
/// topological sweep, which is what the Monte Carlo loop hammers.
#[derive(Debug, Clone)]
pub struct Timer {
    kinds: Vec<GateKind>,
    /// Flattened fanin lists (same layout as the circuit).
    fanins: Vec<Vec<NodeId>>,
    outputs: Vec<NodeId>,
    /// Per-node output-net parasitics.
    nets: Vec<WireParasitics>,
    /// Per-node total sink pin capacitance on the output net.
    sink_caps: Vec<f64>,
    library: GateLibrary,
}

impl Timer {
    /// Builds a timer, precomputing all wire parasitics from the
    /// placement.
    pub fn new(
        circuit: &Circuit,
        placement: &Placement,
        wire_model: WireModel,
        library: GateLibrary,
    ) -> Self {
        let nets = wire_model.all_nets(circuit, placement);
        let sink_caps = circuit
            .topological_order()
            .map(|id| circuit.fanouts(id).len() as f64 * library.input_cap())
            .collect();
        Timer {
            kinds: circuit.topological_order().map(|id| circuit.kind(id)).collect(),
            fanins: circuit
                .topological_order()
                .map(|id| circuit.fanins(id).to_vec())
                .collect(),
            outputs: circuit.outputs().to_vec(),
            nets,
            sink_caps,
            library,
        }
    }

    /// Number of nodes the timer covers.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Runs one deterministic STA with the given per-node parameter
    /// deviations.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != node_count()`.
    pub fn analyze(&self, params: &[ParamVector]) -> TimingReport {
        let n = self.node_count();
        let mut arrivals = vec![0.0; n];
        let mut slews = vec![0.0; n];
        self.analyze_into(params, &mut arrivals, &mut slews);
        let (worst_delay, critical_output) = self.worst_output(&arrivals);
        TimingReport {
            arrivals,
            slews,
            worst_delay,
            critical_output,
        }
    }

    /// Allocation-free analysis into caller-provided buffers; returns the
    /// worst primary-output arrival. This is the Monte Carlo hot path.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `node_count()`.
    pub fn analyze_into(
        &self,
        params: &[ParamVector],
        arrivals: &mut [f64],
        slews: &mut [f64],
    ) -> f64 {
        let n = self.node_count();
        assert_eq!(params.len(), n, "one ParamVector per node required");
        assert_eq!(arrivals.len(), n);
        assert_eq!(slews.len(), n);
        for i in 0..n {
            let (arr, slew) = self.evaluate_node(NodeId(i as u32), params, arrivals, slews);
            arrivals[i] = arr;
            slews[i] = slew;
        }
        self.worst_output(arrivals).0
    }

    /// Evaluates one node's (arrival, slew) from its fanins' current
    /// state — the inner step of [`analyze_into`](Self::analyze_into),
    /// exposed for the incremental timer.
    ///
    /// # Panics
    ///
    /// Panics if `id` or any slice index is out of range.
    pub fn evaluate_node(
        &self,
        id: NodeId,
        params: &[ParamVector],
        arrivals: &[f64],
        slews: &[f64],
    ) -> (f64, f64) {
        let i = id.index();
        let kind = self.kinds[i];
        if kind == GateKind::Input {
            return (0.0, self.library.primary_input_slew());
        }
        let model = self.library.model(kind);
        // Output load seen by this gate: its own net.
        let load = self.nets[i].capacitance;
        let mut best_arrival = f64::NEG_INFINITY;
        let mut best_slew = 0.0;
        for f in &self.fanins[i] {
            let fi = f.index();
            // Wire stage from the fanin's output to this gate's input.
            let wire = &self.nets[fi];
            let wdelay = elmore_delay(wire, self.sink_caps[fi]);
            let wslew = peri_slew(slews[fi], bakoglu_slew(wdelay));
            let gdelay = model.delay(wslew, load, &params[i]);
            let arr = arrivals[fi] + wdelay + gdelay;
            if arr > best_arrival {
                best_arrival = arr;
                best_slew = model.output_slew(wslew, load, &params[i]);
            }
        }
        (best_arrival, best_slew)
    }

    fn worst_output(&self, arrivals: &[f64]) -> (f64, Option<NodeId>) {
        let mut worst = 0.0;
        let mut crit = None;
        for &o in &self.outputs {
            let a = arrivals[o.index()];
            if a > worst {
                worst = a;
                crit = Some(o);
            }
        }
        (worst, crit)
    }

    /// The primary outputs the worst delay is taken over.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Fanins of node `id` (mirrors the circuit the timer was built on).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fanins_of(&self, id: NodeId) -> &[NodeId] {
        &self.fanins[id.index()]
    }

    /// First-order sensitivity of node `id`'s gate delay to its four
    /// normalized parameters at the nominal point: `β · v` from the
    /// rank-one quadratic model (`∂d/∂p = β v + 2γ (vᵀp) v`, evaluated at
    /// `p = 0`). Returns `None` for primary inputs. This is the
    /// linearisation a canonical-form (block-based, [6]-style) SSTA
    /// consumes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn delay_sensitivity(&self, id: NodeId) -> Option<[f64; 4]> {
        let kind = self.kinds[id.index()];
        if kind == GateKind::Input {
            return None;
        }
        let m = &self.library.model(kind).delay;
        Some([
            m.linear * m.direction[0],
            m.linear * m.direction[1],
            m.linear * m.direction[2],
            m.linear * m.direction[3],
        ])
    }

    /// Delay of the timing edge `from -> to`: the wire stage out of
    /// `from` plus `to`'s gate delay under the given slews/parameters.
    /// `slews` must come from a forward [`analyze`](Timer::analyze) pass
    /// with the same `params`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or `to` is a primary input.
    pub fn edge_delay(
        &self,
        from: NodeId,
        to: NodeId,
        slews: &[f64],
        params: &[ParamVector],
    ) -> f64 {
        let fi = from.index();
        let wire = &self.nets[fi];
        let wdelay = elmore_delay(wire, self.sink_caps[fi]);
        let wslew = peri_slew(slews[fi], bakoglu_slew(wdelay));
        let kind = self.kinds[to.index()];
        assert_ne!(kind, GateKind::Input, "edge into a primary input");
        let model = self.library.model(kind);
        let load = self.nets[to.index()].capacitance;
        wdelay + model.delay(wslew, load, &params[to.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klest_circuit::{generate, Circuit, GeneratorConfig};

    fn timer_for(c: &Circuit) -> Timer {
        let p = Placement::recursive_bisection(c);
        Timer::new(c, &p, WireModel::default(), GateLibrary::default_90nm())
    }

    fn nominal(c: &Circuit) -> Vec<ParamVector> {
        vec![ParamVector::ZERO; c.node_count()]
    }

    #[test]
    fn hand_built_chain_delay() {
        // in -> INV -> INV -> out with zero-length wires (single gate
        // locations coincide is impossible, but the arithmetic is checked
        // structurally: arrival strictly increases along the chain).
        let mut b = Circuit::builder("chain");
        let a = b.input();
        let g1 = b.gate(GateKind::Inv, &[a]).unwrap();
        let g2 = b.gate(GateKind::Inv, &[g1]).unwrap();
        b.output(g2);
        let c = b.build().unwrap();
        let t = timer_for(&c);
        let r = t.analyze(&nominal(&c));
        assert_eq!(r.arrival(a), 0.0);
        assert!(r.arrival(g1) > 0.0);
        assert!(r.arrival(g2) > r.arrival(g1));
        assert_eq!(r.worst_delay(), r.arrival(g2));
        assert_eq!(r.critical_output(), Some(g2));
        assert_eq!(t.outputs(), &[g2]);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn worst_of_two_outputs() {
        // A fast path (1 inverter) and a slow path (XOR chain) from the
        // same input: worst delay must be the slow one.
        let mut b = Circuit::builder("two");
        let a = b.input();
        let a2 = b.input();
        let fast = b.gate(GateKind::Inv, &[a]).unwrap();
        let s1 = b.gate(GateKind::Xor2, &[a, a2]).unwrap();
        let s2 = b.gate(GateKind::Xor2, &[s1, a2]).unwrap();
        let s3 = b.gate(GateKind::Xor2, &[s2, a2]).unwrap();
        b.output(fast);
        b.output(s3);
        let c = b.build().unwrap();
        let t = timer_for(&c);
        let r = t.analyze(&nominal(&c));
        assert!(r.arrival(s3) > r.arrival(fast));
        assert_eq!(r.worst_delay(), r.arrival(s3));
        assert_eq!(r.critical_output(), Some(s3));
    }

    #[test]
    fn arrivals_monotone_along_paths() {
        let c = generate("m", GeneratorConfig::combinational(400, 17)).unwrap();
        let t = timer_for(&c);
        let r = t.analyze(&nominal(&c));
        for id in c.topological_order() {
            for f in c.fanins(id) {
                assert!(
                    r.arrival(id) > r.arrival(*f),
                    "arrival must increase from {f} to {id}"
                );
            }
        }
        assert!(r.slews().iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn slow_corner_increases_delay() {
        let c = generate("s", GeneratorConfig::combinational(300, 23)).unwrap();
        let t = timer_for(&c);
        let d_nom = t.analyze(&nominal(&c)).worst_delay();
        let slow = vec![ParamVector::new([1.0, -1.0, 1.0, 1.0]); c.node_count()];
        let d_slow = t.analyze(&slow).worst_delay();
        let fast = vec![ParamVector::new([-1.0, 1.0, -1.0, -1.0]); c.node_count()];
        let d_fast = t.analyze(&fast).worst_delay();
        assert!(d_slow > d_nom, "slow {d_slow} vs nominal {d_nom}");
        assert!(d_fast < d_nom, "fast {d_fast} vs nominal {d_nom}");
    }

    #[test]
    fn analyze_into_matches_analyze() {
        let c = generate("b", GeneratorConfig::combinational(200, 31)).unwrap();
        let t = timer_for(&c);
        let params = nominal(&c);
        let report = t.analyze(&params);
        let mut arr = vec![0.0; c.node_count()];
        let mut slews = vec![0.0; c.node_count()];
        let worst = t.analyze_into(&params, &mut arr, &mut slews);
        assert_eq!(worst, report.worst_delay());
        assert_eq!(arr, report.arrivals());
        assert_eq!(slews, report.slews());
    }

    #[test]
    #[should_panic]
    fn wrong_param_length_panics() {
        let c = generate("p", GeneratorConfig::combinational(50, 3)).unwrap();
        let t = timer_for(&c);
        let _ = t.analyze(&[ParamVector::ZERO; 3]);
    }

    #[test]
    fn per_gate_variation_changes_only_downstream() {
        let c = generate("v", GeneratorConfig::combinational(300, 41)).unwrap();
        let t = timer_for(&c);
        let base = t.analyze(&nominal(&c));
        // Perturb one mid-circuit gate.
        let victim = NodeId((c.input_count() + 10) as u32);
        let mut params = nominal(&c);
        params[victim.index()] = ParamVector::new([2.0, -2.0, 2.0, 2.0]);
        let pert = t.analyze(&params);
        assert!(pert.arrival(victim) > base.arrival(victim));
        // Nodes topologically before the victim are untouched.
        for id in c.topological_order().take(victim.index()) {
            assert_eq!(pert.arrival(id), base.arrival(id), "upstream node {id} moved");
        }
    }
}
