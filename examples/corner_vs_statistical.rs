//! Why statistical timing: quantify the pessimism of classic corner
//! analysis against the Monte Carlo delay distribution under spatially
//! correlated variation.
//!
//! ```text
//! cargo run --release --example corner_vs_statistical
//! ```

use klest::circuit::{benchmark_scaled, BenchmarkId};
use klest::kernels::GaussianKernel;
use klest::ssta::experiments::{CircuitSetup, KleContext};
use klest::ssta::{quantile, McConfig, ProcessModel};
use klest::sta::{analyze_corners, Corner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = benchmark_scaled(BenchmarkId::C1908, 0.5)?;
    let setup = CircuitSetup::prepare(&circuit);
    println!("circuit: {} ({} gates)", setup.name(), setup.gates());

    // Classic sign-off: three corners at 3 sigma.
    let corners = analyze_corners(&setup.timer, &Corner::standard_set(3.0));
    for c in &corners {
        println!(
            "corner {:>2}: worst delay {:>9.2}",
            c.corner.name,
            c.report.worst_delay()
        );
    }

    // Statistical: KLE-compressed Monte Carlo, 10 000 samples.
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::paper_default(&kernel)?;
    let run = ProcessModel::uniform_kle(&ctx)
        .run(&setup, &McConfig::new(10_000, 7).with_threads(4))?;
    let stats = run.worst_delay_stats();
    let q99 = quantile(run.worst_delays(), 0.99);
    let q999 = quantile(run.worst_delays(), 0.999);
    println!(
        "statistical: mean {:.2}, sigma {:.3}, 99% {:.2}, 99.9% {:.2} ({} RVs/param)",
        stats.mean,
        stats.std_dev,
        q99,
        q999,
        run.random_dims()
    );

    let ss = corners[2].report.worst_delay();
    println!(
        "pessimism: SS corner sits {:.1} sigma above the MC mean; signing off at the 99.9th \
         percentile instead recovers {:.2} delay units ({:.1}% of nominal)",
        (ss - stats.mean) / stats.std_dev,
        ss - q999,
        100.0 * (ss - q999) / stats.mean
    );
    Ok(())
}
