//! The paper's generality claim, demonstrated: the Galerkin/KLE pipeline
//! works with *any* physically valid kernel, including user-defined ones
//! with no analytic eigendecomposition. Here we define an anisotropic
//! Gaussian kernel (different decay along x and y — e.g. scan-direction
//! lithography effects), implement [`CovarianceKernel`] for it, and run
//! it through the same machinery as the built-ins.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use klest::core::{GalerkinKle, KleOptions, TruncationCriterion};
use klest::geometry::{Point2, Rect};
use klest::kernels::CovarianceKernel;
use klest::mesh::MeshBuilder;

/// Anisotropic Gaussian: exp(-(cx dx² + cy dy²)). Valid (it is a product
/// of two 1-D Gaussian kernels), but with no closed-form 2-D KLE under
/// rotation of the die — exactly the situation the paper's numerical
/// method exists for.
#[derive(Debug, Clone, Copy)]
struct AnisotropicGaussian {
    cx: f64,
    cy: f64,
}

impl CovarianceKernel for AnisotropicGaussian {
    fn eval(&self, x: Point2, y: Point2) -> f64 {
        let dx = x.x - y.x;
        let dy = x.y - y.y;
        (-(self.cx * dx * dx + self.cy * dy * dy)).exp()
    }

    fn name(&self) -> &str {
        "anisotropic-gaussian"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Strong correlation along x (scan direction), weaker along y.
    let kernel = AnisotropicGaussian { cx: 1.0, cy: 6.0 };
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(0.002)
        .min_angle_degrees(28.0)
        .build()?;
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    let r = kle.select_rank(&TruncationCriterion::default());
    println!(
        "custom kernel '{}': mesh n = {}, selected rank r = {} ({:.2}% variance)",
        kernel.name(),
        mesh.len(),
        r,
        100.0 * kle.variance_captured(r)
    );

    // Anisotropy should show up in the eigenfunctions: the second mode
    // oscillates along the *less* correlated axis first (y here carries
    // more independent variation). Measure each mode's oscillation
    // direction by correlating its sign with x and y.
    for j in 1..4 {
        let f = kle.eigenfunction(j);
        let (mut sx, mut sy) = (0.0, 0.0);
        for (i, c) in mesh.centroids().iter().enumerate() {
            sx += f[i] * c.x * mesh.areas()[i];
            sy += f[i] * c.y * mesh.areas()[i];
        }
        let axis = if sx.abs() > sy.abs() { "x" } else { "y" };
        println!(
            "mode {}: lambda = {:.4}, dominant oscillation along {axis} (<f,x> = {:.3}, <f,y> = {:.3})",
            j + 1,
            kle.eigenvalues()[j],
            sx,
            sy
        );
    }

    // Compare against the isotropic case: the anisotropic field needs
    // more modes along y, fewer along x; total rank is driven by the
    // weaker-correlation axis.
    let iso = klest::kernels::GaussianKernel::new(6.0);
    let kle_iso = GalerkinKle::compute(&mesh, &iso, KleOptions::default())?;
    let r_iso = kle_iso.select_rank(&TruncationCriterion::default());
    println!("isotropic c = 6 needs r = {r_iso}; anisotropic (1, 6) needs r = {r} (cheaper along x)");
    Ok(())
}
