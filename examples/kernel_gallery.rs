//! Gallery of the kernel families from the paper, with validity checks:
//! evaluates each kernel's decay profile, empirically tests positive
//! semidefiniteness (the validity condition of eq. 2), and reproduces
//! the observation of [1] that the linear cone kernel of [12] is NOT a
//! valid 2-D covariance — the motivation for kernel fitting.
//!
//! ```text
//! cargo run --release --example kernel_gallery
//! ```

use klest::geometry::Rect;
use klest::kernels::validity::check_positive_semidefinite;
use klest::kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, LinearConeKernel, MaternKernel,
    RadialExponentialKernel, SeparableExponentialKernel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gaussian = GaussianKernel::with_correlation_distance(1.0);
    let kernels: Vec<Box<dyn CovarianceKernel>> = vec![
        Box::new(gaussian),
        Box::new(ExponentialKernel::new(2.0)),
        Box::new(SeparableExponentialKernel::new(1.5)),
        Box::new(RadialExponentialKernel::new(2.0)),
        Box::new(MaternKernel::new(3.0, 2.5)?),
        Box::new(LinearConeKernel::new(1.0)),
    ];

    // Decay profiles.
    println!("correlation vs distance (isotropic kernels):");
    print!("{:>24}", "r =");
    for i in 0..6 {
        print!("{:>9.2}", 0.3 * i as f64);
    }
    println!();
    for k in &kernels {
        if k.correlation_at_distance(0.0).is_some() {
            print!("{:>24}", k.name());
            for i in 0..6 {
                let r = 0.3 * i as f64;
                print!("{:>9.4}", k.correlation_at_distance(r).expect("isotropic"));
            }
            println!();
        }
    }

    // Validity: sample Gram matrices and look for negative eigenvalues.
    println!("\nempirical positive-semidefiniteness (48 points x 8 trials):");
    for k in &kernels {
        let report = check_positive_semidefinite(k.as_ref(), Rect::unit_die(), 48, 8, 99)
            .expect("validity check");
        println!(
            "{:>24}: min eigenvalue {:>12.3e}  -> {}",
            k.name(),
            report.min_eigenvalue,
            if report.is_psd() { "valid" } else { "INVALID (as [1] predicts for the cone)" }
        );
    }

    // The radial kernel's artefact called out by the paper: points on an
    // origin-centred circle are perfectly correlated at any separation.
    let radial = RadialExponentialKernel::new(2.0);
    let a = klest::geometry::Point2::new(1.0, 0.0);
    let b = klest::geometry::Point2::new(-1.0, 0.0);
    println!(
        "\nradial kernel artefact: K((1,0), (-1,0)) = {:.3} despite distance 2 (the [2] baseline's flaw)",
        radial.eval(a, b)
    );
    Ok(())
}
