//! Non-rectangular dies: the Galerkin/KLE method works on any polygonal
//! region (Theorem 2). This example meshes an L-shaped die — think a
//! large SoC with a corner reserved for an imager — computes its KLE,
//! and runs the statistical timing flow for gates placed in the L.
//!
//! ```text
//! cargo run --release --example polygonal_die
//! ```

use klest::circuit::{generate, GeneratorConfig, WireModel};
use klest::core::{GalerkinKle, KleOptions, TruncationCriterion};
use klest::geometry::{Point2, Polygon};
use klest::kernels::GaussianKernel;
use klest::mesh::MeshBuilder;
use klest::ssta::{run_monte_carlo, KleFieldSampler, McConfig};
use klest::sta::{GateLibrary, Timer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // L-shaped die: 2x2 with the top-right 1x1 corner cut away.
    let outline = Polygon::new(vec![
        Point2::new(-1.0, -1.0),
        Point2::new(1.0, -1.0),
        Point2::new(1.0, 0.0),
        Point2::new(0.0, 0.0),
        Point2::new(0.0, 1.0),
        Point2::new(-1.0, 1.0),
    ])?;
    let mesh = MeshBuilder::polygon(outline.clone())
        .max_area_fraction(0.002)
        .min_angle_degrees(28.0)
        .build()?;
    println!("L-shaped die: {} (area {:.3}, polygon area 3)", mesh.quality(), mesh.total_area());

    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    let r = kle.select_rank(&TruncationCriterion::default());
    println!(
        "KLE rank r = {r}, variance captured {:.2}% (trace = die area = {:.3})",
        100.0 * kle.variance_captured(r),
        kle.eigenvalues().iter().sum::<f64>()
    );

    // A circuit placed inside the L: generate, then map the unit-die
    // placement into the L's lower-left square (a simple floorplan).
    let circuit = generate("l-block", GeneratorConfig::combinational(400, 3))?;
    let placement = klest::circuit::Placement::recursive_bisection_on(
        &circuit,
        klest::geometry::Rect::new(Point2::new(-0.95, -0.95), Point2::new(-0.05, -0.05)),
    );
    let timer = Timer::new(&circuit, &placement, WireModel::default(), GateLibrary::default_90nm());
    let sampler = KleFieldSampler::new(&kle, &mesh, r, placement.locations())?;
    let run = run_monte_carlo(&timer, &sampler, &McConfig::new(3000, 5).with_threads(4))?;
    let stats = run.worst_delay_stats();
    println!(
        "SSTA on the L-shaped die: mean {:.2}, sigma {:.3} ({} gates, {} RVs/param)",
        stats.mean,
        stats.std_dev,
        circuit.gate_count(),
        run.random_dims()
    );

    // The notch is not part of the die: placing a gate there fails loudly.
    let notch_gate = [Point2::new(0.5, 0.5)];
    match klest::ssta::KleFieldSampler::new(&kle, &mesh, r, &notch_gate) {
        Err(e) => println!("gate in the notch correctly rejected: {e}"),
        Ok(_) => println!("unexpected: notch gate accepted"),
    }
    Ok(())
}
