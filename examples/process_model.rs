//! Per-parameter process modeling: different correlation structure for
//! each statistical parameter (the general form of the paper's
//! Algorithms 1/2, `for all stat. parameters p_j` with kernel `K_j`),
//! plus end-to-end empirical validation of a sampler against its kernel.
//!
//! ```text
//! cargo run --release --example process_model
//! ```

use klest::circuit::{generate, GeneratorConfig};
use klest::geometry::Point2;
use klest::kernels::{GaussianKernel, MaternKernel};
use klest::ssta::experiments::{CircuitSetup, KleContext};
use klest::ssta::validation::validate_sampler;
use klest::ssta::{KleFieldSampler, McConfig, ProcessModel};
use klest::sta::StatParam;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two correlation structures: lithography-driven L varies smoothly
    // over long distances (Gaussian); Vt's dopant-driven component decays
    // faster and rougher (Matérn, eq. 6 of the paper / [1]).
    let l_kernel = GaussianKernel::with_correlation_distance(1.0);
    let vt_kernel = MaternKernel::new(4.0, 2.0)?;
    let l_ctx = KleContext::paper_default(&l_kernel)?;
    let vt_ctx = KleContext::build(&vt_kernel, 0.001, 28.0, &Default::default())?;
    println!(
        "L:  gaussian c = {:.3} -> rank {} | Vt: matern (b=4, s=2) -> rank {}",
        l_kernel.decay(),
        l_ctx.rank,
        vt_ctx.rank
    );

    let circuit = generate("soc-block", GeneratorConfig::combinational(1200, 7))?;
    let setup = CircuitSetup::prepare(&circuit);

    // L, W, tox share the smooth kernel; Vt gets its own rougher one.
    let model = ProcessModel::uniform_kle(&l_ctx).with_kle(StatParam::Vt, &vt_ctx);
    let run = model.run(&setup, &McConfig::new(5000, 11).with_threads(4))?;
    let stats = run.worst_delay_stats();
    println!(
        "mixed-kernel SSTA: mean {:.2}, sigma {:.3} over {} samples",
        stats.mean, stats.std_dev, stats.count
    );

    // Validate the Vt sampler empirically against its kernel at a few
    // probe pairs — the check any custom kernel should pass before use.
    let probes: Vec<Point2> = vec![
        Point2::new(0.0, 0.0),
        Point2::new(0.1, 0.0),
        Point2::new(0.4, 0.0),
        Point2::new(0.0, 0.8),
    ];
    let sampler = KleFieldSampler::new(&vt_ctx.kle, &vt_ctx.mesh, vt_ctx.rank, &probes)?;
    let report = validate_sampler(
        &sampler,
        &vt_kernel,
        &probes,
        &[(0, 1), (0, 2), (0, 3)],
        20_000,
        3,
    );
    for p in &report.pairs {
        println!(
            "corr {} <-> {}: empirical {:.3} vs kernel {:.3}",
            p.a, p.b, p.empirical, p.expected
        );
    }
    println!(
        "validation: max deviation {:.4}, mean variance {:.3} -> {}",
        report.max_deviation,
        report.mean_variance,
        if report.passes(0.08) { "PASS" } else { "FAIL" }
    );
    Ok(())
}
