//! Quickstart: compute the KLE of a spatial correlation kernel and draw
//! correlated field realisations from ~25 random variables.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use klest::core::{GalerkinKle, KleOptions, KleSampler, TruncationCriterion};
use klest::geometry::{Point2, Rect};
use klest::kernels::{CovarianceKernel, GaussianKernel};
use klest::mesh::MeshBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The die, normalized to [-1, 1]² as in the paper.
    let die = Rect::unit_die();

    // 2. A physically valid correlation kernel. The paper fits the
    //    Gaussian kernel to measurement-backed linear correlation with
    //    distance = half the die length.
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    println!("kernel: {} with c = {:.4}", kernel.name(), kernel.decay());

    // 3. Triangulate the die (the paper: max area 0.1% of the die,
    //    min angle 28°, giving n ≈ 1546 triangles).
    let mesh = MeshBuilder::new(die)
        .max_area_fraction(0.001)
        .min_angle_degrees(28.0)
        .build()?;
    println!("mesh: {}", mesh.quality());

    // 4. Karhunen-Loève expansion via the Galerkin method.
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
    println!(
        "top eigenvalues: {:?}",
        &kle.eigenvalues()[..5]
            .iter()
            .map(|l| (l * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );

    // 5. Truncate with the paper's λ-tail criterion (r = 25 in the paper).
    let r = kle.select_rank(&TruncationCriterion::default());
    println!(
        "selected rank r = {r}, capturing {:.2}% of the field variance",
        100.0 * kle.variance_captured(r)
    );

    // 6. Sample the field: r uncorrelated normals -> correlated values
    //    across the whole die (eq. 28).
    let sampler = KleSampler::new(&kle, &mesh, r)?;
    let xi: Vec<f64> = (0..r).map(|i| ((i * 37 + 11) % 13) as f64 / 13.0 - 0.5).collect();
    let field = sampler.realize(&xi)?;

    // Values at two nearby points track; far points don't.
    let probes = [
        Point2::new(0.0, 0.0),
        Point2::new(0.05, 0.05),
        Point2::new(0.9, -0.9),
    ];
    let tris = sampler.triangles_of(&probes)?;
    println!(
        "field at center {:.4}, near center {:.4} (correlated), far corner {:.4}",
        field[tris[0]], field[tris[1]], field[tris[2]]
    );
    Ok(())
}
