//! End-to-end statistical timing flow: synthesize a circuit, place it,
//! and compare the reference Monte Carlo STA (Algorithm 1, one RV per
//! gate) against the covariance-kernel KLE STA (Algorithm 2, 25 RVs).
//!
//! ```text
//! cargo run --release --example ssta_flow -- 1500
//! ```

use klest::circuit::{generate, GeneratorConfig};
use klest::kernels::GaussianKernel;
use klest::ssta::experiments::{compare_methods, CircuitSetup, KleContext};
use klest::ssta::McConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gates: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(800);

    // The workload: a synthetic ISCAS-like netlist (see klest-circuit for
    // the topology model), placed by recursive bisection.
    let circuit = generate("demo", GeneratorConfig::combinational(gates, 42))?;
    println!(
        "circuit: {} gates, {} inputs, {} outputs, depth {}",
        circuit.gate_count(),
        circuit.input_count(),
        circuit.outputs().len(),
        circuit.depth()
    );
    let setup = CircuitSetup::prepare(&circuit);

    // Correlation model + its KLE (shared across any number of circuits).
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::paper_default(&kernel)?;
    println!(
        "KLE: mesh n = {}, rank r = {}, setup {:.2}s",
        ctx.mesh.len(),
        ctx.rank,
        ctx.setup_time.as_secs_f64()
    );

    // Both Monte Carlo STAs, 2000 samples each.
    let config = McConfig::new(2000, 7).with_threads(4);
    let cmp = compare_methods(&setup, &kernel, &ctx, &config)?;
    println!(
        "reference MC  (Ng = {} RVs/param): mean = {:.2}, sigma = {:.3}, {:.2}s",
        cmp.gates,
        cmp.mc.mean,
        cmp.mc.std_dev,
        cmp.mc_time.as_secs_f64()
    );
    println!(
        "KLE MC        (r = {} RVs/param):  mean = {:.2}, sigma = {:.3}, {:.2}s",
        cmp.rank,
        cmp.kle.mean,
        cmp.kle.std_dev,
        cmp.kle_time.as_secs_f64()
    );
    println!(
        "mismatch: e_mu = {:.3}%, e_sigma = {:.3}%  |  speedup = {:.2}x",
        cmp.e_mu_pct, cmp.e_sigma_pct, cmp.speedup
    );
    Ok(())
}
