#!/usr/bin/env bash
# Runs a fixed, seeded SSTA workload with the observability sink on and
# writes a machine-readable run report (schema klest-run-report/v1) to
# BENCH_<name>.json, then sanity-checks the report for the keys any
# downstream consumer (CI artifact diffing, perf dashboards) relies on.
#
# Usage: scripts/bench_report.sh [name]
#   name   suffix for the output file (default: the short git SHA, or
#          "local" outside a checkout)
set -eu

cd "$(dirname "$0")/.."

name="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo local)}"
out="BENCH_${name}.json"

cargo build --release --offline -q -p klest-cli -p klest-bench

# Fixed workload: small enough for CI, large enough that every pipeline
# stage (mesh, assembly, eigensolve, truncation, both MC arms) gets a
# measurable wall time. Seeded, so everything except timings is
# reproducible run to run.
./target/release/klest ssta \
  --circuit c880 --scale 0.25 --samples 400 --seed 2008 --threads 2 \
  --report "$out"

# Stage-graph benches: serial-vs-parallel Galerkin assembly (outputs
# checked bitwise-equal before timing is reported) and the cold-vs-warm
# artifact cache, merged into the report as a top-level "benches" object.
./target/release/pipeline_bench --report "$out" --threads 4

# Matrix-free KLE scale bench: gates the operator path against the
# dense spectrum on a small mesh, then times a matrix-free solve that
# never assembles the n x n matrix and merges wall time plus the
# O(n*k)-vs-n^2 memory model (including the 1e5-element laptop-budget
# projection) into the report as a top-level "kle_scale" object.
./target/release/kle_scale_bench --report "$out" --threads 4

# Serving bench: replays thousands of mixed warm/cold queries plus
# hostile traffic (injected panic, hangs, deadline storm, queue-overflow
# flood) against the in-process daemon, asserts the typed-shed /
# fault-isolation / clean-drain contract, and merges admission and
# latency metrics into the report as a top-level "serve" object.
./target/release/serve_bench --report "$out" --requests 2000

# Hierarchical SSTA bench: flat cold/warm vs per-block extraction +
# composition over the shared ξ basis, plus a one-gate edit re-time that
# re-extracts exactly one block. Asserts the accuracy contract (worst
# mean within 2%, σ within 5% of flat; warm bitwise equals cold) and the
# >=5x warm-edit-vs-cold-flat speedup, then merges the timings into the
# report as a top-level "hier" object.
./target/release/hier_bench --report "$out"

# Schema gate: a report missing any of these keys means the
# instrumentation regressed, and the run fails.
required='
"schema": "klest-run-report/v1"
"spans"
"counters"
"gauges"
"histograms"
"events"
ssta/kle/mesh/build
ssta/kle/galerkin/assemble
ssta/kle/galerkin/eigensolve
ssta/kle/truncate
ssta/mc/reference
ssta/mc/kle
eigen.ql_iterations
mc.samples_per_sec
mesh.min_angle_deg
"benches"
galerkin_assembly_serial_vs_parallel
pipeline_cold_vs_warm_cache
"speedup"
"kle_scale"
"matrix_free_secs"
"matrix_free_bytes"
"dense_matrix_bytes"
"projected_1e5_matrix_free_bytes"
"serve"
"shed_overload"
"shed_deadline"
"latency_ms_warm_mean"
"latency_ms_cold_mean"
"queue_wait_ms_mean"
"drained_clean"
serve.queue.depth
serve.shed.overload
serve.latency_ms.warm
"slo"
"error_budget_remaining"
"telemetry_overhead"
"off_qps"
"on_qps"
"overhead_pct"
"hier"
"flat_cold_secs"
"flat_warm_secs"
"hier_cold_secs"
"hier_warm_secs"
"edit_retime_secs"
"speedup_edit_vs_flat"
"e_mu_pct"
"e_sigma_pct"
"warm_bitwise_equal"
'
fail=0
while IFS= read -r key; do
  [ -z "$key" ] && continue
  if ! grep -qF "$key" "$out"; then
    echo "error: $out is missing required key: $key" >&2
    fail=1
  fi
done <<EOF
$required
EOF
if [ "$fail" -ne 0 ]; then
  exit 1
fi

echo "bench report ok: $out"
