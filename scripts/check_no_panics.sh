#!/usr/bin/env bash
# Robustness gate (see DESIGN.md, "Error taxonomy & degradation policy"):
# library code in the numeric crates must not contain bare `unwrap()` or
# `panic!` — malformed input gets a typed error, marginal input a
# recorded repair. Documented invariant guards use expect()/assert!.
# Everything from the first `#[cfg(test)]` line of a file down is exempt
# (in-file test modules sit at the bottom by repo convention).
set -eu

fail=0
for crate in core ssta mesh kernels linalg obs proptest runtime serve; do
  while IFS= read -r f; do
    cut=$(grep -n '#\[cfg(test)\]' "$f" | head -1 | cut -d: -f1 || true)
    if [ -n "$cut" ]; then
      body=$(head -n $((cut - 1)) "$f")
    else
      body=$(cat "$f")
    fi
    found=$(printf '%s\n' "$body" \
      | grep -nE '\.unwrap\(\)|panic!\(' \
      | grep -vE '^[0-9]+:\s*//' || true)
    if [ -n "$found" ]; then
      echo "$f:"
      printf '%s\n' "$found"
      fail=1
    fi
  done < <(find "crates/$crate/src" -name '*.rs')
done

if [ "$fail" -ne 0 ]; then
  echo "error: unwrap()/panic! in library code — use typed errors or a documented expect() (DESIGN.md)" >&2
  exit 1
fi
echo "no-panic gate: clean"
