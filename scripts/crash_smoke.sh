#!/usr/bin/env bash
# CI smoke for crash-consistent warm restart: life 1 of `klest serve
# --state-dir` is killed by a real `std::process::abort` mid-request
# (the `serve.request` deterministic kill point, armed through
# KLEST_CRASH_AT), then life 2 reboots on the same state dir and must
# recover the disk cache and replay the journaled-but-unanswered
# requests. The gates are exactly-once delivery — every query answered
# exactly once ACROSS both lives, including the one that died mid-fault
# — a warm cache after restart, zero quarantined/failed cache entries in
# the stats probe, a clean drain, and a journal compacted back to its
# (empty) pending tail. The outer `timeout` turns any recovery hang
# into a hard failure.
#
# Usage: scripts/crash_smoke.sh
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -q -p klest-cli

state="CRASH_SMOKE_state"
req1="CRASH_SMOKE_life1.jsonl"
req2="CRASH_SMOKE_life2.jsonl"
out1="CRASH_SMOKE_life1_responses.jsonl"
out2="CRASH_SMOKE_life2_responses.jsonl"
tiny='"gates":8,"samples":16,"area_fraction":0.1'

rm -rf "$state" "$req1" "$req2" "$out1" "$out2"

{
  for i in 1 2 3 4; do
    echo "{\"id\":\"q$i\",$tiny}"
  done
  echo '{"op":"shutdown"}'
} > "$req1"

# Life 1: the 2nd arrival at the serve.request kill point aborts the
# whole process — after its journal admit was fsynced, before its
# response was written.
set +e
KLEST_CRASH_AT=serve.request:2 timeout 120 ./target/release/klest serve \
  --workers 1 --queue-depth 64 --state-dir "$state" --requests "$req1" > "$out1"
rc=$?
set -e
if [ "$rc" -eq 0 ] || [ "$rc" -eq 124 ]; then
  echo "error: life 1 should die by abort, exited with $rc" >&2
  exit 1
fi
if ! grep -q '^admit ' "$state/journal.log"; then
  echo "error: no admit records survived the crash" >&2
  exit 1
fi

{
  echo '{"op":"stats","id":"probe"}'
  echo '{"op":"shutdown"}'
} > "$req2"

# Life 2: same state dir, no crash armed. Boot must replay the pending
# journal tail and answer it before draining clean.
timeout 120 ./target/release/klest serve \
  --workers 1 --queue-depth 64 --state-dir "$state" --requests "$req2" > "$out2"

check() {
  if ! grep -q "$1" "$out2"; then
    echo "error: crash smoke recovery output is missing: $1" >&2
    echo "--- life 1 ---" >&2
    cat "$out1" >&2
    echo "--- life 2 ---" >&2
    cat "$out2" >&2
    exit 1
  fi
}

# Exactly-once across both lives: each query has exactly one completed
# response in exactly one life, crashed-mid-flight q included.
for i in 1 2 3 4; do
  n=$(cat "$out1" "$out2" | grep -c "\"id\":\"q$i\".*\"status\":\"completed\"")
  if [ "$n" -ne 1 ]; then
    echo "error: q$i answered $n times across both lives (want exactly 1)" >&2
    cat "$out1" "$out2" >&2
    exit 1
  fi
done

# The recovered disk cache serves at least one replayed query warm.
check '"status":"completed".*"warm":true'
# The stats probe sees a healthy recovered cache: nothing quarantined,
# no dropped writes.
check '"id":"probe".*"status":"stats"'
check '"status":"stats".*"disk_write_failures":0'
check '"status":"stats".*"quarantined":0'
# Life 2 drains clean.
check '"status":"drained".*"clean":true'

# The drain compacted the journal to its pending tail — which is empty.
if grep -q '^admit ' "$state/journal.log"; then
  echo "error: drained journal still carries pending admits" >&2
  cat "$state/journal.log" >&2
  exit 1
fi

rm -rf "$state" "$req1" "$req2" "$out1" "$out2"
echo "crash smoke ok: abort mid-request, restart replayed journal exactly once, cache warm, journal compacted"
