#!/usr/bin/env bash
# CI smoke for the serve daemon: replays ~50 mixed requests — healthy
# warm queries, a worker-pinning hang, a queue-expired deadline, an
# injected panic, a malformed line and a ping — through `klest serve`
# and requires every hostile input to terminate as a typed response and
# the drain to finish clean (exit 0). The outer `timeout` is the proof
# obligation: if admission control or cooperative cancellation ever
# regresses into a real hang, CI kills the process and the job fails
# instead of idling.
#
# Usage: scripts/serve_smoke.sh
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -q -p klest-cli

req="SERVE_SMOKE_requests.jsonl"
out="SERVE_SMOKE_responses.jsonl"
tiny='"gates":8,"samples":16,"area_fraction":0.1'
hier='"mode":"hier","gates":40,"circuit_seed":3,"blocks":4,"area_fraction":0.1'

{
  # One worker: "pin" hangs until its 300 ms deadline trips, so the
  # 1 ms deadline behind it must expire in the queue.
  echo "{\"id\":\"pin\",\"inject_hang_ms\":30000,\"deadline_ms\":300,$tiny}"
  echo "{\"id\":\"expired\",\"deadline_ms\":1,$tiny}"
  echo "{\"id\":\"boom\",\"inject_panic\":true,$tiny}"
  echo 'this line is not json'
  echo '{"op":"ping","id":"hb"}'
  for i in $(seq 1 45); do
    echo "{\"id\":\"w$i\",$tiny}"
  done
  # Three hierarchical queries on one worker: the first extracts all
  # four block models cold, the second reuses them all from the shared
  # block cache, the third re-times a one-gate edit that re-extracts
  # exactly one block. Gated on the per-request hier counters below.
  echo "{\"id\":\"hcold\",$hier}"
  echo "{\"id\":\"hwarm\",$hier}"
  echo "{\"id\":\"hedit\",$hier,\"edit_gate\":30,\"edit_scale\":0.4}"
  # One traced query (the daemon runs with --trace-responses) and a
  # stats probe at the end of the stream, schema-gated below.
  echo "{\"id\":\"traced\",\"trace\":true,$tiny}"
  echo '{"op":"stats","id":"probe"}'
  echo '{"op":"shutdown"}'
} > "$req"

timeout 120 ./target/release/klest serve \
  --workers 1 --queue-depth 64 --trace-responses --requests "$req" > "$out"

check() {
  if ! grep -q "$1" "$out"; then
    echo "error: serve smoke output is missing: $1" >&2
    echo "--- responses ---" >&2
    cat "$out" >&2
    exit 1
  fi
}

# The hang is broken cooperatively by its deadline.
check '"id":"pin".*"status":"\(cancelled\|salvaged\)"'
# The queued 1 ms deadline is shed without consuming the worker.
check '"id":"expired".*"reason":"deadline_expired"'
# The injected panic is isolated as a typed fault (after one retry).
check '"id":"boom".*"status":"fault"'
# The malformed line gets a typed null-id bad_request.
check '"id":null.*"status":"bad_request"'
# The ping is answered.
check '"id":"hb".*"status":"pong"'
# The traced query carries a trace object with stage wall times.
check '"id":"traced".*"trace":{"trace_id":"'
check '"id":"traced".*"artifacts_warm":{"mesh":'
check '"id":"traced".*"stages":\[.*"wall_ns":'
# The stats probe answers with the full introspection schema.
check '"id":"probe".*"status":"stats"'
check '"status":"stats".*"queue":{"depth":'
check '"status":"stats".*"capacity":'
check '"status":"stats".*"requests":{"admitted":'
check '"status":"stats".*"latency_ms":{"warm":{"count":'
check '"status":"stats".*"p50":'
check '"status":"stats".*"p95":'
check '"status":"stats".*"p99":'
check '"status":"stats".*"cache":{"hits":'
check '"status":"stats".*"hit_ratio":'
# The block-model layer shows up in both the counter and size sections
# of the stats schema (values may be zero at probe time: ops are
# answered inline, ahead of queued queries).
check '"status":"stats".*"block":{"hits":'
check '"status":"stats".*"sizes":{"mesh":'
# The hier triple proves block-model sharing through the daemon cache:
# cold extracts all 4, warm reuses all 4, the edit re-extracts exactly 1.
check '"id":"hcold".*"hier":{"blocks":4,"cache_hits":0,"extracted":4}'
check '"id":"hwarm".*"hier":{"blocks":4,"cache_hits":4,"extracted":0}'
check '"id":"hedit".*"edit":{"gate":30,"extracted":1,'
check '"status":"stats".*"utilization":'
check '"status":"stats".*"slo":{"target":'
check '"status":"stats".*"error_budget_remaining":'
# The drain finishes clean and carries the SLO window.
check '"status":"drained".*"slo_target":'
check '"status":"drained".*"clean":true'

completed=$(grep -c '"status":"completed"' "$out")
if [ "$completed" -ne 49 ]; then
  echo "error: expected all 49 healthy queries to complete, got $completed" >&2
  exit 1
fi

rm -f "$req" "$out"
echo "serve smoke ok: 49 completed, stats+trace+hier schema gated, drain clean"
