//! Unifying error type for the whole pipeline.

use klest_core::KleError;
use klest_kernels::KernelError;
use klest_linalg::LinalgError;
use klest_mesh::MeshError;
use klest_ssta::experiments::KleContextError;
use klest_ssta::SstaError;
use std::fmt;

/// Any error the kernel → mesh → KLE → SSTA pipeline can produce,
/// so applications can use one `Result<_, KlestError>` end to end:
///
/// ```
/// use klest::prelude::*;
/// use klest::KlestError;
///
/// fn flow() -> Result<(), KlestError> {
///     let mesh = MeshBuilder::new(Rect::unit_die()).max_area(0.1).build()?;
///     let kernel = GaussianKernel::with_correlation_distance(1.0);
///     let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
///     let _ = KleSampler::new(&kle, &mesh, 5)?;
///     Ok(())
/// }
/// # flow().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum KlestError {
    /// Dense linear algebra failure (factorisation, eigensolve).
    Linalg(LinalgError),
    /// Kernel construction or validity failure.
    Kernel(KernelError),
    /// Mesh construction failure.
    Mesh(MeshError),
    /// KLE computation or sampling failure.
    Kle(KleError),
    /// SSTA configuration or sampling failure.
    Ssta(SstaError),
    /// A command-line / harness argument did not parse or was out of
    /// range (e.g. `--samples banana`, `--deadline -1`).
    InvalidArgument {
        /// Flag name, without the leading `--`.
        key: String,
        /// The raw value supplied.
        value: String,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for KlestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KlestError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            KlestError::Kernel(e) => write!(f, "kernel failure: {e}"),
            KlestError::Mesh(e) => write!(f, "mesh failure: {e}"),
            KlestError::Kle(e) => write!(f, "KLE failure: {e}"),
            KlestError::Ssta(e) => write!(f, "SSTA failure: {e}"),
            KlestError::InvalidArgument { key, value, message } => {
                write!(f, "invalid argument --{key} {value}: {message}")
            }
        }
    }
}

impl std::error::Error for KlestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KlestError::Linalg(e) => Some(e),
            KlestError::Kernel(e) => Some(e),
            KlestError::Mesh(e) => Some(e),
            KlestError::Kle(e) => Some(e),
            KlestError::Ssta(e) => Some(e),
            KlestError::InvalidArgument { .. } => None,
        }
    }
}

impl From<klest_bench::ArgParseError> for KlestError {
    fn from(e: klest_bench::ArgParseError) -> Self {
        KlestError::InvalidArgument {
            key: e.key,
            value: e.value,
            message: e.message,
        }
    }
}

impl From<klest_sta::StaError> for KlestError {
    fn from(e: klest_sta::StaError) -> Self {
        match e {
            klest_sta::StaError::InvalidArgument { key, value, message } => {
                KlestError::InvalidArgument { key, value, message }
            }
        }
    }
}

impl From<LinalgError> for KlestError {
    fn from(e: LinalgError) -> Self {
        KlestError::Linalg(e)
    }
}

impl From<KernelError> for KlestError {
    fn from(e: KernelError) -> Self {
        KlestError::Kernel(e)
    }
}

impl From<MeshError> for KlestError {
    fn from(e: MeshError) -> Self {
        KlestError::Mesh(e)
    }
}

impl From<KleError> for KlestError {
    fn from(e: KleError) -> Self {
        KlestError::Kle(e)
    }
}

impl From<SstaError> for KlestError {
    fn from(e: SstaError) -> Self {
        KlestError::Ssta(e)
    }
}

impl From<KleContextError> for KlestError {
    fn from(e: KleContextError) -> Self {
        match e {
            KleContextError::Mesh(m) => KlestError::Mesh(m),
            KleContextError::Ssta(s) => KlestError::Ssta(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display() {
        let e: KlestError = LinalgError::Empty.into();
        assert!(matches!(e, KlestError::Linalg(_)));
        assert!(e.to_string().contains("linear algebra"));
        assert!(e.source().is_some());

        let e: KlestError = KernelError::NonPositiveParameter {
            name: "eta",
            value: -1.0,
        }
        .into();
        assert!(matches!(e, KlestError::Kernel(_)));
        assert!(e.to_string().contains("kernel"));

        let e: KlestError = MeshError::DegenerateTriangle { index: 3, area: 0.0 }.into();
        assert!(matches!(e, KlestError::Mesh(_)));
        assert!(e.to_string().contains("degenerate"));

        let e: KlestError = KleError::PointOutsideMesh { index: 7 }.into();
        assert!(matches!(e, KlestError::Kle(_)));

        let e: KlestError = SstaError::InvalidConfig {
            name: "samples",
            value: "0".into(),
        }
        .into();
        assert!(matches!(e, KlestError::Ssta(_)));
        assert!(e.source().is_some());
    }

    #[test]
    fn arg_parse_error_converts_to_invalid_argument() {
        let e: KlestError = klest_bench::ArgParseError {
            key: "samples".into(),
            value: "banana".into(),
            message: "invalid digit found in string".into(),
        }
        .into();
        assert!(matches!(e, KlestError::InvalidArgument { .. }));
        assert!(e.to_string().contains("--samples banana"));
        assert!(e.source().is_none());
    }

    #[test]
    fn context_error_splits_into_arms() {
        let e: KlestError =
            KleContextError::Mesh(MeshError::PointBudgetExhausted { max_points: 10 }).into();
        assert!(matches!(e, KlestError::Mesh(_)));
        let e: KlestError = KleContextError::Ssta(SstaError::InvalidConfig {
            name: "scale",
            value: "nan".into(),
        })
        .into();
        assert!(matches!(e, KlestError::Ssta(_)));
    }

    #[test]
    fn nested_errors_round_trip_through_ssta() {
        // A KleError surfacing through the SSTA layer keeps its source
        // chain intact.
        let inner = KleError::RankOutOfRange {
            requested: 30,
            available: 25,
        };
        let e: KlestError = SstaError::Kle(inner).into();
        let src = e.source().expect("ssta source");
        assert!(src.to_string().contains("30"));
    }
}
