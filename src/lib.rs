//! # klest — correlation-kernel KLE for statistical timing
//!
//! Umbrella crate re-exporting the whole `klest` workspace: a from-scratch
//! Rust reproduction of *"Exploiting Correlation Kernels for Efficient
//! Handling of Intra-Die Spatial Correlation, with Application to
//! Statistical Timing"* (DATE 2008).
//!
//! The pipeline, end to end:
//!
//! 1. model intra-die variation of a device parameter (`L`, `W`, `Vt`,
//!    `tox`) as a 2-D random field with a covariance *kernel*
//!    ([`kernels`]);
//! 2. triangulate the normalized die ([`mesh`]);
//! 3. compute the Karhunen-Loève Expansion of the field with the paper's
//!    Galerkin method ([`core`]), compressing thousands of correlated
//!    per-gate RVs into ~25 uncorrelated ones;
//! 4. feed the compressed representation to a Monte Carlo statistical
//!    static timing analysis ([`ssta`], [`sta`], [`circuit`]) — or to
//!    the one-pass canonical SSTA / polynomial-chaos surrogate built on
//!    the same basis.
//!
//! ```
//! use klest::kernels::GaussianKernel;
//! use klest::mesh::MeshBuilder;
//! use klest::core::{GalerkinKle, KleOptions};
//! use klest::geometry::Rect;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let die = Rect::unit_die();
//! let mesh = MeshBuilder::new(die)
//!     .max_area(0.05)
//!     .min_angle_degrees(28.0)
//!     .build()?;
//! let kernel = GaussianKernel::with_correlation_distance(1.0);
//! let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default())?;
//! assert!(kle.eigenvalues()[0] > 0.0);
//! # Ok(())
//! # }
//! ```

mod error;

pub use error::KlestError;

pub use klest_circuit as circuit;
pub use klest_core as core;
pub use klest_geometry as geometry;
pub use klest_kernels as kernels;
pub use klest_linalg as linalg;
pub use klest_mesh as mesh;
pub use klest_obs as obs;
pub use klest_runtime as runtime;
pub use klest_serve as serve;
pub use klest_ssta as ssta;
pub use klest_sta as sta;

/// One-line import for the common flow:
/// `use klest::prelude::*;` brings in the types needed to go from a
/// kernel to a statistical timing result.
pub mod prelude {
    pub use crate::KlestError;
    pub use klest_circuit::{benchmark, generate, BenchmarkId, Circuit, GeneratorConfig, Placement};
    pub use klest_core::pipeline::{
        run_frontend, ArtifactCache, ArtifactKey, Engine, ExecPolicy, FrontEndConfig, Stage,
    };
    pub use klest_core::{GalerkinKle, KleOptions, KleSampler, QuadratureRule, TruncationCriterion};
    pub use klest_geometry::{Point2, Rect};
    pub use klest_kernels::{CovarianceKernel, GaussianKernel, MaternKernel};
    pub use klest_mesh::{Mesh, MeshBuilder};
    pub use klest_runtime::{Budget, CancelToken, StageBudgets, Supervisor};
    pub use klest_ssta::experiments::{CircuitSetup, KleContext};
    pub use klest_ssta::{
        run_monte_carlo, run_monte_carlo_supervised, CholeskySampler, KleFieldSampler, McConfig,
        ProcessModel, SalvageStats,
    };
    pub use klest_sta::{GateLibrary, ParamVector, Timer};
}
