//! Canonical first-order SSTA vs the Monte Carlo reference — the paper's
//! "KLE RVs as parameters for gate timing models" claim, end to end.
//! One symbolic pass must match the MC mean tightly and the MC σ within
//! the linearisation + Clark error budget, at a tiny fraction of the
//! cost.

use klest::circuit::{generate, GeneratorConfig};
use klest::kernels::GaussianKernel;
use klest::ssta::canonical::analyze_canonical;
use klest::ssta::experiments::{CircuitSetup, KleContext};
use klest::ssta::{run_monte_carlo, KleFieldSampler, McConfig};

#[test]
fn canonical_matches_monte_carlo_moments() {
    let circuit = generate("can", GeneratorConfig::combinational(300, 7)).expect("gen");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("ctx");
    let sampler =
        KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).expect("sampler");

    // Monte Carlo on the SAME KLE basis (so only linearisation + Clark
    // differ).
    let mc = run_monte_carlo(&setup.timer, &sampler, &McConfig::new(8000, 3).with_threads(2))
        .expect("mc");
    let mc_stats = mc.worst_delay_stats();

    let started = std::time::Instant::now();
    let canonical = analyze_canonical(&setup.timer, &sampler).expect("canonical");
    let canonical_time = started.elapsed();
    let worst = canonical.worst();

    let mean_err = 100.0 * (worst.mean - mc_stats.mean).abs() / mc_stats.mean;
    let sigma_err = 100.0 * (worst.sigma() - mc_stats.std_dev).abs() / mc_stats.std_dev;
    assert!(
        mean_err < 1.0,
        "canonical mean {:.2} vs MC {:.2} ({mean_err:.2}% off)",
        worst.mean,
        mc_stats.mean
    );
    assert!(
        sigma_err < 30.0,
        "canonical sigma {:.3} vs MC {:.3} ({sigma_err:.1}% off)",
        worst.sigma(),
        mc_stats.std_dev
    );
    // One pass must be far cheaper than 8000 passes.
    assert!(
        canonical_time < mc.wall_time() / 20,
        "canonical {canonical_time:?} should crush MC {:?}",
        mc.wall_time()
    );
}

#[test]
fn canonical_arrivals_track_nominal_structure() {
    use klest::sta::ParamVector;
    let circuit = generate("can2", GeneratorConfig::combinational(150, 9)).expect("gen");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("ctx");
    let sampler =
        KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations()).expect("sampler");
    let canonical = analyze_canonical(&setup.timer, &sampler).expect("canonical");
    let nominal = setup
        .timer
        .analyze(&vec![ParamVector::ZERO; setup.timer.node_count()]);
    // Canonical means sit at or slightly above the nominal arrivals
    // (Clark's max only inflates means), and every variance is finite
    // and non-negative.
    for id in (0..setup.timer.node_count()).map(|i| klest::circuit::NodeId(i as u32)) {
        let c = canonical.arrival(id);
        assert!(c.mean >= nominal.arrival(id) - 1e-9, "node {id}");
        assert!(c.variance().is_finite());
    }
    assert!(canonical.worst().mean >= nominal.worst_delay() - 1e-9);
}
