//! Chaos property suite for crash-consistent checkpoint/resume: kills
//! the Lanczos eigensolve and the Monte Carlo SSTA loop at their
//! deterministic abort points (`lanczos/cycle`, `mc/batch`) via
//! catch-point unwinding, then resumes from the last durable
//! [`CheckpointStore`] entry and asserts the result is **bitwise
//! identical** to the uninterrupted run. Also property-tests the two
//! on-disk recovery formats under torn writes: a truncated checkpoint
//! file must quarantine (never load garbage), and a truncated request
//! journal must replay only intact payloads. Every property is seeded
//! and replayable via `KLEST_PROPTEST_SEED=<property>:<seed>`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use klest::circuit::{generate, GeneratorConfig, Placement, WireModel};
use klest::kernels::GaussianKernel;
use klest::linalg::{LanczosState, PartialEigen};
use klest::runtime::{
    arm_crash_point, disarm_crash_points, AbortSignal, CheckpointStore, CrashMode,
};
use klest::serve::RequestJournal;
use klest::ssta::{
    run_monte_carlo, run_monte_carlo_checkpointed, CholeskySampler, McCheckpoint, McConfig, McRun,
};
use klest::sta::{GateLibrary, Timer};
use klest_proptest::{check, check_config, strategies, Config};

/// Crash points are process-global; tests that arm them serialize here.
static CRASH_LOCK: Mutex<()> = Mutex::new(());

const K: usize = 4;
const MAX_ITERS: usize = 4000;

/// A fresh scratch directory per call (removed by the caller on success;
/// left behind for inspection when a property fails).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "klest-ckpt-props-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Exact bit patterns of an eigensolve result: resume ≡ uninterrupted
/// is claimed bitwise, so the comparison must be too.
fn eig_bits(e: &PartialEigen) -> (Vec<u64>, Vec<Vec<u64>>) {
    let values = e.eigenvalues().iter().map(|v| v.to_bits()).collect();
    let vectors = (0..e.len())
        .map(|j| e.eigenvector(j).iter().map(|v| v.to_bits()).collect())
        .collect();
    (values, vectors)
}

/// Exact bit patterns of an MC run: worst-delay samples, Welford
/// moments, and criticality all have to survive a crash unchanged.
fn mc_bits(run: &McRun) -> (Vec<u64>, usize, Vec<u64>, Vec<u64>, Vec<u64>) {
    let worst = run.worst_delays().iter().map(|v| v.to_bits()).collect();
    let (count, mean, m2) = run.output_stats().raw_parts();
    let mean = mean.iter().map(|v| v.to_bits()).collect();
    let m2 = m2.iter().map(|v| v.to_bits()).collect();
    let crit = run.criticality().iter().map(|v| v.to_bits()).collect();
    (worst, count, mean, m2, crit)
}

fn mc_setup(gates: usize) -> (Timer, CholeskySampler) {
    let c = generate("chaos", GeneratorConfig::combinational(gates, 3)).expect("circuit");
    let p = Placement::recursive_bisection(&c);
    let timer = Timer::new(&c, &p, WireModel::default(), GateLibrary::default_90nm());
    let sampler = CholeskySampler::new(&GaussianKernel::new(2.0), p.locations()).expect("sampler");
    (timer, sampler)
}

/// Runs `body` with the `hits`-th arrival at `site` armed to unwind,
/// and returns the [`AbortSignal`] site it died with.
fn kill_at<R>(site: &str, hits: u64, body: impl FnOnce() -> R) -> Result<String, String> {
    arm_crash_point(site, hits, CrashMode::Unwind);
    let outcome = catch_unwind(AssertUnwindSafe(body));
    disarm_crash_points();
    match outcome {
        Ok(_) => Err(format!("{site} hit {hits}: armed kill never fired")),
        Err(payload) => match payload.downcast_ref::<AbortSignal>() {
            Some(signal) => Ok(signal.site.clone()),
            None => Err(format!("{site} hit {hits}: died of a non-abort panic")),
        },
    }
}

/// Resuming the Lanczos eigensolve from any thick-restart checkpoint —
/// through the textual serialization round-trip — reproduces the
/// uninterrupted spectrum bitwise.
#[test]
fn lanczos_resume_from_any_cycle_is_bitwise() {
    let strat = strategies::spd_matrix(24..40);
    check("lanczos_resume_from_any_cycle_is_bitwise", &strat, |a| {
        let mut checkpoints: Vec<String> = Vec::new();
        let baseline = PartialEigen::lanczos_op_with_state(a, K, MAX_ITERS, None, &mut |s| {
            checkpoints.push(s.serialize());
        })
        .map_err(|e| format!("baseline solve: {e:?}"))?;
        let want = eig_bits(&baseline);
        for (i, text) in checkpoints.iter().enumerate() {
            let state = LanczosState::deserialize(text)
                .ok_or_else(|| format!("cycle {i}: checkpoint failed to round-trip"))?;
            let resumed =
                PartialEigen::lanczos_op_with_state(a, K, MAX_ITERS, Some(&state), &mut |_| {})
                    .map_err(|e| format!("resume from cycle {i}: {e:?}"))?;
            if eig_bits(&resumed) != want {
                return Err(format!(
                    "resume from cycle {i} of {} diverged from the uninterrupted spectrum",
                    checkpoints.len()
                ));
            }
        }
        Ok(())
    });
}

/// Kills the eigensolve at **every** `lanczos/cycle` arrival in turn
/// (unwinding `AbortSignal`, the in-test stand-in for `abort`), then
/// restarts from the last durable [`CheckpointStore`] entry the crashed
/// run left behind. The restarted spectrum must match the uninterrupted
/// one bitwise.
#[test]
fn lanczos_killed_at_every_cycle_resumes_bitwise() {
    let guard = CRASH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let name = "lanczos_killed_at_every_cycle_resumes_bitwise";
    let cfg = Config {
        cases: 4,
        ..Config::from_env(name)
    };
    let strat = strategies::spd_matrix(24..40);
    check_config(name, &cfg, &strat, |a| {
        let mut cycles = 0usize;
        let baseline = PartialEigen::lanczos_op_with_state(a, K, MAX_ITERS, None, &mut |_| {
            cycles += 1;
        })
        .map_err(|e| format!("baseline solve: {e:?}"))?;
        let want = eig_bits(&baseline);
        for h in 1..=cycles {
            let dir = scratch_dir("lanczos");
            let store = CheckpointStore::open(&dir).map_err(|e| format!("store: {e}"))?;
            let site = kill_at("lanczos/cycle", h as u64, || {
                PartialEigen::lanczos_op_with_state(a, K, MAX_ITERS, None, &mut |s| {
                    store
                        .save("lanczos", &s.serialize())
                        .expect("durable checkpoint");
                })
            })?;
            if site != "lanczos/cycle" {
                return Err(format!("hit {h}: died at the wrong site {site:?}"));
            }
            let (_, text) = store
                .load("lanczos")
                .ok_or_else(|| format!("hit {h}: no durable checkpoint survived the crash"))?;
            let state = LanczosState::deserialize(&text)
                .ok_or_else(|| format!("hit {h}: surviving checkpoint is torn"))?;
            let resumed =
                PartialEigen::lanczos_op_with_state(a, K, MAX_ITERS, Some(&state), &mut |_| {})
                    .map_err(|e| format!("hit {h}: resume failed: {e:?}"))?;
            if eig_bits(&resumed) != want {
                return Err(format!("hit {h}: post-crash resume diverged bitwise"));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        Ok(())
    });
    drop(guard);
}

/// Resuming the Monte Carlo SSTA loop from any batch checkpoint —
/// through the textual serialization round-trip — reproduces the
/// uninterrupted run's samples, moments and criticality bitwise, for
/// plain and antithetic sampling alike.
#[test]
fn mc_resume_from_any_batch_is_bitwise() {
    let (timer, sampler) = mc_setup(30);
    let name = "mc_resume_from_any_batch_is_bitwise";
    let cfg = Config {
        cases: 6,
        ..Config::from_env(name)
    };
    let strat = (
        strategies::usize_in(20..60),
        strategies::usize_in(0..1000),
        strategies::usize_in(1..5),
    );
    check_config(name, &cfg, &strat, |&(samples, seed, batch_sel)| {
        // Antithetic pairs force an even batch size.
        let batch = 2 * batch_sel;
        let mut mc = McConfig::new(samples, seed as u64);
        if seed % 2 == 1 {
            mc = mc.with_antithetic();
        }
        let plain = run_monte_carlo(&timer, &sampler, &mc).map_err(|e| format!("plain: {e:?}"))?;
        let mut checkpoints: Vec<String> = Vec::new();
        let full = run_monte_carlo_checkpointed(&timer, &sampler, &mc, batch, None, &mut |cp| {
            checkpoints.push(cp.serialize());
        })
        .map_err(|e| format!("checkpointed: {e:?}"))?;
        let want = mc_bits(&plain);
        if mc_bits(&full) != want {
            return Err("checkpointed run diverged from plain run".into());
        }
        if checkpoints.len() != samples.div_ceil(batch) {
            return Err(format!(
                "expected {} batch boundaries, saw {}",
                samples.div_ceil(batch),
                checkpoints.len()
            ));
        }
        for (i, text) in checkpoints.iter().enumerate() {
            let cp = McCheckpoint::deserialize(text)
                .ok_or_else(|| format!("batch {i}: checkpoint failed to round-trip"))?;
            let resumed =
                run_monte_carlo_checkpointed(&timer, &sampler, &mc, batch, Some(&cp), &mut |_| {})
                    .map_err(|e| format!("resume from batch {i}: {e:?}"))?;
            if mc_bits(&resumed) != want {
                return Err(format!("resume from batch {i} diverged bitwise"));
            }
        }
        Ok(())
    });
}

/// Kills the MC loop at every `mc/batch` arrival in turn and restarts
/// from the last durable [`CheckpointStore`] entry; the SSTA moments of
/// the resumed run must match the uninterrupted run bitwise.
#[test]
fn mc_killed_at_every_batch_resumes_bitwise() {
    let guard = CRASH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (timer, sampler) = mc_setup(25);
    for antithetic in [false, true] {
        let mut mc = McConfig::new(30, 7);
        if antithetic {
            mc = mc.with_antithetic();
        }
        let batch = 8;
        let plain = run_monte_carlo(&timer, &sampler, &mc).expect("plain run");
        let want = mc_bits(&plain);
        let batches = 30usize.div_ceil(batch);
        for h in 1..=batches {
            let dir = scratch_dir("mc");
            let store = CheckpointStore::open(&dir).expect("store");
            let site = kill_at("mc/batch", h as u64, || {
                run_monte_carlo_checkpointed(&timer, &sampler, &mc, batch, None, &mut |cp| {
                    store
                        .save("mc", &cp.serialize())
                        .expect("durable checkpoint");
                })
            })
            .expect("armed kill must fire with an AbortSignal");
            assert_eq!(site, "mc/batch", "hit {h} died at the wrong site");
            let (_, text) = store.load("mc").expect("a durable checkpoint survived");
            let cp = McCheckpoint::deserialize(&text).expect("surviving checkpoint parses");
            assert_eq!(cp.completed(), (h * batch).min(30), "hit {h} checkpoint depth");
            let resumed =
                run_monte_carlo_checkpointed(&timer, &sampler, &mc, batch, Some(&cp), &mut |_| {})
                    .expect("resume");
            assert_eq!(
                mc_bits(&resumed),
                want,
                "hit {h} (antithetic={antithetic}): post-crash resume diverged bitwise"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    drop(guard);
}

/// The request journal's recovery contract: reopening yields exactly
/// the admits without a done marker, in admission order — and when the
/// tail of the file is torn off at an arbitrary byte, every surviving
/// pending payload is still byte-identical to what was admitted (a
/// damaged record degrades to "lost", never to "replayed corrupted").
#[test]
fn journal_pending_survives_truncation_with_intact_payloads() {
    let strat = (
        strategies::vec_of(strategies::usize_in(0..1_000_000), 1..10),
        strategies::usize_in(0..1024),
        strategies::usize_in(0..400),
    );
    check(
        "journal_pending_survives_truncation_with_intact_payloads",
        &strat,
        |(ids, done_mask, cut)| {
            let dir = scratch_dir("journal");
            let path = dir.join("journal.log");
            let mut payloads = Vec::new();
            {
                let (journal, pending) = RequestJournal::open(&path);
                if !pending.is_empty() {
                    return Err("fresh journal reported pending requests".into());
                }
                for (i, id) in ids.iter().enumerate() {
                    let line = format!(r#"{{"op":"query","id":"q{i}-{id}"}}"#);
                    let seq = journal
                        .record_admit(&line)
                        .ok_or_else(|| format!("admit {i} not durable"))?;
                    if seq != i as u64 {
                        return Err(format!("admit {i} got seq {seq}"));
                    }
                    payloads.push(line);
                }
                for i in 0..ids.len() {
                    if done_mask >> i & 1 == 1 {
                        journal.record_done(i as u64);
                    }
                }
            }
            // Clean reopen: pending is exactly admits minus dones, ordered.
            let (_, pending) = RequestJournal::open(&path);
            let expected: Vec<(u64, String)> = payloads
                .iter()
                .enumerate()
                .filter(|(i, _)| done_mask >> *i & 1 == 0)
                .map(|(i, line)| (i as u64, line.clone()))
                .collect();
            if pending.len() != expected.len() {
                return Err(format!(
                    "clean reopen: {} pending, expected {}",
                    pending.len(),
                    expected.len()
                ));
            }
            for (got, (seq, line)) in pending.iter().zip(&expected) {
                if got.seq != *seq || &got.line != line {
                    return Err(format!("clean reopen: seq {seq} replayed wrong payload"));
                }
            }
            // Tear the tail off at an arbitrary byte (records are ASCII).
            let text = std::fs::read_to_string(&path).map_err(|e| format!("read: {e}"))?;
            let keep = text.len() - cut % (text.len() + 1);
            std::fs::write(&path, &text[..keep]).map_err(|e| format!("truncate: {e}"))?;
            let (_, pending) = RequestJournal::open(&path);
            for got in &pending {
                let original = payloads
                    .get(got.seq as usize)
                    .ok_or_else(|| format!("torn reopen invented seq {}", got.seq))?;
                if &got.line != original {
                    return Err(format!(
                        "torn reopen replayed a corrupted payload for seq {}",
                        got.seq
                    ));
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        },
    );
}

/// A checkpoint file torn at any strict byte prefix must never load: the
/// store quarantines it (renamed aside and counted), so recovery starts
/// clean instead of resuming from garbage.
#[test]
fn checkpoint_store_quarantines_any_torn_prefix() {
    let strat = (
        strategies::vec_of(strategies::usize_in(0..94), 1..60),
        strategies::usize_in(0..10_000),
    );
    check(
        "checkpoint_store_quarantines_any_torn_prefix",
        &strat,
        |(chars, cut)| {
            let dir = scratch_dir("store");
            let payload: String = chars.iter().map(|c| (b' ' + *c as u8) as char).collect();
            {
                let store = CheckpointStore::open(&dir).map_err(|e| format!("open: {e}"))?;
                store
                    .save("state", &payload)
                    .map_err(|e| format!("save: {e}"))?;
            }
            let path = dir.join("state.ckpt");
            let full = std::fs::read(&path).map_err(|e| format!("read: {e}"))?;
            let keep = cut % full.len();
            std::fs::write(&path, &full[..keep]).map_err(|e| format!("truncate: {e}"))?;
            let store = CheckpointStore::open(&dir).map_err(|e| format!("reopen: {e}"))?;
            if let Some((generation, text)) = store.load("state") {
                return Err(format!(
                    "torn checkpoint ({keep} of {} bytes) loaded as generation {generation} \
                     with {} payload bytes",
                    full.len(),
                    text.len()
                ));
            }
            if store.quarantined() != 1 {
                return Err(format!(
                    "expected 1 quarantined checkpoint, counted {}",
                    store.quarantined()
                ));
            }
            if !dir.join("state.ckpt.quarantine").exists() {
                return Err("torn bytes were not set aside for inspection".into());
            }
            let _ = std::fs::remove_dir_all(&dir);
            Ok(())
        },
    );
}
