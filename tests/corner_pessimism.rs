//! The economic argument for statistical timing, quantified: the classic
//! 3σ slow corner assumes every gate on the die is simultaneously slow,
//! which spatial correlation makes physically implausible — the corner
//! delay should sit far above the Monte Carlo distribution's 99.9th
//! percentile, and the gap should *widen* as correlation weakens
//! (independent variation averages out across paths).

use klest::circuit::{generate, GeneratorConfig};
use klest::kernels::GaussianKernel;
use klest::ssta::experiments::CircuitSetup;
use klest::ssta::{quantile, run_monte_carlo, CholeskySampler, McConfig};
use klest::sta::{analyze_corners, Corner};

#[test]
fn slow_corner_is_pessimistic_vs_monte_carlo() {
    let circuit = generate("cp", GeneratorConfig::combinational(250, 3)).expect("gen");
    let setup = CircuitSetup::prepare(&circuit);
    let corners = analyze_corners(&setup.timer, &Corner::standard_set(3.0));
    let ss = corners[2].report.worst_delay();
    let ff = corners[0].report.worst_delay();

    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let sampler = CholeskySampler::new(&kernel, setup.locations()).expect("chol");
    let run = run_monte_carlo(&setup.timer, &sampler, &McConfig::new(4000, 11).with_threads(2))
        .expect("mc");
    let q999 = quantile(run.worst_delays(), 0.999);
    let q001 = quantile(run.worst_delays(), 0.001);

    assert!(
        ss > q999,
        "3-sigma slow corner ({ss}) must exceed the MC 99.9th percentile ({q999})"
    );
    assert!(
        ff < q001,
        "3-sigma fast corner ({ff}) must undercut the MC 0.1th percentile ({q001})"
    );
    // Margin is substantial, not marginal: the corner overshoots the
    // distribution tail by more than one MC standard deviation.
    let stats = run.worst_delay_stats();
    assert!(
        ss - q999 > stats.std_dev,
        "corner pessimism margin {} should exceed one sigma {}",
        ss - q999,
        stats.std_dev
    );
}

#[test]
fn pessimism_gap_grows_as_correlation_weakens() {
    let circuit = generate("cp2", GeneratorConfig::combinational(200, 9)).expect("gen");
    let setup = CircuitSetup::prepare(&circuit);
    let ss = analyze_corners(&setup.timer, &[Corner::slow(3.0)])[0]
        .report
        .worst_delay();
    let config = McConfig::new(3000, 17).with_threads(2);

    // Strongly correlated die: the whole chip moves together, so the MC
    // tail gets close(r) to the corner.
    let correlated = CholeskySampler::new(&GaussianKernel::new(0.05), setup.locations()).expect("c");
    let run_corr = run_monte_carlo(&setup.timer, &correlated, &config).expect("mc");
    let gap_corr = ss - quantile(run_corr.worst_delays(), 0.999);

    // Nearly independent gates: per-path averaging shrinks the spread,
    // leaving the corner much more pessimistic.
    let independent =
        CholeskySampler::new(&GaussianKernel::new(150.0), setup.locations()).expect("c");
    let run_ind = run_monte_carlo(&setup.timer, &independent, &config).expect("mc");
    let gap_ind = ss - quantile(run_ind.worst_delays(), 0.999);

    assert!(
        gap_ind > gap_corr,
        "independent-variation gap {gap_ind} should exceed correlated gap {gap_corr}"
    );
}
