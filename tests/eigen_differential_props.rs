//! Differential cross-checks of the linear-algebra engines on random
//! SPD (and shifted indefinite) matrices: the Householder/QL solver and
//! the cyclic Jacobi fallback are independent algorithms that must
//! agree, and the Cholesky factor and the eigendecomposition factor
//! `Q √Λ` must reproduce the same covariance — which is exactly why the
//! sampler fallback chain in klest-ssta is distribution-preserving.

use klest::linalg::{Cholesky, Matrix, SymmetricEigen};
use klest_proptest::{check, strategies};

fn reconstruct(eig: &SymmetricEigen) -> Matrix {
    let n = eig.eigenvalues().len();
    let q = eig.eigenvectors();
    Matrix::from_fn(n, n, |i, j| {
        (0..n)
            .map(|k| q[(i, k)] * eig.eigenvalues()[k] * q[(j, k)])
            .sum()
    })
}

/// QL and Jacobi agree on the spectrum and both reconstruct the input,
/// for SPD matrices and for their indefinite diagonal shifts.
#[test]
fn ql_and_jacobi_are_differentially_equivalent() {
    let strat = strategies::spd_matrix(2..10);
    check("ql_and_jacobi_are_differentially_equivalent", &strat, |spd| {
        let n = spd.rows();
        // Also exercise an indefinite symmetric input: shift the
        // spectrum down by the mean diagonal.
        let shift = (0..n).map(|i| spd[(i, i)]).sum::<f64>() / n as f64;
        let mut indefinite = spd.clone();
        for i in 0..n {
            indefinite[(i, i)] -= shift;
        }
        for a in [spd, &indefinite] {
            let scale = a.max_abs().max(1.0);
            let ql = SymmetricEigen::new(a).map_err(|e| format!("QL failed: {e}"))?;
            let jac = SymmetricEigen::new_jacobi(a).map_err(|e| format!("Jacobi failed: {e}"))?;
            for (i, (l_ql, l_jac)) in ql
                .eigenvalues()
                .iter()
                .zip(jac.eigenvalues())
                .enumerate()
            {
                if (l_ql - l_jac).abs() > 1e-9 * scale {
                    return Err(format!(
                        "eigenvalue {i}: QL {l_ql} vs Jacobi {l_jac} (scale {scale})"
                    ));
                }
            }
            // Both factorizations reconstruct A (this also pins the
            // eigenvectors without fighting sign/degeneracy ambiguity).
            for (engine, eig) in [("QL", &ql), ("Jacobi", &jac)] {
                let err = reconstruct(eig)
                    .sub(a)
                    .map_err(|e| format!("shape: {e}"))?
                    .frobenius_norm();
                if err > 1e-8 * scale * n as f64 {
                    return Err(format!("{engine} reconstruction error {err}"));
                }
            }
        }
        Ok(())
    });
}

/// Both engines return descending spectra and unit-norm eigenvector
/// columns (the contract the truncation rule depends on).
#[test]
fn eigen_contract_descending_and_unit_norm() {
    let strat = strategies::spd_matrix(2..10);
    check("eigen_contract_descending_and_unit_norm", &strat, |spd| {
        for eig in [
            SymmetricEigen::new(spd).map_err(|e| format!("QL: {e}"))?,
            SymmetricEigen::new_jacobi(spd).map_err(|e| format!("Jacobi: {e}"))?,
        ] {
            let v = eig.eigenvalues();
            if v.windows(2).any(|w| w[0] < w[1]) {
                return Err(format!("spectrum not descending: {v:?}"));
            }
            let n = v.len();
            for k in 0..n {
                let norm: f64 = (0..n)
                    .map(|i| eig.eigenvectors()[(i, k)].powi(2))
                    .sum::<f64>()
                    .sqrt();
                if (norm - 1.0).abs() > 1e-9 {
                    return Err(format!("eigenvector {k} has norm {norm}"));
                }
            }
        }
        Ok(())
    });
}

/// Covariance equivalence of the two sampling factorizations: the
/// Cholesky factor `L` and the eigen factor `F = Q √Λ` satisfy
/// `L Lᵀ = F Fᵀ = A`, so the strict sampler and the eigen-fallback
/// sampler in klest-ssta induce the same Gaussian distribution.
#[test]
fn cholesky_and_eigen_factors_reproduce_the_same_covariance() {
    let strat = strategies::spd_matrix(2..10);
    check(
        "cholesky_and_eigen_factors_reproduce_the_same_covariance",
        &strat,
        |a| {
            let n = a.rows();
            let scale = a.max_abs().max(1.0);
            let chol = Cholesky::new(a).map_err(|e| format!("Cholesky failed: {e}"))?;
            let l = chol.lower();
            let llt = l
                .mul(&l.transpose())
                .map_err(|e| format!("shape: {e}"))?;
            let eig = SymmetricEigen::new(a).map_err(|e| format!("eig failed: {e}"))?;
            let mut f = eig.eigenvectors().clone();
            for i in 0..n {
                for k in 0..n {
                    f[(i, k)] *= eig.eigenvalues()[k].max(0.0).sqrt();
                }
            }
            let fft = f
                .mul(&f.transpose())
                .map_err(|e| format!("shape: {e}"))?;
            for m in [&llt, &fft] {
                let err = m.sub(a).map_err(|e| format!("shape: {e}"))?.frobenius_norm();
                if err > 1e-8 * scale * n as f64 {
                    return Err(format!("factor reconstruction error {err}"));
                }
            }
            Ok(())
        },
    );
}
