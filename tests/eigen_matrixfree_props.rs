//! Differential property suite for the matrix-free Lanczos engine:
//! `PartialEigen::lanczos_op` over operator-apply abstractions must
//! reproduce the dense Householder/QL ground truth — eigenvalues to
//! solver tolerance and eigenvectors up to sign — on random SPD inputs,
//! random similarity scalings, and small Galerkin systems over random
//! kernels and meshes. Every property is seeded and replayable via
//! `KLEST_PROPTEST_SEED=<property>:<seed>`.

use klest::core::{assemble_galerkin, GalerkinOperator, QuadratureRule};
use klest::linalg::{LinearOperator, Matrix, PartialEigen, ScaledOperator, SymmetricEigen};
use klest_proptest::{check, check_config, strategies, Config};

/// Leading pairs asked of the iterative engine per case: small enough
/// that random SPD spectra (slow decay) still converge quickly.
const K: usize = 4;
const MAX_ITERS: usize = 2000;

/// Checks `partial` against the dense ground truth `full`: eigenvalue
/// agreement to `tol` (relative to the spectral head) and, for every
/// well-separated pair, eigenvector collinearity up to sign.
fn agree(
    partial: &PartialEigen,
    full: &SymmetricEigen,
    n: usize,
    tol: f64,
) -> Result<(), String> {
    let head = full.eigenvalues()[0].abs().max(1e-300);
    for (j, (got, want)) in partial
        .eigenvalues()
        .iter()
        .zip(full.eigenvalues())
        .enumerate()
    {
        if (got - want).abs() > tol * head {
            return Err(format!("eigenvalue {j}: lanczos_op {got} vs QL {want}"));
        }
    }
    for j in 0..partial.len() {
        // Sign-free collinearity is only well-posed away from
        // degeneracies; skip pairs whose neighbours are within 1e-6
        // of the spectral head.
        let lam = full.eigenvalues()[j];
        let prev_gap = if j == 0 {
            f64::INFINITY
        } else {
            (full.eigenvalues()[j - 1] - lam).abs()
        };
        let next_gap = if j + 1 < n {
            (lam - full.eigenvalues()[j + 1]).abs()
        } else {
            f64::INFINITY
        };
        if prev_gap.min(next_gap) < 1e-6 * head {
            continue;
        }
        let v = partial.eigenvector(j);
        let overlap: f64 = (0..n).map(|i| v[i] * full.eigenvectors()[(i, j)]).sum();
        if (overlap.abs() - 1.0).abs() > 1e-6 {
            return Err(format!(
                "eigenvector {j}: |<v_op, v_ql>| = {} (want 1 up to sign)",
                overlap.abs()
            ));
        }
    }
    Ok(())
}

/// The matrix-free engine over the dense-adapter operator matches the
/// full QL decomposition on random SPD matrices.
#[test]
fn lanczos_op_matches_dense_ql_on_random_spd() {
    let strat = strategies::spd_matrix(2..20);
    check("lanczos_op_matches_dense_ql_on_random_spd", &strat, |a| {
        let n = a.rows();
        let k = K.min(n);
        let full = SymmetricEigen::new(a).map_err(|e| format!("QL failed: {e}"))?;
        let partial =
            PartialEigen::lanczos_op(a, k, MAX_ITERS).map_err(|e| format!("lanczos_op: {e}"))?;
        // Random SPD spectra are simple (ties have measure zero), so the
        // full k pairs must come back.
        if partial.len() != k {
            return Err(format!("asked {k} pairs, got {}", partial.len()));
        }
        agree(&partial, &full, n, 1e-8)
    });
}

/// The diagonal similarity wrapper is the matrix-free form of
/// `D A D`: solving through `ScaledOperator` matches QL on the
/// explicitly scaled dense matrix — the exact reduction the KLE's
/// generalized eigenproblem uses.
#[test]
fn scaled_operator_matches_explicit_similarity_transform() {
    let strat = strategies::spd_matrix(2..16);
    check(
        "scaled_operator_matches_explicit_similarity_transform",
        &strat,
        |a| {
            let n = a.rows();
            let k = K.min(n);
            // A deterministic positive scale derived from the diagonal —
            // the same shape as the KLE's area weights Φ^{-1/2}.
            let scale: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + a[(i, i)]).sqrt()).collect();
            let dense = Matrix::from_fn(n, n, |i, j| scale[i] * a[(i, j)] * scale[j]);
            let full = SymmetricEigen::new(&dense).map_err(|e| format!("QL failed: {e}"))?;
            let op = ScaledOperator::new(a, scale).map_err(|e| format!("wrap: {e}"))?;
            let partial = PartialEigen::lanczos_op(&op, k, MAX_ITERS)
                .map_err(|e| format!("lanczos_op: {e}"))?;
            if partial.len() != k {
                return Err(format!("asked {k} pairs, got {}", partial.len()));
            }
            agree(&partial, &full, n, 1e-8)
        },
    );
}

/// End-to-end differential: the on-the-fly `GalerkinOperator` drives
/// `lanczos_op` to the same leading spectrum the dense QL solve finds on
/// the assembled matrix, for random kernels on random small meshes.
#[test]
fn galerkin_operator_solve_matches_dense_ql_for_any_kernel() {
    // Each case meshes + assembles + runs two eigensolves; keep the
    // count small and fixed regardless of KLEST_PROPTEST_CASES.
    let name = "galerkin_operator_solve_matches_dense_ql_for_any_kernel";
    let cfg = Config {
        cases: 6,
        ..Config::from_env(name)
    };
    let kernels = strategies::any_kernel();
    check_config(name, &cfg, &kernels, |case| {
        let kernel = case.build();
        let mesh = klest::mesh::MeshBuilder::new(klest::geometry::Rect::unit_die())
            .max_area(0.08)
            .min_angle_degrees(25.0)
            .build()
            .map_err(|e| format!("mesh: {e}"))?;
        let n = mesh.len();
        let dense = assemble_galerkin(&mesh, kernel.as_ref(), QuadratureRule::Centroid);
        let full = SymmetricEigen::new(&dense).map_err(|e| format!("QL failed: {e}"))?;
        let op = GalerkinOperator::new(&mesh, kernel.as_ref(), QuadratureRule::Centroid, 1);
        let partial = PartialEigen::lanczos_op(&op, K.min(n), MAX_ITERS)
            .map_err(|e| format!("{case:?}: lanczos_op: {e}"))?;
        agree(&partial, &full, n, 1e-8).map_err(|e| format!("{case:?}: {e}"))
    });
}

/// Bitwise determinism: the operator engine is a pure function of its
/// operator — two runs over the same input produce identical bits, and
/// the dense adapter's matvec is bitwise-interchangeable with the
/// on-the-fly Galerkin operator, so both routes yield identical spectra.
#[test]
fn lanczos_op_is_bitwise_deterministic_across_operator_routes() {
    let name = "lanczos_op_is_bitwise_deterministic_across_operator_routes";
    let cfg = Config {
        cases: 4,
        ..Config::from_env(name)
    };
    let kernels = strategies::any_kernel();
    check_config(name, &cfg, &kernels, |case| {
        let kernel = case.build();
        let mesh = klest::mesh::MeshBuilder::new(klest::geometry::Rect::unit_die())
            .max_area(0.1)
            .min_angle_degrees(25.0)
            .build()
            .map_err(|e| format!("mesh: {e}"))?;
        let n = mesh.len();
        let k = K.min(n);
        let dense = assemble_galerkin(&mesh, kernel.as_ref(), QuadratureRule::Centroid);
        let op = GalerkinOperator::new(&mesh, kernel.as_ref(), QuadratureRule::Centroid, 1);
        let via_op =
            PartialEigen::lanczos_op(&op, k, MAX_ITERS).map_err(|e| format!("op: {e}"))?;
        let again =
            PartialEigen::lanczos_op(&op, k, MAX_ITERS).map_err(|e| format!("op2: {e}"))?;
        let via_dense =
            PartialEigen::lanczos_op(&dense, k, MAX_ITERS).map_err(|e| format!("dense: {e}"))?;
        for other in [&again, &via_dense] {
            if via_op.eigenvalues() != other.eigenvalues()
                || via_op.eigenvectors().as_slice() != other.eigenvectors().as_slice()
            {
                return Err(format!("{case:?}: operator routes drifted bitwise"));
            }
        }
        // Sanity: the operator really is the assembled matrix's action.
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 101) as f64 / 101.0).collect();
        let mut y_op = vec![0.0; n];
        let mut y_dense = vec![0.0; n];
        op.apply(&x, &mut y_op).map_err(|e| format!("apply: {e}"))?;
        dense
            .apply(&x, &mut y_dense)
            .map_err(|e| format!("apply: {e}"))?;
        if y_op != y_dense {
            return Err(format!("{case:?}: matvec drifted bitwise"));
        }
        Ok(())
    });
}
