//! Ground-truth validation of the paper's numerical method: the Galerkin
//! KLE of the separable L1 exponential kernel (paper eq. 5) must converge
//! to the analytic eigenvalues of Ghanem & Spanos [8] — products of 1-D
//! closed-form eigenvalues. This is the strongest end-to-end check the
//! literature offers for a 2-D KLE solver.

use klest::core::analytic::separable_2d_eigenvalues;
use klest::core::{GalerkinKle, KleOptions, QuadratureRule};
use klest::geometry::Rect;
use klest::kernels::SeparableExponentialKernel;
use klest::mesh::MeshBuilder;

fn galerkin_eigenvalues(max_area: f64, rule: QuadratureRule, c: f64) -> Vec<f64> {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(max_area)
        .min_angle_degrees(28.0)
        .build()
        .expect("meshing succeeds");
    let kernel = SeparableExponentialKernel::new(c);
    let options = KleOptions {
        quadrature: rule,
        max_eigenpairs: 30,
        ..KleOptions::default()
    };
    GalerkinKle::compute(&mesh, &kernel, options)
        .expect("KLE computes")
        .eigenvalues()[..10]
        .to_vec()
}

#[test]
fn matches_analytic_spectrum_within_discretization_error() {
    let c = 1.0;
    let exact = separable_2d_eigenvalues(c, 1.0, 10);
    let approx = galerkin_eigenvalues(0.01, QuadratureRule::Centroid, c);
    for (i, (a, e)) in approx.iter().zip(&exact).enumerate() {
        let rel = (a - e).abs() / e;
        assert!(
            rel < 0.05,
            "eigenvalue {i}: galerkin {a} vs analytic {e} ({:.2}% off)",
            100.0 * rel
        );
    }
}

#[test]
fn refinement_converges_linearly_in_h() {
    // Theorem 2: integration (and hence eigenvalue) error is linear in
    // the mesh size h. Halving the area (h / sqrt(2)) must shrink the
    // top-eigenvalue error.
    let c = 1.0;
    let exact = separable_2d_eigenvalues(c, 1.0, 1)[0];
    let err = |area: f64| {
        let l = galerkin_eigenvalues(area, QuadratureRule::Centroid, c)[0];
        (l - exact).abs()
    };
    let coarse = err(0.08);
    let medium = err(0.02);
    let fine = err(0.005);
    assert!(
        medium < coarse,
        "refinement must reduce error: {coarse} -> {medium}"
    );
    assert!(fine < medium, "further refinement: {medium} -> {fine}");
}

#[test]
fn higher_order_quadrature_is_more_accurate_on_coarse_mesh() {
    // The paper notes higher-order rules may be used; on a coarse mesh
    // they must beat the centroid rule against the analytic spectrum.
    let c = 1.0;
    let exact = separable_2d_eigenvalues(c, 1.0, 5);
    let sum_err = |rule: QuadratureRule| -> f64 {
        galerkin_eigenvalues(0.1, rule, c)
            .iter()
            .zip(&exact)
            .take(5)
            .map(|(a, e)| (a - e).abs() / e)
            .sum()
    };
    let centroid = sum_err(QuadratureRule::Centroid);
    let seven = sum_err(QuadratureRule::SevenPoint);
    assert!(
        seven < centroid,
        "7-point error {seven} must beat centroid {centroid} on a coarse mesh"
    );
}

#[test]
fn degenerate_eigenvalue_multiplicities() {
    // The separable kernel's spectrum has known degeneracy structure:
    // λ(i,j) = λᵢλⱼ, so the (1,2)/(2,1) pair is doubly degenerate.
    let approx = galerkin_eigenvalues(0.01, QuadratureRule::Centroid, 1.0);
    let rel_gap = (approx[1] - approx[2]).abs() / approx[1];
    assert!(
        rel_gap < 0.02,
        "2nd/3rd eigenvalues should be near-degenerate, gap {:.3}%",
        100.0 * rel_gap
    );
}

#[test]
fn trace_identity_holds_for_separable_kernel() {
    // Σ λ = |D| = 4 exactly in the discrete Galerkin system.
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.02)
        .build()
        .expect("meshing succeeds");
    let kle = GalerkinKle::compute(
        &mesh,
        &SeparableExponentialKernel::new(1.3),
        KleOptions::default(),
    )
    .expect("KLE computes");
    let total: f64 = kle.eigenvalues().iter().sum();
    assert!((total - 4.0).abs() < 1e-9, "trace = {total}");
}

#[test]
fn kle_on_l_shaped_die() {
    // The method is domain-agnostic: on an L-shaped die the discrete
    // trace identity Σ λ = |D| still holds with |D| the polygon area,
    // and the expansion still samples a correlated field.
    use klest::geometry::{Point2, Polygon};
    use klest::kernels::GaussianKernel;
    let poly = Polygon::new(vec![
        Point2::new(0.0, 0.0),
        Point2::new(2.0, 0.0),
        Point2::new(2.0, 1.0),
        Point2::new(1.0, 1.0),
        Point2::new(1.0, 2.0),
        Point2::new(0.0, 2.0),
    ])
    .expect("valid polygon");
    let mesh = klest::mesh::MeshBuilder::polygon(poly)
        .max_area(0.02)
        .min_angle_degrees(25.0)
        .build()
        .expect("L-shaped mesh");
    let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(2.0), KleOptions::default())
        .expect("KLE on polygon");
    let trace: f64 = kle.eigenvalues().iter().sum();
    assert!(
        (trace - mesh.total_area()).abs() < 1e-9,
        "trace {trace} vs area {}",
        mesh.total_area()
    );
    assert!((mesh.total_area() - 3.0).abs() < 0.05);
    // Sampling through the same machinery.
    use klest::core::KleSampler;
    let sampler = KleSampler::new(&kle, &mesh, 10).expect("sampler");
    let field = sampler
        .realize(&[0.5, -0.2, 0.1, 0.9, -0.4, 0.3, 0.0, -0.7, 0.2, 0.6])
        .expect("field");
    assert_eq!(field.len(), mesh.len());
    // Gates in the notch are rejected, gates in the L are located.
    assert!(sampler.triangles_of(&[Point2::new(1.5, 1.5)]).is_err());
    assert!(sampler.triangles_of(&[Point2::new(0.5, 1.5)]).is_ok());
}
