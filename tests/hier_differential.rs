//! Hierarchical-vs-flat differential lockdown for the block-model SSTA
//! (`klest::ssta::hier`). The contract under test:
//!
//! - a node whose fan-in cone never crosses a block boundary reproduces
//!   the flat canonical arrival **bitwise** — extraction replays the
//!   exact flat op sequence on a single origin-free term;
//! - at boundary maxes the composed worst form deviates from the flat
//!   pass only through the stated bounded approximations (same-origin
//!   `clark_max` folding and origin substitution): worst mean within 2%
//!   and worst σ within 5% of flat, for every partition granularity;
//! - extraction is bitwise-deterministic for any supervisor worker
//!   count: shards are merged in block order, so repeated runs (and the
//!   serial one-block path) produce bit-identical models and reports;
//! - a one-gate edit through [`HierEngine`] agrees with the
//!   parameterized flat reference `analyze_canonical_with`, while the
//!   scalar intra-block engine stays exact against `Timer::analyze`.

use klest::circuit::{generate, Circuit, GeneratorConfig, NodeId, Partition};
use klest::runtime::CancelToken;
use klest::ssta::canonical::{analyze_canonical, analyze_canonical_with, CanonicalForm};
use klest::ssta::experiments::{CircuitSetup, KleContext};
use klest::ssta::hier::{compose, extract_blocks, HierEngine};
use klest::ssta::KleFieldSampler;
use klest::sta::ParamVector;

fn setup(gates: usize, seed: u64) -> (CircuitSetup, KleContext, Circuit) {
    let circuit = generate("hier-diff", GeneratorConfig::combinational(gates, seed))
        .expect("generator accepts these sizes");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = klest::kernels::GaussianKernel::new(2.0);
    let ctx = KleContext::coarse(&kernel).expect("coarse KLE context");
    (setup, ctx, circuit)
}

fn sampler(ctx: &KleContext, setup: &CircuitSetup) -> KleFieldSampler {
    KleFieldSampler::new(&ctx.kle, &ctx.mesh, ctx.rank, setup.locations())
        .expect("sampler over circuit locations")
}

fn form_bits(f: &CanonicalForm) -> (u64, Vec<u64>, u64) {
    (
        f.mean.to_bits(),
        f.sens.iter().map(|v| v.to_bits()).collect(),
        f.indep.to_bits(),
    )
}

/// `true` for every node whose fan-in cone touches a block other than
/// its own. Node ids are topological, so one forward sweep suffices.
fn foreign_cone(circuit: &Circuit, partition: &Partition) -> Vec<bool> {
    let n = circuit.node_count();
    let mut foreign = vec![false; n];
    for i in 0..n {
        let v = NodeId(i as u32);
        let b = partition.block_of(v);
        foreign[i] = circuit
            .fanins(v)
            .iter()
            .any(|&f| partition.block_of(f) != b || foreign[f.index()]);
    }
    foreign
}

/// Zero-parameter `analyze_canonical_with` is the same analysis as
/// `analyze_canonical` — locked down bitwise so the parameterized
/// variant can serve as the flat reference for edit differentials.
#[test]
fn parameterized_flat_at_zero_is_bitwise_plain() {
    let (setup, ctx, circuit) = setup(160, 11);
    let sampler = sampler(&ctx, &setup);
    let flat = analyze_canonical(&setup.timer, &sampler).unwrap();
    let zeros = vec![ParamVector::ZERO; circuit.node_count()];
    let with = analyze_canonical_with(&setup.timer, &sampler, &zeros).unwrap();
    for i in 0..circuit.node_count() {
        let id = NodeId(i as u32);
        assert_eq!(
            form_bits(flat.arrival(id)),
            form_bits(with.arrival(id)),
            "arrival at node {i} differs"
        );
    }
    assert_eq!(form_bits(flat.worst()), form_bits(with.worst()));
}

/// Cut-free cones are exact: every composed arrival whose cone never
/// leaves its block matches the flat canonical arrival bit for bit.
#[test]
fn cut_free_cone_arrivals_are_bitwise_flat() {
    let (setup, ctx, circuit) = setup(220, 3);
    let sampler = sampler(&ctx, &setup);
    let flat = analyze_canonical(&setup.timer, &sampler).unwrap();
    let token = CancelToken::unlimited();
    let zeros = vec![ParamVector::ZERO; circuit.node_count()];
    for blocks in [2usize, 4, 6] {
        let partition = Partition::build(&circuit, blocks);
        let foreign = foreign_cone(&circuit, &partition);
        let (models, _) =
            extract_blocks(&setup.timer, &sampler, &partition, &zeros, None, &token).unwrap();
        let report = compose(&models, &setup.timer).unwrap();
        let mut checked = 0usize;
        for (i, foreign_node) in foreign.iter().enumerate().take(circuit.node_count()) {
            let id = NodeId(i as u32);
            let Some(hier) = report.arrival(id) else {
                continue; // intra-block node, eliminated by extraction
            };
            if *foreign_node {
                continue;
            }
            assert_eq!(
                form_bits(flat.arrival(id)),
                form_bits(hier),
                "cut-free node {i} diverged from flat ({blocks} blocks)"
            );
            checked += 1;
        }
        assert!(
            checked > 0,
            "no cut-free boundary node to check at {blocks} blocks — test is vacuous"
        );
    }
}

/// At boundary maxes the composed worst form stays within the stated
/// bound of the flat pass: mean within 2%, σ within 5%, at every
/// partition granularity.
#[test]
fn composed_worst_tracks_flat_within_bound() {
    let (setup, ctx, circuit) = setup(260, 17);
    let sampler = sampler(&ctx, &setup);
    let flat = analyze_canonical(&setup.timer, &sampler).unwrap();
    let token = CancelToken::unlimited();
    let zeros = vec![ParamVector::ZERO; circuit.node_count()];
    for blocks in [2usize, 3, 5, 8] {
        let partition = Partition::build(&circuit, blocks);
        let (models, stats) =
            extract_blocks(&setup.timer, &sampler, &partition, &zeros, None, &token).unwrap();
        assert_eq!(stats.extracted, partition.block_count());
        let report = compose(&models, &setup.timer).unwrap();
        let (h, f) = (report.worst(), flat.worst());
        assert!(
            (h.mean - f.mean).abs() <= 0.02 * f.mean,
            "{blocks} blocks: worst mean {} vs flat {}",
            h.mean,
            f.mean
        );
        assert!(
            (h.sigma() - f.sigma()).abs() <= 0.05 * f.sigma(),
            "{blocks} blocks: worst sigma {} vs flat {}",
            h.sigma(),
            f.sigma()
        );
    }
}

/// Extraction shards run under the supervisor, one per missing block,
/// merged in block order — so the models and the composed report must be
/// bit-identical across repeated runs regardless of thread interleaving.
#[test]
fn extraction_is_bitwise_deterministic_across_runs() {
    let (setup, ctx, circuit) = setup(200, 29);
    let sampler = sampler(&ctx, &setup);
    let token = CancelToken::unlimited();
    let zeros = vec![ParamVector::ZERO; circuit.node_count()];
    let partition = Partition::build(&circuit, 7);
    let (reference, _) =
        extract_blocks(&setup.timer, &sampler, &partition, &zeros, None, &token).unwrap();
    let ref_report = compose(&reference, &setup.timer).unwrap();
    for run in 0..3 {
        let (models, _) =
            extract_blocks(&setup.timer, &sampler, &partition, &zeros, None, &token).unwrap();
        assert_eq!(models.len(), reference.len());
        for (b, (m, r)) in models.iter().zip(reference.iter()).enumerate() {
            assert_eq!(m.dim, r.dim);
            assert_eq!(m.outputs.len(), r.outputs.len(), "block {b} arc count");
            for (ma, ra) in m.outputs.iter().zip(r.outputs.iter()) {
                assert_eq!(ma.node, ra.node);
                assert_eq!(ma.terms.len(), ra.terms.len());
                for (mt, rt) in ma.terms.iter().zip(ra.terms.iter()) {
                    assert_eq!(mt.origin, rt.origin);
                    assert_eq!(mt.mean.to_bits(), rt.mean.to_bits(), "run {run} block {b}");
                    assert_eq!(mt.indep.to_bits(), rt.indep.to_bits());
                    let (ms, rs): (Vec<u64>, Vec<u64>) = (
                        mt.sens.iter().map(|v| v.to_bits()).collect(),
                        rt.sens.iter().map(|v| v.to_bits()).collect(),
                    );
                    assert_eq!(ms, rs);
                }
            }
        }
        let report = compose(&models, &setup.timer).unwrap();
        assert_eq!(form_bits(report.worst()), form_bits(ref_report.worst()));
    }
}

/// A one-gate edit through the engine agrees with the parameterized flat
/// reference, the scalar intra-block engine stays exact, and reverting
/// the edit restores the pre-edit composed form bitwise.
#[test]
fn engine_edit_agrees_with_parameterized_flat() {
    let (setup, ctx, circuit) = setup(240, 41);
    let sampler = sampler(&ctx, &setup);
    let partition = Partition::build(&circuit, 5);
    let token = CancelToken::unlimited();
    let zeros = vec![ParamVector::ZERO; circuit.node_count()];
    let mut engine = HierEngine::new(
        &setup.timer,
        &sampler,
        &partition,
        zeros.clone(),
        None,
        &token,
    )
    .unwrap();
    let baseline = form_bits(engine.worst());

    // Edit a gate near the middle of the netlist (guaranteed non-input
    // since inputs precede gates in id order and gates > inputs here).
    let victim = NodeId((circuit.node_count() / 2) as u32);
    let p = ParamVector::new([0.35, -0.2, 0.15, 0.1]);
    engine.edit_gate(victim, p, &token).unwrap();
    assert_eq!(engine.last_stats().extracted, 1, "edit re-extracts one block");

    let mut params = zeros.clone();
    params[victim.index()] = p;
    let flat = analyze_canonical_with(&setup.timer, &sampler, &params).unwrap();
    let (h, f) = (engine.worst(), flat.worst());
    assert!(
        (h.mean - f.mean).abs() <= 0.02 * f.mean,
        "edited worst mean {} vs flat {}",
        h.mean,
        f.mean
    );
    assert!(
        (h.sigma() - f.sigma()).abs() <= 0.05 * f.sigma(),
        "edited worst sigma {} vs flat {}",
        h.sigma(),
        f.sigma()
    );
    // The scalar engine is exact, not approximate.
    let exact = setup.timer.analyze(&params);
    assert_eq!(engine.scalar_worst().to_bits(), exact.worst_delay().to_bits());

    // Reverting the edit restores the composed picture bitwise.
    engine.edit_gate(victim, ParamVector::ZERO, &token).unwrap();
    assert_eq!(form_bits(engine.worst()), baseline);
}
