//! Mercer/PSD properties for every shipped kernel family, driven by the
//! klest-proptest framework: on *arbitrary* random point sets, a valid
//! covariance kernel must produce a symmetric Gram matrix with unit
//! diagonal, Cauchy-Schwarz-bounded entries and a non-negative spectrum.
//! The suite also demonstrates (as an acceptance regression) that a
//! deliberately broken non-PSD kernel is caught with a replayable seed.

use klest::geometry::{Point2, Rect};
use klest::kernels::validity::check_positive_semidefinite;
use klest::kernels::{CovarianceKernel, LinearConeKernel};
use klest::linalg::{Matrix, SymmetricEigen};
use klest_proptest::{check, check_result, strategies, Config};

fn gram<K: CovarianceKernel + ?Sized>(kernel: &K, points: &[Point2]) -> Matrix {
    Matrix::from_fn(points.len(), points.len(), |i, j| {
        kernel.eval(points[i], points[j])
    })
}

/// Gram matrices of every valid kernel family are symmetric with unit
/// diagonal and Cauchy-Schwarz-bounded off-diagonals.
#[test]
fn gram_is_symmetric_unit_diagonal_bounded() {
    let strat = (
        strategies::any_kernel(),
        strategies::points_in(Rect::unit_die(), 2..12),
    );
    check("gram_is_symmetric_unit_diagonal_bounded", &strat, |(case, points)| {
        let kernel = case.build();
        let g = gram(kernel.as_ref(), points);
        for i in 0..points.len() {
            if (g[(i, i)] - 1.0).abs() > 1e-9 {
                return Err(format!("{case:?}: K(p,p) = {} at {i}", g[(i, i)]));
            }
            for j in 0..points.len() {
                if (g[(i, j)] - g[(j, i)]).abs() > 1e-12 {
                    return Err(format!("{case:?}: asymmetric at ({i},{j})"));
                }
                if g[(i, j)].abs() > 1.0 + 1e-9 {
                    return Err(format!(
                        "{case:?}: |K| = {} > 1 violates Cauchy-Schwarz",
                        g[(i, j)]
                    ));
                }
            }
        }
        Ok(())
    });
}

/// Mercer positivity: the Gram spectrum of every valid kernel family is
/// non-negative (up to eigensolver roundoff) on arbitrary point sets.
#[test]
fn gram_spectrum_is_psd_for_valid_kernels() {
    let strat = (
        strategies::any_kernel(),
        strategies::points_in(Rect::unit_die(), 2..12),
    );
    check("gram_spectrum_is_psd_for_valid_kernels", &strat, |(case, points)| {
        let kernel = case.build();
        let g = gram(kernel.as_ref(), points);
        let eig = SymmetricEigen::new(&g).map_err(|e| format!("{case:?}: eig failed: {e}"))?;
        let min = eig.eigenvalues().last().copied().unwrap_or(0.0);
        let tol = 1e-10 * (points.len() * points.len()) as f64;
        if min < -tol {
            return Err(format!(
                "{case:?}: Gram on {} points has eigenvalue {min}",
                points.len()
            ));
        }
        Ok(())
    });
}

/// For kernels that expose an isotropic correlation profile, it is a
/// valid correlation: rho(0) = 1 and |rho(d)| <= 1 everywhere.
#[test]
fn correlation_at_distance_is_a_valid_correlation() {
    let strat = (strategies::any_kernel(), strategies::f64_in(0.0..3.0));
    check(
        "correlation_at_distance_is_a_valid_correlation",
        &strat,
        |(case, d)| {
            let kernel = case.build();
            // None means the kernel is not isotropic — nothing to check.
            let Some(at_zero) = kernel.correlation_at_distance(0.0) else {
                return Ok(());
            };
            if (at_zero - 1.0).abs() > 1e-9 {
                return Err(format!("{case:?}: rho(0) = {at_zero}"));
            }
            let Some(rho) = kernel.correlation_at_distance(*d) else {
                return Err(format!("{case:?}: rho(0) defined but rho({d}) is not"));
            };
            if !(-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho) {
                return Err(format!("{case:?}: rho({d}) = {rho} out of [-1, 1]"));
            }
            Ok(())
        },
    );
}

/// Acceptance regression: the deliberately broken kernel — the linear
/// cone variogram, PSD in 1-D but *not* in 2-D — is caught by the PSD
/// property with a replayable seed, and replay reproduces the exact
/// counterexample.
#[test]
fn non_psd_kernel_is_caught_by_property_suite() {
    // The cone's 2-D indefiniteness is a large-point-set phenomenon: on
    // small random sets its Gram stays (barely) PSD, so generate sets in
    // the 40-80 point regime where negative eigenvalues appear.
    let cone = LinearConeKernel::new(0.8);
    let points = strategies::points_in(Rect::unit_die(), 40..80);
    let cfg = Config::new(0xC0FFEE).with_cases(64);
    let psd_property = |pts: &Vec<Point2>| {
        let g = gram(&cone, pts);
        let eig = SymmetricEigen::new(&g).map_err(|e| format!("eig failed: {e}"))?;
        let min = eig.eigenvalues().last().copied().unwrap_or(0.0);
        let tol = 1e-10 * (pts.len() * pts.len()) as f64;
        if min < -tol {
            return Err(format!("Gram has negative eigenvalue {min}"));
        }
        Ok(())
    };
    let failure = check_result("cone_kernel_psd", &cfg, &points, psd_property)
        .expect_err("the 2-D-invalid cone kernel must fail the PSD property");
    assert!(
        failure.message.contains("negative eigenvalue"),
        "unexpected failure: {failure}"
    );
    assert!(failure.to_string().contains("KLEST_PROPTEST_SEED"));
    // Shrinking kept the counterexample a valid input (still >= the
    // strategy's minimum point count).
    let mut replay = cfg.clone();
    replay.replay = Some(failure.case_seed);
    let replayed = check_result("cone_kernel_psd", &replay, &points, psd_property)
        .expect_err("replaying the printed seed must reproduce the failure");
    assert_eq!(replayed.original, failure.original);

    // The in-tree validity checker agrees with the property suite.
    let report = check_positive_semidefinite(&cone, Rect::unit_die(), 60, 12, 3)
        .expect("validity check runs");
    assert!(
        !report.is_psd(),
        "validity checker missed the cone kernel (min eig {})",
        report.min_eigenvalue
    );
}
