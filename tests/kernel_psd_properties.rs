//! Property tests for kernel validity and nearest-PSD repair: every
//! shipped kernel family must pass the empirical PSD spot-check on random
//! point sets, and a deliberately indefinite composite must be detected
//! and repaired with a bounded Frobenius perturbation.

use klest::geometry::{Point2, Rect};
use klest::kernels::validity::{check_positive_semidefinite, repair_to_psd};
use klest::kernels::{
    BlendKernel, CovarianceKernel, ExponentialKernel, GaussianKernel, LinearConeKernel,
    MaternKernel, RadialExponentialKernel, SeparableExponentialKernel,
};
use klest::linalg::{Matrix, SymmetricEigen};
use klest_rng::{Rng, SeedableRng, StdRng};

/// Every shipped kernel family passes the PSD spot-check across several
/// randomized parameterizations and seeds.
#[test]
fn all_shipped_families_pass_psd_spot_check() {
    let mut rng = StdRng::seed_from_u64(0x70736463);
    for round in 0..6 {
        let c = rng.gen_range(0.3f64..6.0);
        let s = rng.gen_range(1.2f64..4.0);
        let seed = rng.gen_range(0u64..1_000_000);
        let kernels: Vec<(&str, Box<dyn CovarianceKernel>)> = vec![
            ("gaussian", Box::new(GaussianKernel::new(c))),
            ("exponential", Box::new(ExponentialKernel::new(c))),
            ("separable", Box::new(SeparableExponentialKernel::new(c))),
            ("radial", Box::new(RadialExponentialKernel::new(c))),
            ("matern", Box::new(MaternKernel::new(c, s).expect("valid"))),
        ];
        for (name, k) in kernels {
            let report =
                check_positive_semidefinite(k.as_ref(), Rect::unit_die(), 20, 4, seed)
                    .expect("check runs");
            assert!(
                report.is_psd(),
                "round {round}: {name}(c={c:.3}, s={s:.3}) min eig {}",
                report.min_eigenvalue
            );
        }
    }
}

/// A composite leaning on the 2-D-invalid linear cone is detected as
/// indefinite, and the eigenvalue-clamping repair produces a PSD matrix
/// whose Frobenius distance to the original is bounded by the negative
/// spectral mass (≤ √n·|λ_min|).
#[test]
fn indefinite_composite_detected_and_repaired() {
    let gaussian = GaussianKernel::new(1.0);
    let cone = LinearConeKernel::new(0.8);
    // Mostly cone: inherits its indefiniteness on spread-out point sets.
    let composite = BlendKernel::new(gaussian, cone, 0.05).expect("valid weight");

    let report = check_positive_semidefinite(&composite, Rect::unit_die(), 60, 12, 3)
        .expect("check runs");
    assert!(
        !report.is_psd(),
        "cone-heavy blend unexpectedly PSD (min eig {})",
        report.min_eigenvalue
    );

    let mut rng = StdRng::seed_from_u64(0x72657061);
    let mut repaired_at_least_once = false;
    for _ in 0..12 {
        let n = rng.gen_range(50usize..90);
        let pts: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(-1.0f64..1.0), rng.gen_range(-1.0f64..1.0)))
            .collect();
        let gram = Matrix::from_fn(n, n, |i, j| composite.eval(pts[i], pts[j]));
        match repair_to_psd(&gram, 1e-10).expect("repair runs") {
            None => {} // this draw happened to be PSD — allowed
            Some(repair) => {
                repaired_at_least_once = true;
                assert!(repair.clamped >= 1);
                assert!(repair.min_eigenvalue_before < 0.0);
                // Bounded perturbation: clamping at most n eigenvalues,
                // none more negative than λ_min.
                let bound = (n as f64).sqrt() * repair.min_eigenvalue_before.abs();
                assert!(
                    repair.frobenius_delta <= bound + 1e-12,
                    "delta {} exceeds bound {bound}",
                    repair.frobenius_delta
                );
                // The repaired matrix really is PSD.
                let eig = SymmetricEigen::new(&repair.matrix).expect("eigen");
                assert!(
                    *eig.eigenvalues().last().unwrap() >= -1e-9,
                    "repair left negative eigenvalue"
                );
                // Diagonal stays close to the original unit variances.
                for i in 0..n {
                    assert!((repair.matrix[(i, i)] - gram[(i, i)]).abs() < 0.5);
                }
            }
        }
    }
    assert!(
        repaired_at_least_once,
        "no draw triggered the repair — indefiniteness not exercised"
    );
}

/// On healthy kernels the repair must be a strict no-op: `repair_to_psd`
/// returns `None`, leaving the Gram matrix untouched.
#[test]
fn repair_is_noop_on_healthy_families() {
    let mut rng = StdRng::seed_from_u64(0x6e6f6f70);
    let gaussian = GaussianKernel::new(2.0);
    let matern = MaternKernel::new(2.0, 2.0).expect("valid");
    for _ in 0..6 {
        let n = rng.gen_range(10usize..30);
        let pts: Vec<Point2> = (0..n)
            .map(|_| Point2::new(rng.gen_range(-1.0f64..1.0), rng.gen_range(-1.0f64..1.0)))
            .collect();
        for k in [&gaussian as &dyn CovarianceKernel, &matern] {
            let gram = Matrix::from_fn(n, n, |i, j| k.eval(pts[i], pts[j]));
            // Tolerance mirrors the validity report's size scaling.
            let tol = 1e-10 * (n * n) as f64;
            assert!(
                repair_to_psd(&gram, tol).expect("repair runs").is_none(),
                "healthy {} Gram was repaired",
                k.name()
            );
        }
    }
}
