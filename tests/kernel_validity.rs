//! The two validity oracles must agree: the empirical Gram-matrix check
//! (finite subsets, paper eq. 2) and the spectral-density check
//! (Bochner / [1]) classify the same kernels as valid and invalid.

use klest::geometry::Rect;
use klest::kernels::spectral::check_spectral_validity;
use klest::kernels::validity::check_positive_semidefinite;
use klest::kernels::{
    BlendKernel, CovarianceKernel, ExponentialKernel, GaussianKernel, LinearConeKernel,
    MaternKernel,
};

fn both_verdicts<K: CovarianceKernel>(kernel: &K) -> (bool, bool) {
    let empirical =
        check_positive_semidefinite(kernel, Rect::unit_die(), 48, 10, 2024).expect("check runs");
    let spectral = check_spectral_validity(kernel, 25.0, 80).expect("isotropic");
    (empirical.is_psd(), spectral.is_valid())
}

#[test]
fn oracles_agree_on_valid_kernels() {
    let gaussian = GaussianKernel::with_correlation_distance(1.0);
    let exponential = ExponentialKernel::new(1.5);
    let matern = MaternKernel::new(3.0, 2.0).expect("valid params");
    let blend = BlendKernel::new(gaussian, exponential, 0.5).expect("valid weight");
    for (name, (emp, spec)) in [
        ("gaussian", both_verdicts(&gaussian)),
        ("exponential", both_verdicts(&exponential)),
        ("matern", both_verdicts(&matern)),
        ("blend", both_verdicts(&blend)),
    ] {
        assert!(emp, "{name}: empirical check failed");
        assert!(spec, "{name}: spectral check failed");
    }
}

#[test]
fn oracles_agree_on_the_invalid_cone() {
    let cone = LinearConeKernel::new(0.8);
    let (emp, spec) = both_verdicts(&cone);
    assert!(!emp, "empirical check should reject the 2-D cone");
    assert!(!spec, "spectral check should reject the 2-D cone");
}

#[test]
fn invalid_kernel_fails_the_pipeline_loudly() {
    // The failure mode the paper's kernel-fitting avoids: feeding the
    // cone to Algorithm 1 hits a non-PD covariance during Cholesky.
    use klest::geometry::Point2;
    use klest::ssta::CholeskySampler;
    let cone = LinearConeKernel::new(0.8);
    // Enough well-spread points to expose the indefiniteness.
    let mut locs = Vec::new();
    for i in 0..12 {
        for j in 0..12 {
            locs.push(Point2::new(
                -0.95 + 1.9 * i as f64 / 11.0,
                -0.95 + 1.9 * j as f64 / 11.0,
            ));
        }
    }
    let result = CholeskySampler::new(&cone, &locs);
    assert!(
        result.is_err(),
        "cone covariance should not be Cholesky-factorable on a 12x12 lattice"
    );
}
