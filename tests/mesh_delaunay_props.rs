//! Geometric invariants of the meshing layer under random input: the
//! Bowyer-Watson triangulation's empty-circumcircle property, Ruppert
//! refinement's min-angle guarantee, exact area accounting, and
//! locator/linear-scan agreement — all seeded and replayable through
//! klest-proptest.

use klest::geometry::{in_circle, Point2, Rect, Triangle};
use klest::mesh::delaunay::DelaunayTriangulation;
use klest::mesh::MeshBuilder;
use klest_proptest::{check, check_config, strategies, Config};

/// Drop points closer than `eps` to an already-kept point (the
/// triangulation rejects near-duplicates; the property should not
/// depend on which copy survived).
fn dedupe(points: &[Point2], eps: f64) -> Vec<Point2> {
    let mut kept: Vec<Point2> = Vec::new();
    for &p in points {
        if kept.iter().all(|q| q.distance(p) > eps) {
            kept.push(p);
        }
    }
    kept
}

/// Empty-circumcircle property: no inserted vertex lies strictly inside
/// the circumcircle of any final Delaunay triangle.
#[test]
fn delaunay_triangles_have_empty_circumcircles() {
    let strat = strategies::points_in(Rect::unit_die(), 4..24);
    check(
        "delaunay_triangles_have_empty_circumcircles",
        &strat,
        |raw| {
            let points = dedupe(raw, 1e-4);
            if points.len() < 3 {
                return Ok(()); // nothing to triangulate
            }
            let corners = Rect::unit_die().corners();
            let mut dt = DelaunayTriangulation::new(corners[0], corners[2]);
            for &p in &points {
                dt.insert(p);
            }
            let (verts, tris) = dt.finish();
            for (t, tri) in tris.iter().enumerate() {
                let [a, b, c] = *tri;
                for (q, &p) in verts.iter().enumerate() {
                    if q == a || q == b || q == c {
                        continue;
                    }
                    // in_circle > 0 means strictly inside for CCW abc;
                    // allow predicate-roundoff slack.
                    let det = in_circle(verts[a], verts[b], verts[c], p);
                    if det > 1e-9 {
                        return Err(format!(
                            "vertex {q} inside circumcircle of triangle {t} (det {det:.3e}, {} points)",
                            verts.len()
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Every final Delaunay triangle is CCW and non-degenerate.
#[test]
fn delaunay_triangles_are_ccw_and_nondegenerate() {
    let strat = strategies::points_in(Rect::unit_die(), 4..24);
    check(
        "delaunay_triangles_are_ccw_and_nondegenerate",
        &strat,
        |raw| {
            let points = dedupe(raw, 1e-4);
            if points.len() < 3 {
                return Ok(());
            }
            let corners = Rect::unit_die().corners();
            let mut dt = DelaunayTriangulation::new(corners[0], corners[2]);
            for &p in &points {
                dt.insert(p);
            }
            let (verts, tris) = dt.finish();
            for tri in &tris {
                let t = Triangle::new(verts[tri[0]], verts[tri[1]], verts[tri[2]]);
                if t.signed_area() <= 0.0 {
                    return Err(format!("non-CCW/degenerate triangle {tri:?}"));
                }
            }
            Ok(())
        },
    );
}

/// Ruppert refinement honours the requested min-angle and area budget,
/// and the triangle areas sum exactly to the die area.
#[test]
fn refinement_honours_quality_constraints() {
    let name = "refinement_honours_quality_constraints";
    let cfg = Config {
        cases: 12,
        ..Config::from_env(name)
    };
    let strat = (
        strategies::f64_in(0.01..0.1),
        strategies::f64_in(20.0..30.0),
    );
    check_config(name, &cfg, &strat, |&(area_fraction, min_angle)| {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area_fraction(area_fraction)
            .min_angle_degrees(min_angle)
            .build()
            .map_err(|e| format!("meshing failed: {e}"))?;
        let q = mesh.quality();
        if q.min_angle_deg < min_angle - 1e-9 {
            return Err(format!(
                "min angle {:.3} below requested {min_angle:.3}",
                q.min_angle_deg
            ));
        }
        let budget = area_fraction * Rect::unit_die().area();
        if q.max_area > budget * (1.0 + 1e-9) {
            return Err(format!("max area {} over budget {budget}", q.max_area));
        }
        let total: f64 = mesh.areas().iter().sum();
        if (total - Rect::unit_die().area()).abs() > 1e-9 {
            return Err(format!("areas sum to {total}, die is {}", Rect::unit_die().area()));
        }
        Ok(())
    });
}

/// The grid-bucket locator agrees with the exhaustive linear scan on
/// random query points (inside and outside the die).
#[test]
fn locator_agrees_with_linear_scan() {
    let name = "locator_agrees_with_linear_scan";
    let cfg = Config {
        cases: 8,
        ..Config::from_env(name)
    };
    let queries = Rect::new(Point2::new(-1.5, -1.5), Point2::new(1.5, 1.5));
    let strat = (
        strategies::unit_die_mesh(0.02..0.2, 25.0),
        strategies::points_in(queries, 1..30),
    );
    check_config(name, &cfg, &strat, |(gen_mesh, points)| {
        let mesh = &gen_mesh.mesh;
        let locator = mesh.locator();
        for &p in points {
            let fast = locator.locate(p);
            let slow = mesh.locate_linear(p);
            match (fast, slow) {
                (None, None) => {}
                (Some(i), Some(j)) => {
                    // Boundary points may legitimately land in either
                    // adjacent triangle; both must *contain* p.
                    if i != j && !(mesh.triangle(i).contains(p) && mesh.triangle(j).contains(p)) {
                        return Err(format!("locator {i} vs linear {j} disagree at {p:?}"));
                    }
                }
                (got, want) => {
                    return Err(format!("locator {got:?} vs linear {want:?} at {p:?}"));
                }
            }
        }
        Ok(())
    });
}
