//! Cross-crate integration: netlist serialisation is timing-transparent.
//! A circuit written to the bench dialect and parsed back must produce
//! bit-identical STA results (same placement, library, parameters).

use klest::circuit::{generate, parse_netlist, write_netlist, GeneratorConfig, Placement, WireModel};
use klest::prelude::*;

#[test]
fn netlist_roundtrip_preserves_timing_exactly() {
    let original = generate("rt", GeneratorConfig::combinational(400, 13)).expect("gen");
    let text = write_netlist(&original);
    let parsed = parse_netlist("rt", &text).expect("parse");

    let timer_a = {
        let p = Placement::recursive_bisection(&original);
        Timer::new(&original, &p, WireModel::default(), GateLibrary::default_90nm())
    };
    let timer_b = {
        let p = Placement::recursive_bisection(&parsed);
        Timer::new(&parsed, &p, WireModel::default(), GateLibrary::default_90nm())
    };
    let params = vec![ParamVector::new([0.4, -0.2, 0.7, 0.1]); original.node_count()];
    let ra = timer_a.analyze(&params);
    let rb = timer_b.analyze(&params);
    assert_eq!(ra.worst_delay(), rb.worst_delay());
    assert_eq!(ra.arrivals(), rb.arrivals());
    assert_eq!(ra.slews(), rb.slews());
}

#[test]
fn netlist_file_roundtrip() {
    // Through an actual file, exercising the full save/load story.
    let circuit = generate("file", GeneratorConfig::combinational(120, 5)).expect("gen");
    let dir = std::env::temp_dir().join("klest_netlist_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("file.bench");
    std::fs::write(&path, write_netlist(&circuit)).expect("write");
    let text = std::fs::read_to_string(&path).expect("read");
    let back = parse_netlist("file", &text).expect("parse");
    assert_eq!(back.gate_count(), circuit.gate_count());
    assert_eq!(back.outputs(), circuit.outputs());
    std::fs::remove_file(&path).ok();
}

#[test]
fn prelude_supports_the_whole_flow() {
    // Compile-time check that the prelude is sufficient for the
    // quickstart flow, plus a tiny end-to-end run.
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.1)
        .build()
        .expect("mesh");
    let kernel = GaussianKernel::new(2.0);
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).expect("kle");
    let r = kle.select_rank(&TruncationCriterion::default());
    let circuit = generate("p", GeneratorConfig::combinational(50, 1)).expect("gen");
    let setup = CircuitSetup::prepare(&circuit);
    let sampler = KleFieldSampler::new(&kle, &mesh, r, setup.locations()).expect("sampler");
    let run = run_monte_carlo(&setup.timer, &sampler, &McConfig::new(50, 2)).expect("mc");
    assert_eq!(run.worst_delays().len(), 50);
}
