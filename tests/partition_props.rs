//! Property suite for the die-region partition layer behind
//! hierarchical SSTA: over randomized circuits and block counts, the
//! partition must (1) assign every node to exactly one block, (2) tile
//! the die with the block rectangles while containing every node's
//! placement location, (3) report boundary (cut) sets that agree from
//! both sides of every cross-block arc, and (4) be a pure function of
//! its inputs — bit-identical across repeated builds. Every property is
//! seeded and replayable via `KLEST_PROPTEST_SEED=<property>:<seed>`.

use klest::circuit::{generate, GeneratorConfig, Partition, Placement};
use klest_proptest::{check, strategies::usize_in};

type Case = (usize, usize, usize);

fn case_strategy() -> (
    klest_proptest::strategies::UsizeIn,
    klest_proptest::strategies::UsizeIn,
    klest_proptest::strategies::UsizeIn,
) {
    // (gates, generator seed, requested blocks). Block counts above the
    // node count exercise the clamp.
    (usize_in(2..240), usize_in(0..10_000), usize_in(1..16))
}

fn build(case: &Case) -> (klest::circuit::Circuit, Partition) {
    let &(gates, seed, blocks) = case;
    let circuit = generate("props", GeneratorConfig::combinational(gates, seed as u64))
        .expect("generator accepts these sizes");
    let partition = Partition::build(&circuit, blocks);
    (circuit, partition)
}

#[test]
fn every_node_lives_in_exactly_one_block() {
    check(
        "every_node_lives_in_exactly_one_block",
        &case_strategy(),
        |case| {
            let (circuit, partition) = build(case);
            let n = circuit.node_count();
            let mut owner = vec![usize::MAX; n];
            for b in 0..partition.block_count() {
                for &id in partition.nodes(b) {
                    if owner[id.index()] != usize::MAX {
                        return Err(format!(
                            "node {} listed by blocks {} and {b}",
                            id.index(),
                            owner[id.index()]
                        ));
                    }
                    owner[id.index()] = b;
                    if partition.block_of(id) != b {
                        return Err(format!(
                            "node {} listed by block {b} but block_of says {}",
                            id.index(),
                            partition.block_of(id)
                        ));
                    }
                }
            }
            match owner.iter().position(|&o| o == usize::MAX) {
                Some(orphan) => Err(format!("node {orphan} not in any block")),
                None => Ok(()),
            }
        },
    );
}

#[test]
fn block_rects_tile_the_die_and_contain_their_nodes() {
    check(
        "block_rects_tile_the_die_and_contain_their_nodes",
        &case_strategy(),
        |case| {
            let (circuit, partition) = build(case);
            let die = partition.die().bbox();
            let die_area = die.width() * die.height();
            let total: f64 = (0..partition.block_count())
                .map(|b| {
                    let r = partition.rect(b).bbox();
                    r.width() * r.height()
                })
                .sum();
            if (total - die_area).abs() > 1e-9 * die_area {
                return Err(format!("rect areas sum to {total}, die is {die_area}"));
            }
            // The partition tree is a prefix of the placement tree, so
            // every placed node must land inside its block's rectangle.
            let placement = Placement::recursive_bisection(&circuit);
            for b in 0..partition.block_count() {
                let rect = partition.rect(b).bbox();
                for &id in partition.nodes(b) {
                    let p = placement.locations()[id.index()];
                    let inside = p.x >= rect.min.x - 1e-12
                        && p.x <= rect.max.x + 1e-12
                        && p.y >= rect.min.y - 1e-12
                        && p.y <= rect.max.y + 1e-12;
                    if !inside {
                        return Err(format!(
                            "node {} placed at ({}, {}) outside block {b} rect",
                            id.index(),
                            p.x,
                            p.y
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn cut_sets_agree_from_both_sides() {
    check(
        "cut_sets_agree_from_both_sides",
        &case_strategy(),
        |case| {
            let (circuit, partition) = build(case);
            for b in 0..partition.block_count() {
                // Every cut input must be an external node actually
                // feeding this block, and must be a cut output of its
                // own block.
                for &f in partition.cut_inputs(b) {
                    let fb = partition.block_of(f);
                    if fb == b {
                        return Err(format!(
                            "block {b} lists its own node {} as a cut input",
                            f.index()
                        ));
                    }
                    let feeds = partition
                        .nodes(b)
                        .iter()
                        .any(|&v| circuit.fanins(v).contains(&f));
                    if !feeds {
                        return Err(format!(
                            "cut input {} of block {b} feeds nothing there",
                            f.index()
                        ));
                    }
                    if !partition.cut_outputs(fb).contains(&f) {
                        return Err(format!(
                            "node {} is a cut input of block {b} but not a cut \
                             output of its block {fb}",
                            f.index()
                        ));
                    }
                }
                // Every cut output must have a foreign fanout that lists
                // it as a cut input.
                for &o in partition.cut_outputs(b) {
                    if partition.block_of(o) != b {
                        return Err(format!(
                            "cut output {} not owned by block {b}",
                            o.index()
                        ));
                    }
                    let consumer = circuit
                        .fanouts(o)
                        .iter()
                        .find(|&&v| partition.block_of(v) != b);
                    let Some(&consumer) = consumer else {
                        return Err(format!(
                            "cut output {} of block {b} has no foreign fanout",
                            o.index()
                        ));
                    };
                    if !partition
                        .cut_inputs(partition.block_of(consumer))
                        .contains(&o)
                    {
                        return Err(format!(
                            "cut output {} missing from consumer block's cut inputs",
                            o.index()
                        ));
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn partition_is_deterministic_across_builds() {
    check(
        "partition_is_deterministic_across_builds",
        &case_strategy(),
        |case| {
            let (circuit, first) = build(case);
            let second = Partition::build(&circuit, case.2);
            if first.block_count() != second.block_count() {
                return Err("block counts differ across builds".into());
            }
            for b in 0..first.block_count() {
                if first.nodes(b) != second.nodes(b)
                    || first.cut_inputs(b) != second.cut_inputs(b)
                    || first.cut_outputs(b) != second.cut_outputs(b)
                {
                    return Err(format!("block {b} membership differs across builds"));
                }
                if first.content_hash(b) != second.content_hash(b) {
                    return Err(format!("block {b} content hash differs across builds"));
                }
                let (ra, rb) = (first.rect(b).bbox(), second.rect(b).bbox());
                let bits = |v: f64| v.to_bits();
                if bits(ra.min.x) != bits(rb.min.x)
                    || bits(ra.min.y) != bits(rb.min.y)
                    || bits(ra.max.x) != bits(rb.max.x)
                    || bits(ra.max.y) != bits(rb.max.y)
                {
                    return Err(format!("block {b} rect differs bitwise across builds"));
                }
            }
            Ok(())
        },
    );
}
