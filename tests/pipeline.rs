//! End-to-end integration: the full paper pipeline on real workloads,
//! with assertions mirroring the paper's headline numbers (scaled to CI
//! budgets).

use klest::circuit::{benchmark_scaled, BenchmarkId};
use klest::core::{GalerkinKle, KleOptions, TruncationCriterion};
use klest::geometry::{Point2, Rect};
use klest::kernels::{CovarianceKernel, GaussianKernel};
use klest::mesh::MeshBuilder;
use klest::ssta::experiments::{compare_methods, CircuitSetup, KleContext};
use klest::ssta::McConfig;

/// The paper's mesh configuration selects r = 25 with the λ-tail
/// criterion — the number the whole evaluation is built around.
#[test]
fn paper_configuration_selects_rank_25() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(0.001)
        .min_angle_degrees(28.0)
        .build()
        .expect("paper mesh builds");
    assert!(
        (1300..=1800).contains(&mesh.len()),
        "paper-regime mesh size, got {}",
        mesh.len()
    );
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).expect("KLE");
    let r = kle.select_rank(&TruncationCriterion::default());
    assert_eq!(r, 25, "the paper's criterion selects r = 25");
    assert!(kle.variance_captured(r) > 0.98);
}

/// Fig. 3(b)'s claim at our scale: kernel reconstruction from 25
/// eigenpairs has small maximum error on the x = 0 slice.
#[test]
fn kernel_reconstruction_error_is_small() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area_fraction(0.001)
        .min_angle_degrees(28.0)
        .build()
        .expect("mesh");
    let kle = GalerkinKle::compute(&mesh, &kernel, KleOptions::default()).expect("KLE");
    let locator = mesh.locator();
    let i0 = locator.locate(Point2::ORIGIN).expect("center");
    let mut max_err: f64 = 0.0;
    for t in 0..mesh.len() {
        let approx = kle.reconstruct_kernel_between_triangles(i0, t, 25);
        let exact = kernel.eval(mesh.centroids()[i0], mesh.centroids()[t]);
        max_err = max_err.max((approx - exact).abs());
    }
    assert!(
        max_err < 0.02,
        "x = 0 reconstruction error {max_err} (paper: 0.016)"
    );
}

/// A scaled Table 1 row: the KLE STA agrees with the reference Monte
/// Carlo within the paper's error regime, on a real benchmark circuit.
#[test]
fn table1_row_c1908_scaled() {
    let circuit = benchmark_scaled(BenchmarkId::C1908, 0.5).expect("benchmark");
    assert_eq!(circuit.gate_count(), 440);
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("KLE context");
    let config = McConfig::new(1500, 2008).with_threads(2);
    let cmp = compare_methods(&setup, &kernel, &ctx, &config).expect("comparison");
    assert!(cmp.e_mu_pct < 0.5, "e_mu = {:.3}% (paper: <= 0.109%)", cmp.e_mu_pct);
    assert!(
        cmp.e_sigma_pct < 15.0,
        "e_sigma = {:.3}% (paper <= 5.7% at 100K samples; we run 1.5K)",
        cmp.e_sigma_pct
    );
    assert!(cmp.mc.mean > 0.0);
    assert!(cmp.kle.std_dev > 0.0);
}

/// The dimensionality-reduction claim end to end: Algorithm 2 uses r
/// RVs per parameter where Algorithm 1 uses N_g, and the speedup grows
/// with circuit size.
#[test]
fn speedup_grows_with_circuit_size() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("KLE context");
    let config = McConfig::new(400, 5).with_threads(2);
    let mut speedups = Vec::new();
    for (id, scale) in [
        (BenchmarkId::C880, 0.5),
        (BenchmarkId::C3540, 0.5),
        (BenchmarkId::S9234, 0.5),
    ] {
        let circuit = benchmark_scaled(id, scale).expect("benchmark");
        let setup = CircuitSetup::prepare(&circuit);
        let cmp = compare_methods(&setup, &kernel, &ctx, &config).expect("comparison");
        speedups.push((cmp.gates, cmp.speedup));
    }
    assert!(
        speedups[2].1 > speedups[0].1,
        "speedup must grow with N_g: {speedups:?}"
    );
}

/// Primary-output σ error (the Fig. 6 metric) decreases as the KLE rank
/// grows — the monotone trend of Fig. 6(a).
#[test]
fn fig6a_error_decreases_with_rank() {
    use klest::ssta::{run_monte_carlo, CholeskySampler, KleFieldSampler};
    let circuit = benchmark_scaled(BenchmarkId::C1908, 0.3).expect("benchmark");
    let setup = CircuitSetup::prepare(&circuit);
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("KLE context");
    let config = McConfig::new(3000, 77).with_threads(2);
    let reference = {
        let s = CholeskySampler::new(&kernel, setup.locations()).expect("cholesky");
        run_monte_carlo(&setup.timer, &s, &config).expect("mc")
    };
    let err_at = |r: usize| {
        let s = KleFieldSampler::new(&ctx.kle, &ctx.mesh, r, setup.locations()).expect("kle");
        let run = run_monte_carlo(&setup.timer, &s, &config).expect("mc");
        run.output_stats().avg_sigma_error_pct(reference.output_stats())
    };
    let e1 = err_at(1);
    let e25 = err_at(25);
    assert!(
        e25 < e1,
        "rank 25 error {e25}% must beat rank 1 error {e1}%"
    );
    assert!(e25 < 10.0, "rank-25 sigma error {e25}% too large");
}
