//! Full-pipeline differential property: the KLE-sampled (Algorithm 2)
//! and dense-Cholesky-sampled (Algorithm 1) worst-delay distributions
//! must agree — in moments and in a Kolmogorov-Smirnov-style sup-CDF
//! bound — on random circuits and kernel decay rates. This is the
//! paper's Table 1 claim turned into a seeded, replayable property.

use klest::circuit::{generate, GeneratorConfig};
use klest::kernels::GaussianKernel;
use klest::ssta::experiments::{run_kle, run_reference, CircuitSetup, KleContext};
use klest::ssta::{McConfig, SummaryStats};
use klest_proptest::{check_config, strategies, Config};

/// Empirical two-sample KS statistic: sup |F1 - F2| over the pooled
/// sample points.
fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup: f64 = 0.0;
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        sup = sup.max((fa - fb).abs());
    }
    sup
}

/// Algorithm 1 vs Algorithm 2 on a random combinational circuit and a
/// random kernel decay: worst-delay mean within 1.5%, std within 8%,
/// and KS distance within the two-independent-MC-streams bound.
#[test]
fn kle_and_cholesky_delay_distributions_agree() {
    let name = "kle_and_cholesky_delay_distributions_agree";
    // Each case is a full mesh + eigensolve + two MC runs; keep it to a
    // handful of cases independent of KLEST_PROPTEST_CASES.
    let cfg = Config {
        cases: 3,
        ..Config::from_env(name)
    };
    let strat = (
        strategies::f64_in(0.8..2.2),
        strategies::usize_in(30..90),
    );
    check_config(name, &cfg, &strat, |&(decay, gates)| {
        let kernel = GaussianKernel::new(decay);
        let circuit = generate(
            "prop-circuit",
            GeneratorConfig::combinational(gates, 0xC1C0 + gates as u64),
        )
        .map_err(|e| format!("circuit generation failed: {e}"))?;
        let setup = CircuitSetup::prepare(&circuit);
        let ctx = KleContext::coarse(&kernel).map_err(|e| format!("KLE context: {e}"))?;
        let samples = 2500;
        let mc_cfg = McConfig::new(samples, 2008).with_threads(2);
        let (reference, _) =
            run_reference(&setup, &kernel, &mc_cfg).map_err(|e| format!("Algorithm 1: {e}"))?;
        let (kle, _) = run_kle(&setup, &ctx, &mc_cfg).map_err(|e| format!("Algorithm 2: {e}"))?;

        let ref_stats = SummaryStats::of(reference.worst_delays());
        let kle_stats = SummaryStats::of(kle.worst_delays());
        let mean_err = (kle_stats.mean - ref_stats.mean).abs() / ref_stats.mean;
        if mean_err > 0.015 {
            return Err(format!(
                "decay {decay:.2}, {gates} gates: mean mismatch {:.3}% (ref {}, kle {})",
                100.0 * mean_err,
                ref_stats.mean,
                kle_stats.mean
            ));
        }
        let std_err = (kle_stats.std_dev - ref_stats.std_dev).abs() / ref_stats.std_dev;
        if std_err > 0.08 {
            return Err(format!(
                "decay {decay:.2}, {gates} gates: std mismatch {:.3}%",
                100.0 * std_err
            ));
        }
        // Two independent MC streams of n samples each: the 99.9%
        // two-sample KS critical value is ~1.95·sqrt(2/n); allow that
        // plus headroom for the KLE truncation bias.
        let ks = ks_distance(reference.worst_delays(), kle.worst_delays());
        let bound = 1.95 * (2.0 / samples as f64).sqrt() + 0.02;
        if ks > bound {
            return Err(format!(
                "decay {decay:.2}, {gates} gates: KS distance {ks:.4} over bound {bound:.4}"
            ));
        }
        // Dimensionality reduction actually happened (the paper's point).
        if kle.random_dims() >= reference.random_dims() {
            return Err(format!(
                "KLE used {} RVs, reference {} — no reduction",
                kle.random_dims(),
                reference.random_dims()
            ));
        }
        Ok(())
    });
}

/// The KS helper itself is sane: identical samples give 0, disjoint
/// samples give 1.
#[test]
fn ks_distance_sanity() {
    let a = [1.0, 2.0, 3.0, 4.0];
    assert!(ks_distance(&a, &a) <= 0.25 + 1e-12); // ties step together
    let b = [10.0, 11.0, 12.0];
    assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    let c = [1.5, 2.5, 3.5];
    assert!(ks_distance(&a, &c) < 0.5);
}
