//! Property-based tests (proptest) over the core invariants of the
//! workspace: kernel axioms, mesh geometry, linear algebra and sampler
//! consistency under randomized configurations.

use klest::core::{GalerkinKle, KleOptions};
use klest::geometry::{Point2, Rect, Triangle};
use klest::kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel,
    SeparableExponentialKernel,
};
use klest::linalg::{Cholesky, DiagonalGep, Matrix, SymmetricEigen};
use klest::mesh::MeshBuilder;
use proptest::prelude::*;

fn point_in_die() -> impl Strategy<Value = Point2> {
    (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every kernel family: symmetric, bounded by the diagonal, unit
    /// self-correlation — the axioms under eq. (2).
    #[test]
    fn kernel_axioms(
        x in point_in_die(),
        y in point_in_die(),
        c in 0.2f64..8.0,
        s in 1.1f64..4.0,
    ) {
        let kernels: Vec<Box<dyn CovarianceKernel>> = vec![
            Box::new(GaussianKernel::new(c)),
            Box::new(ExponentialKernel::new(c)),
            Box::new(SeparableExponentialKernel::new(c)),
            Box::new(MaternKernel::new(c, s).expect("valid params")),
        ];
        for k in kernels {
            let kxy = k.eval(x, y);
            let kyx = k.eval(y, x);
            prop_assert!((kxy - kyx).abs() < 1e-12, "{} asymmetric", k.name());
            prop_assert!(kxy <= 1.0 + 1e-12, "{} exceeds 1", k.name());
            prop_assert!(kxy >= 0.0, "{} negative", k.name());
            prop_assert!((k.eval(x, x) - 1.0).abs() < 1e-12, "{} K(x,x) != 1", k.name());
        }
    }

    /// Isotropic kernels decay monotonically with distance.
    #[test]
    fn kernel_monotone_decay(c in 0.2f64..6.0, r1 in 0.0f64..2.0, dr in 0.001f64..1.0) {
        let r2 = r1 + dr;
        let g = GaussianKernel::new(c);
        prop_assert!(g.correlation_at_distance(r1).unwrap() >= g.correlation_at_distance(r2).unwrap());
        let e = ExponentialKernel::new(c);
        prop_assert!(e.correlation_at_distance(r1).unwrap() >= e.correlation_at_distance(r2).unwrap());
    }

    /// Any triangle: centroid inside, barycentric roundtrip, angle sum.
    #[test]
    fn triangle_invariants(
        ax in -1.0f64..1.0, ay in -1.0f64..1.0,
        bx in -1.0f64..1.0, by in -1.0f64..1.0,
        cx in -1.0f64..1.0, cy in -1.0f64..1.0,
    ) {
        let t = Triangle::new(Point2::new(ax, ay), Point2::new(bx, by), Point2::new(cx, cy));
        prop_assume!(t.area() > 1e-6);
        prop_assert!(t.contains(t.centroid()));
        let angles: f64 = t.angles().iter().sum();
        prop_assert!((angles - std::f64::consts::PI).abs() < 1e-9);
        let (center, radius) = t.circumcircle().expect("non-degenerate");
        for v in t.vertices() {
            prop_assert!((center.distance(v) - radius).abs() < 1e-6 * radius.max(1.0));
        }
    }

    /// Mesh construction: full coverage, centroids in-domain, positive
    /// areas, area constraint honoured — for arbitrary area budgets.
    #[test]
    fn mesh_invariants(max_area in 0.01f64..0.5) {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(max_area)
            .min_angle_degrees(22.0)
            .build()
            .expect("meshing succeeds");
        prop_assert!((mesh.total_area() - 4.0).abs() < 1e-8);
        for (i, (&a, c)) in mesh.areas().iter().zip(mesh.centroids()).enumerate() {
            prop_assert!(a > 0.0, "triangle {i} degenerate");
            prop_assert!(a <= max_area * (1.0 + 1e-9), "triangle {i} too large");
            prop_assert!(mesh.domain().contains(*c));
        }
    }

    /// Point location agrees with geometry for random query points.
    #[test]
    fn locator_agrees_with_containment(px in -1.0f64..1.0, py in -1.0f64..1.0) {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(0.05)
            .build()
            .expect("meshing succeeds");
        let p = Point2::new(px, py);
        let idx = mesh.locator().locate(p).expect("inside the die");
        prop_assert!(mesh.triangle(idx).contains(p));
    }

    /// Random SPD matrices: Cholesky reconstructs, solve inverts,
    /// eigensolve reconstructs with orthonormal vectors.
    #[test]
    fn linalg_invariants(seed in 0u64..10_000, n in 2usize..12) {
        // SPD via A = B Bᵀ + I.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| rnd());
        let mut a = b.mul(&b.transpose()).expect("square");
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        // Cholesky.
        let chol = Cholesky::new(&a).expect("SPD");
        let back = chol.lower().mul(&chol.upper()).expect("square");
        prop_assert!(back.sub(&a).expect("same dims").max_abs() < 1e-9);
        let x_true: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let rhs = a.mul_vec(&x_true).expect("dims");
        let x = chol.solve(&rhs).expect("dims");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
        // Eigen.
        let eig = SymmetricEigen::new(&a).expect("symmetric");
        prop_assert!(eig.reconstruct().sub(&a).expect("dims").max_abs() < 1e-8);
        for l in eig.eigenvalues() {
            prop_assert!(*l > 0.0, "SPD eigenvalues positive");
        }
        // Generalized problem with random positive masses.
        let phi: Vec<f64> = (0..n).map(|_| 0.5 + rnd().abs()).collect();
        let gep = DiagonalGep::solve(&a, &phi).expect("valid");
        for j in 0..n {
            let d = gep.eigenvector(j);
            let kd = a.mul_vec(&d).expect("dims");
            let lam = gep.eigenvalues()[j];
            for i in 0..n {
                prop_assert!((kd[i] - lam * phi[i] * d[i]).abs() < 1e-7);
            }
        }
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The KLE eigenvalue trace identity holds for any Gaussian decay and
    /// mesh resolution, and eigenfunctions stay orthonormal.
    #[test]
    fn kle_invariants(c in 0.5f64..5.0, max_area in 0.05f64..0.3) {
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(max_area)
            .build()
            .expect("mesh");
        let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(c), KleOptions::default())
            .expect("KLE");
        let trace: f64 = kle.eigenvalues().iter().sum();
        prop_assert!((trace - 4.0).abs() < 1e-8, "trace {trace}");
        // Orthonormality of the first few eigenfunctions.
        for i in 0..3.min(kle.retained()) {
            for j in i..3.min(kle.retained()) {
                let fi = kle.eigenfunction(i);
                let fj = kle.eigenfunction(j);
                let inner: f64 = fi.iter().zip(&fj).zip(kle.areas()).map(|((a, b), w)| a * b * w).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((inner - expect).abs() < 1e-8);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random convex polygonal dies: the mesh covers exactly the polygon
    /// (area match), all centroids are inside, and point location agrees
    /// with the outline.
    #[test]
    fn polygonal_mesh_invariants(seed in 0u64..500, sides in 3usize..8) {
        use klest::geometry::Polygon;
        // Convex polygon via sorted angles on an ellipse.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut angles: Vec<f64> = (0..sides).map(|_| rnd() * std::f64::consts::TAU).collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        angles.dedup_by(|a, b| (*a - *b).abs() < 0.15);
        prop_assume!(angles.len() >= 3);
        let rx = 0.5 + 0.5 * rnd();
        let ry = 0.5 + 0.5 * rnd();
        let vertices: Vec<Point2> = angles
            .iter()
            .map(|t| Point2::new(rx * t.cos(), ry * t.sin()))
            .collect();
        let poly = Polygon::new(vertices).expect("at least 3 vertices");
        prop_assume!(poly.area() > 0.2);
        let mesh = MeshBuilder::polygon(poly.clone())
            .max_area(0.05)
            .min_angle_degrees(22.0)
            .build()
            .expect("polygonal mesh");
        prop_assert!(
            (mesh.total_area() - poly.area()).abs() < 0.03 * poly.area(),
            "mesh area {} vs polygon area {}",
            mesh.total_area(),
            poly.area()
        );
        for c in mesh.centroids() {
            prop_assert!(poly.contains(*c));
        }
        // Locator agrees with the outline at random probes.
        let locator = mesh.locator();
        for _ in 0..20 {
            let p = Point2::new(-1.0 + 2.0 * rnd(), -1.0 + 2.0 * rnd());
            match locator.locate(p) {
                Some(t) => prop_assert!(mesh.triangle(t).contains(p)),
                None => {
                    // Points comfortably interior must always be found.
                    let interior = poly.contains(p)
                        && poly.edges().all(|(a, b)| {
                            // distance from p to segment ab exceeds the mesh h
                            let ab = b - a;
                            let t = ((p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
                            let proj = a + ab * t;
                            proj.distance(p) > mesh.max_side()
                        });
                    prop_assert!(!interior, "interior point {p} not located");
                }
            }
        }
    }
}
