//! Property-style tests over the core invariants of the workspace:
//! kernel axioms, mesh geometry, linear algebra and sampler consistency
//! under randomized configurations. Cases are drawn from the in-tree
//! deterministic generator (`klest-rng`), so every run exercises the
//! same inputs and failures reproduce exactly.

use klest::core::{GalerkinKle, KleOptions};
use klest::geometry::{Point2, Rect, Triangle};
use klest::kernels::{
    CovarianceKernel, ExponentialKernel, GaussianKernel, MaternKernel,
    SeparableExponentialKernel,
};
use klest::linalg::{Cholesky, DiagonalGep, Matrix, SymmetricEigen};
use klest::mesh::MeshBuilder;
use klest_rng::{Rng, SeedableRng, StdRng};

fn point_in_die(rng: &mut StdRng) -> Point2 {
    Point2::new(rng.gen_range(-1.0f64..1.0), rng.gen_range(-1.0f64..1.0))
}

/// Every kernel family: symmetric, bounded by the diagonal, unit
/// self-correlation — the axioms under eq. (2).
#[test]
fn kernel_axioms() {
    let mut rng = StdRng::seed_from_u64(0x6b65726e);
    for _ in 0..64 {
        let x = point_in_die(&mut rng);
        let y = point_in_die(&mut rng);
        let c = rng.gen_range(0.2f64..8.0);
        let s = rng.gen_range(1.1f64..4.0);
        let kernels: Vec<Box<dyn CovarianceKernel>> = vec![
            Box::new(GaussianKernel::new(c)),
            Box::new(ExponentialKernel::new(c)),
            Box::new(SeparableExponentialKernel::new(c)),
            Box::new(MaternKernel::new(c, s).expect("valid params")),
        ];
        for k in kernels {
            let kxy = k.eval(x, y);
            let kyx = k.eval(y, x);
            assert!((kxy - kyx).abs() < 1e-12, "{} asymmetric", k.name());
            assert!(kxy <= 1.0 + 1e-12, "{} exceeds 1", k.name());
            assert!(kxy >= 0.0, "{} negative", k.name());
            assert!((k.eval(x, x) - 1.0).abs() < 1e-12, "{} K(x,x) != 1", k.name());
        }
    }
}

/// Isotropic kernels decay monotonically with distance.
#[test]
fn kernel_monotone_decay() {
    let mut rng = StdRng::seed_from_u64(0x6d6f6e6f);
    for _ in 0..64 {
        let c = rng.gen_range(0.2f64..6.0);
        let r1 = rng.gen_range(0.0f64..2.0);
        let r2 = r1 + rng.gen_range(0.001f64..1.0);
        let g = GaussianKernel::new(c);
        assert!(g.correlation_at_distance(r1).unwrap() >= g.correlation_at_distance(r2).unwrap());
        let e = ExponentialKernel::new(c);
        assert!(e.correlation_at_distance(r1).unwrap() >= e.correlation_at_distance(r2).unwrap());
    }
}

/// Any triangle: centroid inside, barycentric roundtrip, angle sum.
#[test]
fn triangle_invariants() {
    let mut rng = StdRng::seed_from_u64(0x74726961);
    let mut cases = 0;
    while cases < 64 {
        let t = Triangle::new(
            point_in_die(&mut rng),
            point_in_die(&mut rng),
            point_in_die(&mut rng),
        );
        if t.area() <= 1e-6 {
            continue;
        }
        cases += 1;
        assert!(t.contains(t.centroid()));
        let angles: f64 = t.angles().iter().sum();
        assert!((angles - std::f64::consts::PI).abs() < 1e-9);
        let (center, radius) = t.circumcircle().expect("non-degenerate");
        for v in t.vertices() {
            assert!((center.distance(v) - radius).abs() < 1e-6 * radius.max(1.0));
        }
    }
}

/// Mesh construction: full coverage, centroids in-domain, positive
/// areas, area constraint honoured — for arbitrary area budgets.
#[test]
fn mesh_invariants() {
    let mut rng = StdRng::seed_from_u64(0x6d657368);
    for _ in 0..16 {
        let max_area = rng.gen_range(0.01f64..0.5);
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(max_area)
            .min_angle_degrees(22.0)
            .build()
            .expect("meshing succeeds");
        assert!((mesh.total_area() - 4.0).abs() < 1e-8);
        for (i, (&a, c)) in mesh.areas().iter().zip(mesh.centroids()).enumerate() {
            assert!(a > 0.0, "triangle {i} degenerate");
            assert!(a <= max_area * (1.0 + 1e-9), "triangle {i} too large");
            assert!(mesh.domain().contains(*c));
        }
    }
}

/// Point location agrees with geometry for random query points.
#[test]
fn locator_agrees_with_containment() {
    let mesh = MeshBuilder::new(Rect::unit_die())
        .max_area(0.05)
        .build()
        .expect("meshing succeeds");
    let locator = mesh.locator();
    let mut rng = StdRng::seed_from_u64(0x6c6f6361);
    for _ in 0..64 {
        let p = point_in_die(&mut rng);
        let idx = locator.locate(p).expect("inside the die");
        assert!(mesh.triangle(idx).contains(p));
    }
}

/// Random SPD matrices: Cholesky reconstructs, solve inverts,
/// eigensolve reconstructs with orthonormal vectors.
#[test]
fn linalg_invariants() {
    let mut rng = StdRng::seed_from_u64(0x6c696e61);
    for _ in 0..64 {
        let n = rng.gen_range(2usize..12);
        // SPD via A = B Bᵀ + I.
        let rnd = |rng: &mut StdRng| rng.gen::<f64>() - 0.5;
        let b = Matrix::from_fn(n, n, |_, _| rnd(&mut rng));
        let mut a = b.mul(&b.transpose()).expect("square");
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        // Cholesky.
        let chol = Cholesky::new(&a).expect("SPD");
        let back = chol.lower().mul(&chol.upper()).expect("square");
        assert!(back.sub(&a).expect("same dims").max_abs() < 1e-9);
        let x_true: Vec<f64> = (0..n).map(|_| rnd(&mut rng)).collect();
        let rhs = a.mul_vec(&x_true).expect("dims");
        let x = chol.solve(&rhs).expect("dims");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
        // Eigen.
        let eig = SymmetricEigen::new(&a).expect("symmetric");
        assert!(eig.reconstruct().sub(&a).expect("dims").max_abs() < 1e-8);
        for l in eig.eigenvalues() {
            assert!(*l > 0.0, "SPD eigenvalues positive");
        }
        // Generalized problem with random positive masses.
        let phi: Vec<f64> = (0..n).map(|_| 0.5 + rnd(&mut rng).abs()).collect();
        let gep = DiagonalGep::solve(&a, &phi).expect("valid");
        for j in 0..n {
            let d = gep.eigenvector(j);
            let kd = a.mul_vec(&d).expect("dims");
            let lam = gep.eigenvalues()[j];
            for i in 0..n {
                assert!((kd[i] - lam * phi[i] * d[i]).abs() < 1e-7);
            }
        }
    }
}

/// The KLE eigenvalue trace identity holds for any Gaussian decay and
/// mesh resolution, and eigenfunctions stay orthonormal.
#[test]
fn kle_invariants() {
    let mut rng = StdRng::seed_from_u64(0x6b6c6531);
    for _ in 0..8 {
        let c = rng.gen_range(0.5f64..5.0);
        let max_area = rng.gen_range(0.05f64..0.3);
        let mesh = MeshBuilder::new(Rect::unit_die())
            .max_area(max_area)
            .build()
            .expect("mesh");
        let kle = GalerkinKle::compute(&mesh, &GaussianKernel::new(c), KleOptions::default())
            .expect("KLE");
        let trace: f64 = kle.eigenvalues().iter().sum();
        assert!((trace - 4.0).abs() < 1e-8, "trace {trace}");
        // Orthonormality of the first few eigenfunctions.
        for i in 0..3.min(kle.retained()) {
            for j in i..3.min(kle.retained()) {
                let fi = kle.eigenfunction(i);
                let fj = kle.eigenfunction(j);
                let inner: f64 =
                    fi.iter().zip(&fj).zip(kle.areas()).map(|((a, b), w)| a * b * w).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((inner - expect).abs() < 1e-8);
            }
        }
    }
}

/// Random convex polygonal dies: the mesh covers exactly the polygon
/// (area match), all centroids are inside, and point location agrees
/// with the outline.
#[test]
fn polygonal_mesh_invariants() {
    use klest::geometry::Polygon;
    let mut rng = StdRng::seed_from_u64(0x706f6c79);
    let mut cases = 0;
    while cases < 12 {
        let sides = rng.gen_range(3usize..8);
        // Convex polygon via sorted angles on an ellipse.
        let mut angles: Vec<f64> = (0..sides)
            .map(|_| rng.gen::<f64>() * std::f64::consts::TAU)
            .collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        angles.dedup_by(|a, b| (*a - *b).abs() < 0.15);
        if angles.len() < 3 {
            continue;
        }
        let rx = 0.5 + 0.5 * rng.gen::<f64>();
        let ry = 0.5 + 0.5 * rng.gen::<f64>();
        let vertices: Vec<Point2> = angles
            .iter()
            .map(|t| Point2::new(rx * t.cos(), ry * t.sin()))
            .collect();
        let poly = Polygon::new(vertices).expect("at least 3 vertices");
        if poly.area() <= 0.2 {
            continue;
        }
        cases += 1;
        let mesh = MeshBuilder::polygon(poly.clone())
            .max_area(0.05)
            .min_angle_degrees(22.0)
            .build()
            .expect("polygonal mesh");
        assert!(
            (mesh.total_area() - poly.area()).abs() < 0.03 * poly.area(),
            "mesh area {} vs polygon area {}",
            mesh.total_area(),
            poly.area()
        );
        for c in mesh.centroids() {
            assert!(poly.contains(*c));
        }
        // Locator agrees with the outline at random probes.
        let locator = mesh.locator();
        for _ in 0..20 {
            let p = point_in_die(&mut rng);
            match locator.locate(p) {
                Some(t) => assert!(mesh.triangle(t).contains(p)),
                None => {
                    // Points comfortably interior must always be found.
                    let interior = poly.contains(p)
                        && poly.edges().all(|(a, b)| {
                            // distance from p to segment ab exceeds the mesh h
                            let ab = b - a;
                            let t = ((p - a).dot(ab) / ab.norm_sq()).clamp(0.0, 1.0);
                            let proj = a + ab * t;
                            proj.distance(p) > mesh.max_side()
                        });
                    assert!(!interior, "interior point {p} not located");
                }
            }
        }
    }
}
