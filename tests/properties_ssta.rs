//! Property-based tests over the statistical layers: Clark's max,
//! quantiles, canonical-form algebra, netlist round-trips and the
//! special functions.

use klest::circuit::{generate, parse_netlist, write_netlist, GeneratorConfig};
use klest::kernels::special::{bessel_k, gamma};
use klest::ssta::canonical::{erf, normal_cdf, CanonicalForm};
use klest::ssta::quantile;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// E[max(X, Y)] >= max(E[X], E[Y]) with equality only in degenerate
    /// cases, and Var[max] is finite and non-negative.
    #[test]
    fn clark_max_mean_dominates(
        mx in -50.0f64..50.0,
        my in -50.0f64..50.0,
        ax in -3.0f64..3.0,
        ay in -3.0f64..3.0,
        bx in -3.0f64..3.0,
        by in -3.0f64..3.0,
        ix in 0.0f64..2.0,
        iy in 0.0f64..2.0,
    ) {
        let x = CanonicalForm { mean: mx, sens: vec![ax, bx], indep: ix };
        let y = CanonicalForm { mean: my, sens: vec![ay, by], indep: iy };
        let m = CanonicalForm::clark_max(&x, &y);
        prop_assert!(m.mean >= mx.max(my) - 1e-9, "mean {} < max({mx}, {my})", m.mean);
        prop_assert!(m.variance().is_finite());
        prop_assert!(m.variance() >= -1e-12);
        // Commutativity.
        let m2 = CanonicalForm::clark_max(&y, &x);
        prop_assert!((m.mean - m2.mean).abs() < 1e-9);
        prop_assert!((m.sigma() - m2.sigma()).abs() < 1e-9);
    }

    /// Adding a constant shifts Clark's max by exactly that constant.
    #[test]
    fn clark_max_translation_invariance(
        mx in -10.0f64..10.0,
        my in -10.0f64..10.0,
        c in -20.0f64..20.0,
    ) {
        let x = CanonicalForm { mean: mx, sens: vec![1.0, 0.3], indep: 0.2 };
        let y = CanonicalForm { mean: my, sens: vec![0.4, 1.1], indep: 0.1 };
        let base = CanonicalForm::clark_max(&x, &y);
        let mut xs = x.clone();
        xs.shift(c);
        let mut ys = y.clone();
        ys.shift(c);
        let shifted = CanonicalForm::clark_max(&xs, &ys);
        prop_assert!((shifted.mean - base.mean - c).abs() < 1e-9);
        prop_assert!((shifted.sigma() - base.sigma()).abs() < 1e-9);
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantile_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..50), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        prop_assert!(a >= xs[0] - 1e-9);
        prop_assert!(b <= xs[xs.len() - 1] + 1e-9);
    }

    /// erf is odd, bounded, monotone; Φ respects symmetry.
    #[test]
    fn erf_properties(x in -5.0f64..5.0, dx in 0.001f64..1.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-7);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!(erf(x + dx) >= erf(x) - 1e-9);
        prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
    }

    /// Γ(x+1) = x Γ(x) on the positive axis.
    #[test]
    fn gamma_recurrence(x in 0.1f64..20.0) {
        let lhs = gamma(x + 1.0);
        let rhs = x * gamma(x);
        prop_assert!((lhs - rhs).abs() / rhs.abs() < 1e-10, "{lhs} vs {rhs}");
    }

    /// K_ν decreases in ν for fixed argument... (false in general — K
    /// *increases* with order); the true property: K_{ν+1} > K_ν for
    /// x > 0.
    #[test]
    fn bessel_k_increases_with_order(nu in 0.0f64..3.0, x in 0.1f64..10.0) {
        let a = bessel_k(nu, x).unwrap();
        let b = bessel_k(nu + 1.0, x).unwrap();
        prop_assert!(b > a, "K_{{{}}}({x}) = {b} <= K_{{{nu}}}({x}) = {a}", nu + 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated netlists survive serialisation round-trips structurally.
    #[test]
    fn netlist_roundtrip_property(gates in 5usize..120, seed in 0u64..1000) {
        let c = generate("prop", GeneratorConfig::combinational(gates, seed)).expect("gen");
        let text = write_netlist(&c);
        let back = parse_netlist("prop", &text).expect("parse");
        prop_assert_eq!(back.node_count(), c.node_count());
        prop_assert_eq!(back.gate_count(), c.gate_count());
        prop_assert_eq!(back.outputs(), c.outputs());
        for id in c.topological_order() {
            prop_assert_eq!(back.kind(id), c.kind(id));
            prop_assert_eq!(back.fanins(id), c.fanins(id));
        }
    }
}
