//! Property-style tests over the statistical layers: Clark's max,
//! quantiles, canonical-form algebra, netlist round-trips and the
//! special functions. Cases are drawn from the in-tree deterministic
//! generator (`klest-rng`), so failures reproduce exactly.

use klest::circuit::{generate, parse_netlist, write_netlist, GeneratorConfig};
use klest::kernels::special::{bessel_k, gamma};
use klest::ssta::canonical::{erf, normal_cdf, CanonicalForm};
use klest::ssta::quantile;
use klest_rng::{Rng, SeedableRng, StdRng};

/// E[max(X, Y)] >= max(E[X], E[Y]) with equality only in degenerate
/// cases, and Var[max] is finite and non-negative.
#[test]
fn clark_max_mean_dominates() {
    let mut rng = StdRng::seed_from_u64(0x636c6172);
    for _ in 0..128 {
        let mx = rng.gen_range(-50.0f64..50.0);
        let my = rng.gen_range(-50.0f64..50.0);
        let x = CanonicalForm {
            mean: mx,
            sens: vec![rng.gen_range(-3.0f64..3.0), rng.gen_range(-3.0f64..3.0)],
            indep: rng.gen_range(0.0f64..2.0),
        };
        let y = CanonicalForm {
            mean: my,
            sens: vec![rng.gen_range(-3.0f64..3.0), rng.gen_range(-3.0f64..3.0)],
            indep: rng.gen_range(0.0f64..2.0),
        };
        let m = CanonicalForm::clark_max(&x, &y);
        assert!(m.mean >= mx.max(my) - 1e-9, "mean {} < max({mx}, {my})", m.mean);
        assert!(m.variance().is_finite());
        assert!(m.variance() >= -1e-12);
        // Commutativity.
        let m2 = CanonicalForm::clark_max(&y, &x);
        assert!((m.mean - m2.mean).abs() < 1e-9);
        assert!((m.sigma() - m2.sigma()).abs() < 1e-9);
    }
}

/// Adding a constant shifts Clark's max by exactly that constant.
#[test]
fn clark_max_translation_invariance() {
    let mut rng = StdRng::seed_from_u64(0x73686966);
    for _ in 0..128 {
        let mx = rng.gen_range(-10.0f64..10.0);
        let my = rng.gen_range(-10.0f64..10.0);
        let c = rng.gen_range(-20.0f64..20.0);
        let x = CanonicalForm { mean: mx, sens: vec![1.0, 0.3], indep: 0.2 };
        let y = CanonicalForm { mean: my, sens: vec![0.4, 1.1], indep: 0.1 };
        let base = CanonicalForm::clark_max(&x, &y);
        let mut xs = x.clone();
        xs.shift(c);
        let mut ys = y.clone();
        ys.shift(c);
        let shifted = CanonicalForm::clark_max(&xs, &ys);
        assert!((shifted.mean - base.mean - c).abs() < 1e-9);
        assert!((shifted.sigma() - base.sigma()).abs() < 1e-9);
    }
}

/// Quantiles are monotone in q and bounded by the extremes.
#[test]
fn quantile_monotone() {
    let mut rng = StdRng::seed_from_u64(0x7175616e);
    for _ in 0..128 {
        let len = rng.gen_range(1usize..50);
        let mut xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let q1 = rng.gen::<f64>();
        let q2 = rng.gen::<f64>();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        assert!(a <= b + 1e-9);
        xs.sort_by(|p, q| p.partial_cmp(q).unwrap());
        assert!(a >= xs[0] - 1e-9);
        assert!(b <= xs[xs.len() - 1] + 1e-9);
    }
}

/// erf is odd, bounded, monotone; Φ respects symmetry.
#[test]
fn erf_properties() {
    let mut rng = StdRng::seed_from_u64(0x65726621);
    for _ in 0..128 {
        let x = rng.gen_range(-5.0f64..5.0);
        let dx = rng.gen_range(0.001f64..1.0);
        assert!((erf(x) + erf(-x)).abs() < 1e-7);
        assert!(erf(x).abs() <= 1.0);
        assert!(erf(x + dx) >= erf(x) - 1e-9);
        assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
    }
}

/// Γ(x+1) = x Γ(x) on the positive axis.
#[test]
fn gamma_recurrence() {
    let mut rng = StdRng::seed_from_u64(0x67616d6d);
    for _ in 0..128 {
        let x = rng.gen_range(0.1f64..20.0);
        let lhs = gamma(x + 1.0);
        let rhs = x * gamma(x);
        assert!((lhs - rhs).abs() / rhs.abs() < 1e-10, "{lhs} vs {rhs}");
    }
}

/// K_ν increases with order for x > 0: K_{ν+1}(x) > K_ν(x).
#[test]
fn bessel_k_increases_with_order() {
    let mut rng = StdRng::seed_from_u64(0x62657373);
    for _ in 0..128 {
        let nu = rng.gen_range(0.0f64..3.0);
        let x = rng.gen_range(0.1f64..10.0);
        let a = bessel_k(nu, x).unwrap();
        let b = bessel_k(nu + 1.0, x).unwrap();
        assert!(b > a, "K_{{{}}}({x}) = {b} <= K_{{{nu}}}({x}) = {a}", nu + 1.0);
    }
}

/// Generated netlists survive serialisation round-trips structurally.
#[test]
fn netlist_roundtrip_property() {
    let mut rng = StdRng::seed_from_u64(0x6e65746c);
    for _ in 0..16 {
        let gates = rng.gen_range(5usize..120);
        let seed = rng.gen_range(0u64..1000);
        let c = generate("prop", GeneratorConfig::combinational(gates, seed)).expect("gen");
        let text = write_netlist(&c);
        let back = parse_netlist("prop", &text).expect("parse");
        assert_eq!(back.node_count(), c.node_count());
        assert_eq!(back.gate_count(), c.gate_count());
        assert_eq!(back.outputs(), c.outputs());
        for id in c.topological_order() {
            assert_eq!(back.kind(id), c.kind(id));
            assert_eq!(back.fanins(id), c.fanins(id));
        }
    }
}
