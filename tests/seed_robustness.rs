//! Scientific hygiene for the synthetic-benchmark substitution: the
//! Table 1 conclusions (tiny e_μ, few-percent e_σ) must hold across
//! *different* synthetic netlist instances, not just the fixed seeds the
//! suite ships — otherwise the reproduction would hinge on a lucky
//! circuit.

use klest::circuit::{generate, GeneratorConfig};
use klest::kernels::GaussianKernel;
use klest::ssta::experiments::{compare_methods, CircuitSetup, KleContext};
use klest::ssta::McConfig;

#[test]
fn table1_conclusions_hold_across_circuit_instances() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("KLE context");
    for seed in [101u64, 202, 303] {
        let circuit =
            generate("robust", GeneratorConfig::combinational(300, seed)).expect("gen");
        let setup = CircuitSetup::prepare(&circuit);
        let cmp = compare_methods(
            &setup,
            &kernel,
            &ctx,
            &McConfig::new(1200, seed ^ 0xf00d).with_threads(2),
        )
        .expect("comparison");
        assert!(
            cmp.e_mu_pct < 0.6,
            "seed {seed}: e_mu = {:.3}% out of regime",
            cmp.e_mu_pct
        );
        assert!(
            cmp.e_sigma_pct < 18.0,
            "seed {seed}: e_sigma = {:.3}% out of regime",
            cmp.e_sigma_pct
        );
    }
}

#[test]
fn sequential_and_combinational_instances_both_work() {
    let kernel = GaussianKernel::with_correlation_distance(1.0);
    let ctx = KleContext::coarse(&kernel).expect("KLE context");
    for config in [
        GeneratorConfig::combinational(250, 7),
        GeneratorConfig::sequential(250, 7),
    ] {
        let circuit = generate("both", config).expect("gen");
        let setup = CircuitSetup::prepare(&circuit);
        let cmp = compare_methods(&setup, &kernel, &ctx, &McConfig::new(800, 5).with_threads(2))
            .expect("comparison");
        assert!(cmp.e_mu_pct < 1.0, "e_mu = {:.3}%", cmp.e_mu_pct);
        assert!(cmp.mc.std_dev > 0.0 && cmp.kle.std_dev > 0.0);
    }
}
