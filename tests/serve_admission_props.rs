//! Admission property for the serve daemon: whatever mix of valid,
//! malformed, hostile and deadline-carrying traffic arrives — and
//! however small the queue and worker pool are — every request line
//! gets **exactly one** typed terminal response, the summary's
//! admission ledger balances, and the drain finishes clean. Seeded and
//! replayable via `KLEST_PROPTEST_SEED=<property>:<seed>`.

use klest::serve::{ServeConfig, Server};
use klest_proptest::{check_config, strategies, Config};
use std::io::Cursor;
use std::time::Duration;

/// The request kinds the generator mixes. Each generated line carries a
/// unique id (where the protocol can echo one back), so responses can
/// be matched 1:1 against the stream that produced them.
#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Well-formed query, first cache config.
    QueryA,
    /// Well-formed query, second cache config (distinct artifact key).
    QueryB,
    /// Malformed line — not JSON at all; the response has a null id.
    Garbage,
    /// Well-formed JSON with an unknown key; typed bad_request, id echoed.
    UnknownKey,
    /// Ping; one pong.
    Ping,
    /// Query that panics inside the worker; typed fault after a retry.
    Panic,
    /// Query whose 1 ms deadline expires while queued.
    TightDeadline,
}

const KINDS: [Kind; 7] = [
    Kind::QueryA,
    Kind::QueryB,
    Kind::Garbage,
    Kind::UnknownKey,
    Kind::Ping,
    Kind::Panic,
    Kind::TightDeadline,
];

const TINY: &str = r#""gates":8,"samples":16,"area_fraction":0.1"#;
const TINY_B: &str = r#""gates":8,"samples":16,"area_fraction":0.1,"dist":0.7"#;

fn line_for(kind: Kind, i: usize) -> String {
    match kind {
        Kind::QueryA => format!("{{\"id\":\"q{i}\",{TINY}}}"),
        Kind::QueryB => format!("{{\"id\":\"q{i}\",{TINY_B}}}"),
        Kind::Garbage => format!("not json at all #{i}"),
        Kind::UnknownKey => format!("{{\"id\":\"q{i}\",\"frobnicate\":1,{TINY}}}"),
        Kind::Ping => format!("{{\"op\":\"ping\",\"id\":\"q{i}\"}}"),
        Kind::Panic => format!("{{\"id\":\"q{i}\",\"inject_panic\":true,{TINY}}}"),
        Kind::TightDeadline => format!("{{\"id\":\"q{i}\",\"deadline_ms\":1,{TINY}}}"),
    }
}

#[test]
fn every_request_gets_exactly_one_typed_terminal_response() {
    let name = "every_request_gets_exactly_one_typed_terminal_response";
    // Each case spins up a worker pool and replays a full stream; keep
    // the case count fixed rather than scaling with KLEST_PROPTEST_CASES.
    let cfg = Config {
        cases: 12,
        ..Config::from_env(name)
    };
    let strat = (
        strategies::vec_of(strategies::usize_in(0..KINDS.len()), 4..24),
        strategies::usize_in(1..4),
        strategies::usize_in(1..6),
    );
    check_config(name, &cfg, &strat, |(kinds, workers, queue_depth)| {
        let lines: Vec<(Kind, String)> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| (KINDS[k], line_for(KINDS[k], i)))
            .collect();
        let mut input: String = lines
            .iter()
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        input.push_str("{\"op\":\"shutdown\"}\n");

        let server = Server::new(ServeConfig {
            workers: *workers,
            queue_depth: *queue_depth,
            drain: Duration::from_secs(60),
            ..ServeConfig::default()
        });
        let mut out: Vec<u8> = Vec::new();
        let summary = server.serve(Cursor::new(input), &mut out);
        let text = String::from_utf8(out).map_err(|e| format!("non-UTF-8 response: {e}"))?;
        let responses: Vec<&str> = text.lines().collect();

        // 1. Exactly one response per id-carrying request, and it is a
        //    typed terminal (or pong) — never a second line, never none.
        for (i, (kind, line)) in lines.iter().enumerate() {
            if matches!(kind, Kind::Garbage) {
                continue;
            }
            let pat = format!("\"id\":\"q{i}\"");
            let matched: Vec<&&str> = responses.iter().filter(|r| r.contains(&pat)).collect();
            if matched.len() != 1 {
                return Err(format!(
                    "request {line:?} got {} responses: {matched:?}",
                    matched.len()
                ));
            }
            let ok = matched[0].contains("\"status\":\"completed\"")
                || matched[0].contains("\"status\":\"salvaged\"")
                || matched[0].contains("\"status\":\"shed\"")
                || matched[0].contains("\"status\":\"cancelled\"")
                || matched[0].contains("\"status\":\"fault\"")
                || matched[0].contains("\"status\":\"bad_request\"")
                || matched[0].contains("\"status\":\"pong\"");
            if !ok {
                return Err(format!("request {line:?}: untyped response {:?}", matched[0]));
            }
        }

        // 2. Garbage lines can't echo an id; each still gets a typed
        //    null-id bad_request.
        let garbage = lines
            .iter()
            .filter(|(k, _)| matches!(k, Kind::Garbage))
            .count();
        let null_bad = responses
            .iter()
            .filter(|r| r.contains("\"status\":\"bad_request\"") && r.contains("\"id\":null"))
            .count();
        if garbage != null_bad {
            return Err(format!(
                "{garbage} garbage lines but {null_bad} null-id bad_request responses"
            ));
        }

        // 3. The admission ledger balances and the drain is clean.
        if summary.admitted != summary.admitted_terminals() {
            return Err(format!("admission ledger does not balance: {summary:?}"));
        }
        // The shutdown line is read and counted too.
        if summary.received != lines.len() as u64 + 1 {
            return Err(format!(
                "received {} of {} request lines: {summary:?}",
                summary.received,
                lines.len() + 1
            ));
        }
        if !summary.drained_clean {
            return Err(format!("drain was not clean: {summary:?}"));
        }
        if !summary.shutdown {
            return Err(format!("shutdown request did not start the drain: {summary:?}"));
        }
        Ok(())
    });
}
