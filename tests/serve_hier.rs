//! End-to-end lockdown of the daemon's `"mode":"hier"` op: repeated
//! hierarchical queries against the same circuit share block models
//! through the daemon's artifact cache (the second request extracts
//! nothing), a warm composition reproduces the cold one digit for
//! digit, and a one-gate edit re-extracts exactly one block. The
//! `{"op":"stats"}` probe must account for every block-cache lookup the
//! stream performed.

use klest::serve::{ServeConfig, Server};
use std::io::Cursor;
use std::time::Duration;

const HIER: &str =
    r#""mode":"hier","gates":120,"circuit_seed":5,"blocks":4,"area_fraction":0.05"#;

/// The raw JSON text of a top-level scalar field.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no `{key}` in {line}"))
        + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn hier_requests_share_the_block_cache_and_an_edit_retimes_one_block() {
    // One worker keeps the stream strictly ordered, so cache warmth at
    // each request is deterministic.
    let input = format!(
        "{{\"id\":\"h1\",{HIER}}}\n\
         {{\"id\":\"h2\",{HIER}}}\n\
         {{\"id\":\"h3\",{HIER},\"edit_gate\":60,\"edit_scale\":0.4}}\n\
         {{\"op\":\"shutdown\"}}\n"
    );
    let server = Server::new(ServeConfig {
        workers: 1,
        drain: Duration::from_secs(120),
        ..ServeConfig::default()
    });
    let mut out: Vec<u8> = Vec::new();
    let summary = server.serve(Cursor::new(input), &mut out);
    assert!(summary.drained_clean, "{summary:?}");
    assert_eq!(summary.completed, 3, "{summary:?}");
    assert!(summary.shutdown, "{summary:?}");

    let text = String::from_utf8(out).expect("responses are UTF-8");
    let line_for = |id: &str| {
        text.lines()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no response for {id} in:\n{text}"))
            .to_string()
    };

    // Cold request: every block model is extracted, none served warm.
    let h1 = line_for("h1");
    assert!(h1.contains("\"status\":\"completed\""), "{h1}");
    assert!(
        h1.contains("\"hier\":{\"blocks\":4,\"cache_hits\":0,\"extracted\":4}"),
        "{h1}"
    );

    // Identical request: all four models come from the shared cache and
    // the composed statistics reproduce the cold pass digit for digit.
    let h2 = line_for("h2");
    assert!(
        h2.contains("\"hier\":{\"blocks\":4,\"cache_hits\":4,\"extracted\":0}"),
        "{h2}"
    );
    assert_eq!(
        field(&h1, "mean"),
        field(&h2, "mean"),
        "warm composition must reproduce the cold one"
    );
    assert_eq!(field(&h1, "sigma"), field(&h2, "sigma"));

    // Edit request: the nominal composition is fully warm, then the
    // one-gate edit re-keys and re-extracts exactly one block.
    let h3 = line_for("h3");
    assert!(
        h3.contains(
            "\"hier\":{\"blocks\":4,\"cache_hits\":4,\"extracted\":0,\
             \"edit\":{\"gate\":60,\"extracted\":1,\"cache_hits\":0,"
        ),
        "{h3}"
    );

    // Stats account for every block lookup the stream performed: 4 cold
    // misses (h1) + 1 edit-key miss (h3) and 4 + 4 warm hits (h2, h3
    // nominal); the memory layer holds the 4 nominal models plus the
    // edited one. The probe rides a second connection — the cache and
    // its counters outlive the first drain — because inline ops are
    // answered before queued queries run.
    let mut out2: Vec<u8> = Vec::new();
    server.serve(
        Cursor::new("{\"op\":\"stats\",\"id\":\"s\"}\n{\"op\":\"shutdown\"}\n".to_string()),
        &mut out2,
    );
    let text = String::from_utf8(out2).expect("responses are UTF-8");
    let stats = text
        .lines()
        .find(|l| l.contains("\"id\":\"s\""))
        .unwrap_or_else(|| panic!("no stats response in:\n{text}"))
        .to_string();
    assert!(
        stats.contains("\"block\":{\"hits\":8,\"misses\":5,"),
        "{stats}"
    );
    assert!(stats.contains("\"block\":5}"), "block entry count: {stats}");
}
