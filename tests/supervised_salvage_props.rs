//! Salvage property for the supervised runtime: cancelling a Monte
//! Carlo run partway must keep an exact prefix of the full run's sample
//! stream, and the salvaged mean must sit inside the widened confidence
//! interval the truncated run reports. Seeded and replayable via
//! `KLEST_PROPTEST_SEED=<property>:<seed>`.

use klest::circuit::{generate, GeneratorConfig};
use klest::kernels::GaussianKernel;
use klest::runtime::CancelToken;
use klest::ssta::experiments::CircuitSetup;
use klest::ssta::{
    run_monte_carlo, run_monte_carlo_supervised, CholeskySampler, DegradationReport, McConfig,
    SummaryStats,
};
use klest_proptest::{check_config, strategies, Config};

/// Random planned size `n` and cut fraction: tripping the token after
/// `k` samples salvages exactly the first `k` samples of the full run
/// (single-threaded runs are prefix-deterministic), reports the CI
/// widening `sqrt(n/k)`, and the salvaged mean stays within the widened
/// interval around the full-run mean.
#[test]
fn salvaged_mean_stays_within_widened_ci_of_full_run() {
    let name = "salvaged_mean_stays_within_widened_ci_of_full_run";
    // Each case runs two MC sweeps over a real circuit; keep the case
    // count fixed rather than scaling with KLEST_PROPTEST_CASES.
    let cfg = Config {
        cases: 6,
        ..Config::from_env(name)
    };
    let strat = (
        strategies::usize_in(40..120),
        strategies::f64_in(0.15..0.9),
    );
    check_config(name, &cfg, &strat, |&(n, cut)| {
        let k = ((n as f64 * cut) as usize).clamp(2, n - 1);
        let kernel = GaussianKernel::with_correlation_distance(1.0);
        let circuit = generate(
            "salvage-prop",
            GeneratorConfig::combinational(40, 0xA11CE + n as u64),
        )
        .map_err(|e| format!("circuit generation: {e}"))?;
        let setup = CircuitSetup::prepare(&circuit);
        let sampler = CholeskySampler::new(&kernel, setup.locations())
            .map_err(|e| format!("Cholesky factor: {e}"))?;
        // threads defaults to 1: the supervised single-shard path uses
        // the same seed stream as the plain sequential run.
        let mc = McConfig::new(n, 0x5EED ^ n as u64);
        let full = run_monte_carlo(&setup.timer, &sampler, &mc)
            .map_err(|e| format!("full run: {e}"))?;

        let token = CancelToken::unlimited();
        token.trip_after_checkpoints(k as u64);
        let mut report = DegradationReport::new();
        let truncated = run_monte_carlo_supervised(&setup.timer, &sampler, &mc, &token, &mut report)
            .map_err(|e| format!("supervised run: {e}"))?;

        if truncated.worst_delays() != &full.worst_delays()[..k] {
            return Err(format!(
                "n {n}, k {k}: salvaged samples are not an exact prefix of the full run"
            ));
        }
        let salvage = truncated
            .salvage()
            .ok_or_else(|| format!("n {n}, k {k}: supervised run carries no salvage stats"))?;
        if salvage.completed != k || salvage.planned != n {
            return Err(format!(
                "n {n}, k {k}: salvage says {}/{}",
                salvage.completed, salvage.planned
            ));
        }
        let expected_widening = (n as f64 / k as f64).sqrt();
        if (salvage.ci_widening - expected_widening).abs() > 1e-12 {
            return Err(format!(
                "n {n}, k {k}: CI widening {} != sqrt(n/k) {expected_widening}",
                salvage.ci_widening
            ));
        }
        // Mean containment: the widened interval is z·sigma_n/sqrt(k).
        // z = 6 is deliberately loose — this is a sanity envelope, not a
        // coverage test, and must never flake on an honest prefix.
        let full_stats = SummaryStats::of(full.worst_delays());
        let trunc_stats = SummaryStats::of(truncated.worst_delays());
        let widened_halfwidth = full_stats.mean_ci_halfwidth(6.0) * salvage.ci_widening;
        let drift = (trunc_stats.mean - full_stats.mean).abs();
        if drift > widened_halfwidth {
            return Err(format!(
                "n {n}, k {k}: salvaged mean drifted {drift:.6} > widened CI {widened_halfwidth:.6}"
            ));
        }
        Ok(())
    });
}
